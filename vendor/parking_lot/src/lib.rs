//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, providing the `Mutex`/`RwLock` surface this workspace uses on top of the
//! `std::sync` primitives.
//!
//! Like real parking_lot (and unlike raw `std::sync`), the lock methods return guards
//! directly instead of `Result`s; a poisoned std lock is transparently recovered, which
//! matches parking_lot's no-poisoning semantics closely enough for the metrics
//! aggregation done here.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` returns the guard directly, matching
/// `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the inner value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose methods return guards directly, matching
/// `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value` in a readers-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let shared = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *shared.lock() += 1;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let shared = Arc::try_unwrap(shared).expect("all threads joined");
        assert_eq!(shared.into_inner(), 800);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let lock = RwLock::new(vec![1, 2, 3]);
        assert_eq!(lock.read().len(), 3);
        lock.write().push(4);
        assert_eq!(*lock.read(), vec![1, 2, 3, 4]);
    }
}
