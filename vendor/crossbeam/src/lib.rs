//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam) crate.
//!
//! Only the [`channel`] module surface used by this workspace is provided, backed by
//! `std::sync::mpsc`. Semantics match for the operations used here (unbounded send,
//! `recv_timeout`, drop-to-disconnect); the main behavioural differences from real
//! crossbeam — `Receiver` is neither `Clone` nor selectable — do not matter to the
//! single-consumer-per-node runtime in `leopard-simnet`.

#![forbid(unsafe_code)]

/// Multi-producer channels, matching the `crossbeam::channel` module path.
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel (clonable), matching
    /// `crossbeam::channel::Sender`.
    pub use std::sync::mpsc::Sender;

    /// Receiving half of an unbounded channel, matching `crossbeam::channel::Receiver`.
    pub use std::sync::mpsc::Receiver;

    /// Creates an unbounded FIFO channel, matching `crossbeam::channel::unbounded`.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn unbounded_roundtrip_and_timeout() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn senders_clone_across_threads() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4u32)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(i).unwrap())
                })
                .collect();
            for handle in handles {
                handle.join().unwrap();
            }
            drop(tx);
            let mut got: Vec<u32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
