//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no network access, so this vendored crate implements the
//! subset of proptest the workspace's property tests use, with the same paths:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]` headers) expanding
//!   each `fn name(arg in strategy, ..) { body }` item into a `#[test]` that runs the
//!   body over `cases` generated inputs;
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer ranges;
//! * [`arbitrary::any`] for primitive integers;
//! * [`collection::vec`] for variable-length vectors (nestable);
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is **no shrinking** — a failing case panics with the
//! generated values' debug output instead. Inputs are generated deterministically from
//! the test function's name, so failures reproduce across runs.

#![forbid(unsafe_code)]

/// Test-runner configuration, matching `proptest::test_runner`.
pub mod test_runner {
    /// Marker returned by [`crate::prop_assume!`] when a generated case is rejected.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// How many random cases each property test executes.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator used to produce test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub(crate) rand::StdRng);

    impl TestRng {
        /// Seeds the generator from a test name so runs are reproducible.
        pub fn deterministic(name: &str) -> Self {
            use rand::SeedableRng;
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for byte in name.bytes() {
                seed ^= byte as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(rand::StdRng::seed_from_u64(seed))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

/// Input-generation strategies, matching `proptest::strategy`.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value: std::fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `map`.
        fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, map }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value, matching `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// `any::<T>()` support, matching `proptest::arbitrary`.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, bool);

    /// Strategy generating any value of `T`, returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating any value of `T`, matching `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies, matching `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for variable-length vectors, returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose length is drawn from `size` and whose elements are drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Rejects the current generated case unless the condition holds, matching
/// `proptest::prop_assume!`. Rejected cases are skipped, not failed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Asserts a condition inside a property test, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` item becomes a
/// `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut __proptest_case: u32 = 0;
                let mut __proptest_rejects: u32 = 0;
                while __proptest_case < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    let __proptest_inputs = format!(
                        concat!("case {}/{}: ", $(stringify!($arg), " = {:?} ",)+),
                        __proptest_case + 1, config.cases, $(&$arg),+
                    );
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::Rejected> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ));
                    match result {
                        Ok(Ok(())) => __proptest_case += 1,
                        Ok(Err($crate::test_runner::Rejected)) => {
                            // Rejected cases do not consume the budget, but a property
                            // whose assumption almost never holds must fail loudly
                            // instead of passing vacuously (mirrors real proptest's
                            // "Too many global rejects").
                            __proptest_rejects += 1;
                            if __proptest_rejects > config.cases.saturating_mul(16) {
                                panic!(
                                    "proptest: too many prop_assume! rejects ({} rejects for {} target cases)",
                                    __proptest_rejects, config.cases
                                );
                            }
                        }
                        Err(panic) => {
                            eprintln!("proptest failure inputs: {}", __proptest_inputs);
                            std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, b in 1u8..=4) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..=4).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in collection::vec(any::<u8>(), 2..9),
            nested in collection::vec(collection::vec(0u32..5, 0..3), 1..4),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!((1..4).contains(&nested.len()));
            for inner in &nested {
                prop_assert!(inner.len() < 3);
                prop_assert!(inner.iter().all(|&x| x < 5));
            }
        }

        #[test]
        fn prop_map_applies(x in (0u64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 20);
        }

        #[test]
        fn assume_skips_rejected_cases(a in any::<u8>(), b in any::<u8>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = 0u64..1_000_000;
        for _ in 0..32 {
            prop_assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
