//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so instead of the
//! real `rand` this vendored crate provides the (small) API surface the workspace
//! actually uses, with the same module paths and trait names:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] (with `gen`, `gen_range`, `gen_bool`);
//! * [`rngs::StdRng`], a deterministic SplitMix64/xorshift generator;
//! * [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generators are **not cryptographically secure** — they exist to drive
//! simulations and property tests deterministically. Swap this directory for the real
//! crate (same version spec in `[workspace.dependencies]`) once network access is
//! available.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw integer and byte output.
///
/// Object-safe, matching `rand::RngCore`, so protocol contexts can hand out
/// `&mut dyn RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed, matching `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type, usually a byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from, matching `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let value = self.start + f64::sample(rng) * (self.end - self.start);
        // Rounding can land exactly on `end`; keep the half-open contract.
        value.min(self.end.next_down())
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`]
/// (including `dyn RngCore`), matching `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0.0 <= p <= 1.0`,
    /// matching real `rand`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: probability {p} is not in [0.0, 1.0]"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 — used for seed expansion and as the state update of [`rngs::StdRng`].
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators, matching the `rand::rngs` module path.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// A deterministic, fast, non-cryptographic generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let mut sm = SplitMix64 { state: self.state };
            let out = sm.next();
            self.state = sm.state;
            out
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let len = chunk.len();
                chunk.copy_from_slice(&bytes[..len]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            // Order-sensitive fold (rotate-xor-multiply per chunk) so permuted or
            // partially-zero seeds produce distinct streams.
            let mut state = 0x243F_6A88_85A3_08D3u64;
            for (index, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes[..chunk.len()].copy_from_slice(chunk);
                state = (state.rotate_left(17) ^ u64::from_le_bytes(bytes))
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(index as u64 + 1);
            }
            StdRng { state }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state ^ 0xA076_1D64_78BD_642F,
            }
        }
    }
}

pub use rngs::StdRng;

/// Sequence-related helpers, matching the `rand::seq` module path.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait adding random operations on slices, matching
    /// `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_range_works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(9);
        let dynref: &mut dyn RngCore = &mut rng;
        let v = dynref.gen_range(0u64..100);
        assert!(v < 100);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
