//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build environment has no network access, so this vendored crate provides the
//! criterion API surface the workspace's 13 bench targets use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a simple wall-clock
//! sampler instead of criterion's statistics engine.
//!
//! Each benchmark is warmed up, then measured for `sample_size` samples within the
//! configured measurement time; the median ns/iteration is printed as
//! `group/function/param ... <median> ns/iter (<samples> samples)`. The numbers are
//! honest medians but carry no confidence intervals; swap this directory for the real
//! crate for publication-grade statistics.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, matching `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id for `function` at `parameter` (e.g. a node count).
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(parameter) => format!("{}/{}", self.function, parameter),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId {
            function,
            parameter: None,
        }
    }
}

/// Timing loop handed to benchmark closures, matching `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks, matching `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: &'a mut Criterion,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how long each benchmark warms up before measurement.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Sets how many samples are drawn per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, &mut |bencher| routine(bencher));
        self
    }

    /// Benchmarks `routine` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id, &mut |bencher| routine(bencher, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, routine: &mut dyn FnMut(&mut Bencher)) {
        // Warm-up: run single iterations until the warm-up budget is spent, and use the
        // observed speed to pick an iteration count per sample.
        let warm_up_started = Instant::now();
        let mut warm_up_iters: u64 = 0;
        let mut warm_up_spent = Duration::ZERO;
        while warm_up_spent < self.warm_up_time {
            let mut bencher = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut bencher);
            warm_up_iters += 1;
            warm_up_spent = warm_up_started.elapsed();
        }
        let per_iter = warm_up_spent
            .checked_div(warm_up_iters.max(1) as u32)
            .unwrap_or(Duration::from_nanos(1))
            .max(Duration::from_nanos(1));

        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters_per_sample = (per_sample.as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        let measurement_started = Instant::now();
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            routine(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
            // Never exceed twice the measurement budget even for slow routines.
            if measurement_started.elapsed() > self.measurement_time * 2 {
                break;
            }
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("ns samples are finite"));
        let median = samples_ns[samples_ns.len() / 2];

        self.config.report(&format!(
            "{}/{:<40} {:>14.1} ns/iter ({} samples × {} iters)",
            self.name,
            id.render(),
            median,
            samples_ns.len(),
            iters_per_sample,
        ));
    }

    /// Finishes the group. (The stub reports eagerly, so this is bookkeeping only.)
    pub fn finish(self) {}
}

/// Benchmark driver, matching `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
        }
    }

    /// Benchmarks a standalone function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, routine: F) -> &mut Self {
        let mut group = self.benchmark_group("criterion");
        group.bench_function(name, routine);
        group.finish();
        self
    }

    fn report(&mut self, line: &str) {
        println!("{line}");
    }
}

/// Declares a benchmark group function, matching `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, matching `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("stub");
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            });
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
        assert!(runs > 0);
    }
}
