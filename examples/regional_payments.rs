//! A consortium payment network: the kind of large-permissioned-deployment workload the
//! paper's introduction motivates (global supply chains, consortium blockchains) — now
//! geo-distributed over four real regions.
//!
//! Sixteen banks run Leopard, spread round-robin over `us-east`, `eu-west`,
//! `ap-northeast` and `sa-east` with representative public-cloud inter-region
//! latencies; clients submit 128-byte payment orders to their regional bank at an
//! aggregate 40k payments/s. The example prints throughput, latency percentiles, the
//! per-region breakdown (each region's banks confirm at the same rate — the paper's
//! O(1) scaling factor is a bandwidth argument, so WAN latency moves the percentiles,
//! not the plateau), and the bandwidth-utilisation repartition of the leader vs an
//! ordinary member bank (the paper's Table III observation).
//!
//! ```text
//! cargo run --release --example regional_payments
//! ```

use leopard::harness::analysis::region_breakdown;
use leopard::harness::scenario::{run_leopard_scenario, ScenarioConfig};
use leopard::harness::workload::WorkloadConfig;
use leopard::simnet::SimDuration;
use leopard::types::NodeId;

fn main() {
    let banks = 16;
    let regions = ["us-east", "eu-west", "ap-northeast", "sa-east"];
    let config = ScenarioConfig::paper(banks)
        .with_wan_regions(&regions)
        .with_workload(WorkloadConfig {
            aggregate_rps: 40_000,
            payload_size: 128,
        })
        .with_batches(1_000, 50)
        .with_duration(SimDuration::from_secs(3));

    println!(
        "consortium of {banks} banks across {}, 40k payment orders per second, 128-byte orders\n",
        regions.join(" / ")
    );
    let report = run_leopard_scenario(&config);

    println!("confirmed payments : {}", report.confirmed_requests);
    println!("throughput         : {:.1} Kreqs/s", report.throughput_kreqs());
    let fmt_ms = |secs: Option<f64>| {
        secs.map(|s| format!("{:.0} ms", s * 1000.0))
            .unwrap_or_else(|| "n/a".to_string())
    };
    println!("client latency     : {} mean", fmt_ms(report.average_latency_secs));
    println!(
        "                     {} p50 · {} p95 · {} p99",
        fmt_ms(report.latency_p50_secs),
        fmt_ms(report.latency_p95_secs),
        fmt_ms(report.latency_p99_secs)
    );

    println!("\n{}", region_breakdown(&report).to_text());

    let leader = config.initial_leader();
    let member = NodeId(if leader.0 == 0 { 2 } else { 0 });
    let traffic = &report.sim.metrics.traffic;
    println!("bandwidth breakdown (bytes moved over the run):");
    for (role, node) in [("leader", leader), ("member bank", member)] {
        println!("  {role} ({node}):");
        for category in traffic.categories() {
            let sent = traffic.sent_bytes_in(node, category);
            let received = traffic.received_bytes_in(node, category);
            if sent + received == 0 {
                continue;
            }
            println!("    {category:<10} sent {sent:>12} B   received {received:>12} B");
        }
    }
    println!(
        "\nthe leader's traffic is dominated by *receiving* datablocks — the dissemination \
         work itself is spread over the member banks (the paper's Table III observation), \
         which is exactly why the WAN hop to the leader costs latency but not throughput."
    );
}
