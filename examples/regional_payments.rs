//! A consortium payment network: the kind of large-permissioned-deployment workload the
//! paper's introduction motivates (global supply chains, consortium blockchains).
//!
//! Sixteen banks run Leopard; clients submit 128-byte payment orders to their regional
//! bank at an aggregate 40k payments/s. The example prints throughput, latency and the
//! bandwidth-utilisation breakdown of the leader vs an ordinary member bank (the
//! repartition the paper reports in Table III).
//!
//! ```text
//! cargo run --release --example regional_payments
//! ```

use leopard::harness::scenario::{run_leopard_scenario, ScenarioConfig};
use leopard::harness::workload::WorkloadConfig;
use leopard::simnet::SimDuration;
use leopard::types::NodeId;

fn main() {
    let banks = 16;
    let config = ScenarioConfig::paper(banks)
        .with_workload(WorkloadConfig {
            aggregate_rps: 40_000,
            payload_size: 128,
        })
        .with_batches(1_000, 50)
        .with_duration(SimDuration::from_secs(3));

    println!("consortium of {banks} banks, 40k payment orders per second, 128-byte orders\n");
    let report = run_leopard_scenario(&config);

    println!("confirmed payments : {}", report.confirmed_requests);
    println!("throughput         : {:.1} Kreqs/s", report.throughput_kreqs());
    println!(
        "client latency     : {}",
        report
            .average_latency_secs
            .map(|s| format!("{:.0} ms", s * 1000.0))
            .unwrap_or_else(|| "n/a".to_string())
    );

    let leader = config.initial_leader();
    let member = NodeId(if leader.0 == 0 { 2 } else { 0 });
    let traffic = &report.sim.metrics.traffic;
    println!("\nbandwidth breakdown (bytes moved over the run):");
    for (role, node) in [("leader", leader), ("member bank", member)] {
        println!("  {role} ({node}):");
        for category in traffic.categories() {
            let sent = traffic.sent_bytes_in(node, category);
            let received = traffic.received_bytes_in(node, category);
            if sent + received == 0 {
                continue;
            }
            println!("    {category:<10} sent {sent:>12} B   received {received:>12} B");
        }
    }
    println!(
        "\nthe leader's traffic is dominated by *receiving* datablocks — the dissemination \
         work itself is spread over the member banks (the paper's Table III observation)."
    );
}
