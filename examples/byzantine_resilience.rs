//! Byzantine resilience demo: a selective-dissemination attacker plus a leader crash.
//!
//! One replica only sends its datablocks to a small subset of the committee (the
//! selective attack of §IV), and half-way through the run the leader is crashed. The
//! example shows that requests keep getting confirmed thanks to the erasure-coded
//! retrieval mechanism and the view-change.
//!
//! ```text
//! cargo run --release --example byzantine_resilience
//! ```

use leopard::harness::scenario::{run_leopard_scenario, ScenarioConfig};
use leopard::harness::workload::WorkloadConfig;
use leopard::simnet::SimDuration;

fn main() {
    let config = ScenarioConfig::paper(7)
        .with_workload(WorkloadConfig {
            aggregate_rps: 10_000,
            payload_size: 128,
        })
        .with_batches(200, 10)
        .with_selective_attackers(1)
        .with_leader_crash_at(SimDuration::from_secs(2))
        .with_duration(SimDuration::from_secs(6));

    println!("7 replicas (f = 2): 1 selective attacker, leader crashes at t = 2s\n");
    let report = run_leopard_scenario(&config);

    println!("confirmed requests        : {}", report.confirmed_requests);
    println!("throughput                : {:.1} Kreqs/s", report.throughput_kreqs());
    println!("datablock retrievals      : {}", report.retrievals);
    println!(
        "  avg retrieval time      : {}",
        report
            .average_retrieval_secs
            .map(|s| format!("{:.1} ms", s * 1000.0))
            .unwrap_or_else(|| "n/a".to_string())
    );
    println!(
        "  avg bytes to recover    : {}",
        report
            .average_retrieval_recv_bytes
            .map(|b| format!("{:.1} KB", b / 1024.0))
            .unwrap_or_else(|| "n/a".to_string())
    );
    println!("view changes observed     : {}", report.view_changes);
    println!(
        "  avg view-change time    : {}",
        report
            .average_view_change_secs
            .map(|s| format!("{:.2} s", s))
            .unwrap_or_else(|| "n/a".to_string())
    );
    println!(
        "  view-change traffic     : {:.1} KB",
        report.view_change_bytes as f64 / 1024.0
    );
    println!(
        "\nliveness survives both faults: the committee serves erasure-coded chunks of the \
         attacker's datablocks, and the round-robin view-change replaces the crashed leader."
    );
}
