//! Run the *same* Leopard replica state machines on the thread-based real-time runtime
//! (crossbeam channels, OS threads, wall-clock timers) instead of the discrete-event
//! simulator — demonstrating that the protocol implementation is genuinely sans-IO.
//!
//! ```text
//! cargo run --release --example realtime_cluster
//! ```

use leopard::core::{config::WorkloadMode, LeopardConfig, LeopardReplica};
use leopard::simnet::runtime::run_threaded;
use leopard::simnet::SimDuration;
use std::time::Duration;

fn main() {
    let n = 4;
    let mut config = LeopardConfig::small_test(n);
    config.workload = WorkloadMode::OpenLoop { aggregate_rps: 3_000 };
    let shared = LeopardConfig::shared_keys(&config, 2026);

    println!("starting {n} Leopard replicas on OS threads for 2 seconds of wall-clock time ...");
    let metrics = run_threaded(
        n,
        move |id| LeopardReplica::new(id, config.clone(), shared.clone()),
        Duration::from_secs(2),
        2026,
    );

    let confirmed = metrics.max_confirmed_requests(n);
    let latencies = metrics.latency_samples();
    let average_latency_ms = if latencies.is_empty() {
        None
    } else {
        Some(latencies.iter().map(|&v| v as f64 / 1e6).sum::<f64>() / latencies.len() as f64)
    };
    println!("confirmed requests : {confirmed}");
    println!(
        "average latency    : {}",
        average_latency_ms
            .map(|ms| format!("{ms:.1} ms"))
            .unwrap_or_else(|| "n/a".to_string())
    );
    println!(
        "bytes on the wire  : {} sent / {} received",
        metrics.traffic.total_sent_bytes(),
        metrics.traffic.total_received_bytes()
    );
    let _ = SimDuration::ZERO; // (the runtime shares the simulator's time types)
}
