//! Measures the wall-clock cost of the primitive operations the compute-resource model
//! charges, so the constants in `leopard_types::params` can be re-calibrated on new
//! hardware.
//!
//! ```text
//! cargo run --release --example calibrate_costs
//! ```
//!
//! Prints one line per primitive in the unit the cost model uses. The baked-in
//! constants in `params::calibrated_crypto_costs` were captured from a run of this
//! probe (see `DESIGN.md` §6.3).

use leopard::crypto::field::{lagrange_coefficients, Fp};
use leopard::crypto::threshold::ThresholdScheme;
use leopard::crypto::{hash_bytes, MerkleTree};
use leopard::erasure::gf256;
use std::hint::black_box;
use std::time::Instant;

/// A tiny deterministic generator (xorshift64*), so the probe does not need an RNG
/// dependency.
struct Xor(u64);
impl Xor {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

fn time_per<T>(iters: u64, mut op: impl FnMut() -> T) -> f64 {
    // Warm-up.
    for _ in 0..iters / 10 + 1 {
        black_box(op());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(op());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let mut rng = Xor(42);

    // SHA-256 throughput: hash a 64 KiB buffer, report picoseconds per byte, and a
    // small buffer for the per-call base cost.
    let big: Vec<u8> = (0..65536).map(|_| rng.next() as u8).collect();
    let per_call = time_per(2_000, || hash_bytes(&big));
    println!(
        "sha256: {:.1} ps/byte ({:.1} ns per 64KiB call)",
        per_call * 1000.0 / big.len() as f64,
        per_call
    );
    let small = [0u8; 8];
    println!("sha256 base: {:.1} ns per small call", time_per(2_000_000, || hash_bytes(&small)));

    // GF(2^8) fused multiply-add over a slice: the erasure-coding kernel. Work per
    // encoded datablock is shard_len * data_shards * parity_shards of these byte ops.
    let src: Vec<u8> = (0..65536).map(|_| rng.next() as u8).collect();
    let mut dst = vec![0u8; 65536];
    let per_call = time_per(5_000, || gf256::mul_add_slice(&mut dst, &src, 0xA7));
    println!("gf256 mul_add_slice: {:.1} ps/byte", per_call * 1000.0 / src.len() as f64);

    // Field multiplication (sign/verify-share kernel).
    let a = Fp::new(rng.next() % leopard::crypto::field::MODULUS);
    let b = Fp::new(rng.next() % leopard::crypto::field::MODULUS);
    println!("Fp mul: {:.2} ns", time_per(50_000_000, || black_box(a) * black_box(b)));

    // Lagrange coefficients for a fresh 401-signer quorum (n = 600 scale).
    let xs: Vec<Fp> = (1..=401u64).map(Fp::new).collect();
    let per_call = time_per(2_000, || lagrange_coefficients(&xs, Fp::zero()).unwrap());
    println!(
        "lagrange_coefficients(401): {:.1} ns total, {:.1} ns/share",
        per_call,
        per_call / 401.0
    );

    // End-to-end threshold ops at the n = 600 scale.
    use rand::SeedableRng;
    let mut srng = rand::rngs::StdRng::seed_from_u64(42);
    let (scheme, keys) = ThresholdScheme::trusted_setup(401, 600, &mut srng);
    let msg = hash_bytes(b"calibration");
    let shares: Vec<_> = keys.iter().map(|k| scheme.sign_share(k, &msg)).collect();
    println!("sign_share: {:.1} ns", time_per(2_000_000, || scheme.sign_share(&keys[0], &msg)));
    println!("verify_share: {:.1} ns", time_per(2_000_000, || scheme.verify_share(&shares[7], &msg)));
    let quorum = &shares[..401];
    let per_call = time_per(2_000, || scheme.combine(quorum, &msg).unwrap());
    println!("combine(401) warm cache: {:.1} ns total, {:.1} ns/share", per_call, per_call / 401.0);

    // Merkle tree over 600 shards of ~1 KiB (retrieval responder side).
    let shards: Vec<Vec<u8>> = (0..600).map(|i| vec![i as u8; 1024]).collect();
    let per_call = time_per(200, || MerkleTree::from_leaves(shards.iter().map(|s| s.as_slice())));
    println!("merkle 600x1KiB: {:.1} ns total ({:.1} ns/leaf)", per_call, per_call / 600.0);
}
