//! Per-cell wall-clock probe for the full fig9 sweep (used to target perf work).
//!
//! ```text
//! cargo run --release --example profile_fig9 [n...]
//! ```

use leopard::harness::scenario::{run_hotstuff_scenario, run_leopard_scenario, ScenarioConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts heap traffic so allocation churn on the event hot path shows up as a
/// number, not a guess (malloc internals dominate `perf`-less profiles otherwise).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_stats() -> (u64, u64) {
    (ALLOCS.load(Ordering::Relaxed), ALLOC_BYTES.load(Ordering::Relaxed))
}

/// Seconds of CPU (user + system) this process has consumed, from `/proc/self/stat`.
/// Unlike wall-clock this is immune to scheduler noise from co-tenant processes;
/// returns 0.0 where procfs is unavailable.
fn cpu_secs() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0.0;
    };
    // Fields 14/15 (utime/stime, in clock ticks) counted from after the parenthesised
    // command name, which may itself contain spaces.
    let Some(after) = stat.rsplit(')').next() else {
        return 0.0;
    };
    let fields: Vec<&str> = after.split_whitespace().collect();
    let ticks: u64 = fields
        .get(11..13)
        .map(|f| f.iter().filter_map(|v| v.parse::<u64>().ok()).sum())
        .unwrap_or(0);
    ticks as f64 / 100.0
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let ns: Vec<usize> = if args.is_empty() {
        vec![32, 64, 128, 256, 300, 400, 600]
    } else {
        args
    };
    for &n in &ns {
        let start = Instant::now();
        let cpu = cpu_secs();
        let (allocs0, bytes0) = alloc_stats();
        let leopard = run_leopard_scenario(&ScenarioConfig::paper(n));
        let leopard_secs = start.elapsed().as_secs_f64();
        let leopard_cpu = cpu_secs() - cpu;
        let (allocs1, bytes1) = alloc_stats();
        eprintln!(
            "      leopard allocs: {:.2}M ({:.0} MB)",
            (allocs1 - allocs0) as f64 / 1e6,
            (bytes1 - bytes0) as f64 / 1e6
        );
        let start = Instant::now();
        let cpu = cpu_secs();
        let hotstuff = run_hotstuff_scenario(&ScenarioConfig::paper(n));
        let hotstuff_secs = start.elapsed().as_secs_f64();
        let hotstuff_cpu = cpu_secs() - cpu;
        let queries = leopard
            .sim
            .metrics
            .traffic
            .iter_sent()
            .filter(|(_, category, _, _)| *category == "retrieval")
            .map(|(_, _, _, count)| count)
            .sum::<u64>();
        println!(
            "n={n:4}  leopard {leopard_secs:7.3}s wall / {leopard_cpu:.2}s cpu ({} events, {:.1} Kreq/s, {} retrievals, {} retrieval msgs)   hotstuff {hotstuff_secs:7.3}s wall / {hotstuff_cpu:.2}s cpu ({} events, {:.1} Kreq/s)",
            leopard.sim.events,
            leopard.throughput_kreqs(),
            leopard.retrievals,
            queries,
            hotstuff.sim.events,
            hotstuff.throughput_kreqs(),
        );
    }
}
