//! Per-cell wall-clock probe for the full fig9 sweep (used to target perf work).
//!
//! ```text
//! cargo run --release --example profile_fig9 [n...]
//! ```

use leopard::harness::scenario::{run_hotstuff_scenario, run_leopard_scenario, ScenarioConfig};
use std::time::Instant;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let ns: Vec<usize> = if args.is_empty() {
        vec![32, 64, 128, 256, 300, 400, 600]
    } else {
        args
    };
    for &n in &ns {
        let start = Instant::now();
        let leopard = run_leopard_scenario(&ScenarioConfig::paper(n));
        let leopard_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let hotstuff = run_hotstuff_scenario(&ScenarioConfig::paper(n));
        let hotstuff_secs = start.elapsed().as_secs_f64();
        let queries = leopard
            .sim
            .metrics
            .traffic
            .iter_sent()
            .filter(|(_, category, _, _)| *category == "retrieval")
            .map(|(_, _, _, count)| count)
            .sum::<u64>();
        println!(
            "n={n:4}  leopard {leopard_secs:7.3}s ({} events, {:.1} Kreq/s, {} retrievals, {} retrieval msgs)   hotstuff {hotstuff_secs:7.3}s ({} events, {:.1} Kreq/s)",
            leopard.sim.events,
            leopard.throughput_kreqs(),
            leopard.retrievals,
            queries,
            hotstuff.sim.events,
            hotstuff.throughput_kreqs(),
        );
    }
}
