//! A miniature version of the paper's headline experiment (Fig. 9): sweep the number of
//! replicas and compare Leopard with the HotStuff baseline.
//!
//! ```text
//! cargo run --release --example scaling_survey
//! ```

use leopard::harness::report::Table;
use leopard::harness::scenario::{run_hotstuff_scenario, run_leopard_scenario, ScenarioConfig};

fn main() {
    let mut table = Table::new(
        "scaling survey (reduced scales; see EXPERIMENTS.md for the full sweep)",
        &["n", "Leopard Kreqs/s", "HotStuff Kreqs/s", "ratio"],
    );
    for n in [4usize, 8, 16, 32] {
        eprintln!("simulating n = {n} ...");
        let config = ScenarioConfig::paper(n);
        let leopard = run_leopard_scenario(&config);
        let hotstuff = run_hotstuff_scenario(&config);
        let ratio = if hotstuff.throughput_rps > 0.0 {
            leopard.throughput_rps / hotstuff.throughput_rps
        } else {
            f64::INFINITY
        };
        table.push_row(vec![
            n.to_string(),
            format!("{:.1}", leopard.throughput_kreqs()),
            format!("{:.1}", hotstuff.throughput_kreqs()),
            format!("{ratio:.2}"),
        ]);
    }
    println!("{}", table.to_text());
    println!(
        "Leopard's throughput stays close to the offered load while the leader-disseminates-\
         payload baseline falls behind as n grows — the gap keeps widening at the paper's \
         larger scales (run `cargo run -p leopard-bench --release --bin experiments -- fig9`)."
    );
}
