//! Quickstart: run a small Leopard deployment on the bandwidth-accurate simulator and
//! print what happened.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use leopard::prelude::*;

fn main() {
    // Four replicas (f = 1), the smallest BFT configuration, with a light client load.
    let config = ScenarioConfig::small(4);
    println!(
        "running Leopard with n = {} replicas for {:.1}s of simulated time ...",
        config.n,
        config.duration.as_secs_f64()
    );

    let report = run_leopard_scenario(&config);

    println!("confirmed requests : {}", report.confirmed_requests);
    println!("throughput         : {:.1} Kreqs/s", report.throughput_kreqs());
    println!(
        "average latency    : {}",
        report
            .average_latency_secs
            .map(|s| format!("{:.1} ms", s * 1000.0))
            .unwrap_or_else(|| "n/a".to_string())
    );
    println!(
        "leader bandwidth   : {:.1} Mbps (initial leader {})",
        report.leader_bandwidth_mbps(),
        config.initial_leader()
    );

    // The same API drives the HotStuff baseline for comparison.
    let baseline = run_hotstuff_scenario(&config);
    println!(
        "HotStuff baseline  : {:.1} Kreqs/s at the same scale",
        baseline.throughput_kreqs()
    );
}
