//! # Leopard
//!
//! A reproduction of *"Leopard: Towards High Throughput-Preserving BFT for Large-scale
//! Systems"* (ICDCS 2022) as a Rust workspace, together with every substrate the paper
//! depends on: a threshold-signature scheme, Reed–Solomon erasure coding, a
//! bandwidth-accurate discrete-event network simulator, and a HotStuff baseline.
//!
//! This facade crate re-exports the workspace members so that downstream users can
//! depend on a single crate:
//!
//! ```
//! use leopard::prelude::*;
//!
//! let config = ScenarioConfig::small(4);
//! let report = run_leopard_scenario(&config);
//! assert!(report.confirmed_requests > 0);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the reproduction
//! of every table and figure in the paper's evaluation section.

pub use leopard_core as core;
pub use leopard_crypto as crypto;
pub use leopard_erasure as erasure;
pub use leopard_harness as harness;
pub use leopard_hotstuff as hotstuff;
pub use leopard_simnet as simnet;
pub use leopard_types as types;

/// Commonly used items, suitable for glob import in examples and applications.
pub mod prelude {
    pub use leopard_core::config::LeopardConfig;
    pub use leopard_harness::scenario::{run_hotstuff_scenario, run_leopard_scenario, ScenarioConfig};
    pub use leopard_harness::workload::WorkloadConfig;
    pub use leopard_types::{NodeId, Request, View};
}
