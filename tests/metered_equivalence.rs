//! Validation of the `MeteredCrypto` mode (see `leopard_crypto::provider`): a metered
//! run skips the expensive real field/erasure/hash work but must make identical
//! decisions and charge identical modeled time, so at every scale where running both
//! modes is affordable the two schedules must agree.
//!
//! The acceptance bar from the issue is "identical confirmation ordering and
//! steady-state throughput within 1% at n ≤ 64"; these tests hold the stronger
//! property that actually falls out of the design — the runs are *bit-identical* in
//! event count, confirmation sequence and traffic totals — and additionally assert the
//! 1% throughput bound explicitly so a future relaxation of bit-identity still has a
//! guard.

use leopard::harness::scenario::{run_leopard_scenario, ScenarioConfig, ScenarioReport};
use leopard::harness::workload::WorkloadConfig;
use leopard::simnet::{ObservationKind, SimDuration};
use leopard_crypto::provider::CryptoMode;

/// The confirmation ordering of a run: every `BlockCommitted` observation as
/// `(time, node, sequence, requests)`, in emission order.
fn confirmation_ordering(report: &ScenarioReport) -> Vec<(u64, u32, u64, u64)> {
    report
        .sim
        .metrics
        .observations
        .iter()
        .filter_map(|o| match o.kind {
            ObservationKind::BlockCommitted { sequence, requests } => {
                Some((o.at.as_nanos(), o.node.0, sequence, requests))
            }
            _ => None,
        })
        .collect()
}

fn assert_equivalent(label: &str, config: ScenarioConfig) {
    let real = run_leopard_scenario(&config.clone().with_crypto_mode(CryptoMode::Real));
    let metered = run_leopard_scenario(&config.with_crypto_mode(CryptoMode::Metered));

    assert!(
        real.confirmed_requests > 0,
        "{label}: the real run confirmed nothing — the comparison would be vacuous"
    );
    assert_eq!(
        confirmation_ordering(&real),
        confirmation_ordering(&metered),
        "{label}: confirmation ordering diverged between real and metered crypto"
    );
    assert_eq!(
        real.sim.events, metered.sim.events,
        "{label}: event counts diverged"
    );
    assert_eq!(
        real.sim.metrics.traffic.total_sent_bytes(),
        metered.sim.metrics.traffic.total_sent_bytes(),
        "{label}: traffic totals diverged"
    );
    assert_eq!(
        real.sim.compute_busy_nanos, metered.sim.compute_busy_nanos,
        "{label}: modeled compute diverged — the metered mode is not charging identical time"
    );
    // The issue's explicit acceptance bound, kept as its own assertion.
    let relative = (real.steady_state_throughput_rps - metered.steady_state_throughput_rps).abs()
        / real.steady_state_throughput_rps.max(1.0);
    assert!(
        relative <= 0.01,
        "{label}: steady-state throughput diverged by {:.3}% (real {:.1} vs metered {:.1})",
        relative * 100.0,
        real.steady_state_throughput_rps,
        metered.steady_state_throughput_rps
    );
}

#[test]
fn paper_scale_16_is_equivalent() {
    assert_equivalent("paper(16)", ScenarioConfig::paper(16).with_seed(0x51EE));
}

/// The upper end of the validated range (n = 64), with the offered load, batches and
/// duration reduced so the real-crypto debug-profile run stays fast; the protocol
/// parameters are the paper's.
#[test]
fn paper_scale_64_is_equivalent() {
    let config = ScenarioConfig::paper(64)
        .with_workload(WorkloadConfig {
            aggregate_rps: 40_000,
            payload_size: 128,
        })
        .with_batches(500, 50)
        .with_duration(SimDuration::from_millis(1_500));
    assert_equivalent("paper(64) reduced", config);
}

/// A selective-attack run, so the *retrieval* path — where metered mode fabricates
/// responses of identical wire size instead of erasure-coding — is exercised
/// end-to-end. Both modes must complete the same retrievals with the same byte costs.
#[test]
fn retrieval_path_is_equivalent() {
    let config = ScenarioConfig::small(7)
        .with_selective_attackers(1)
        .with_duration(SimDuration::from_secs(4))
        .with_seed(0x7E7);
    let real = run_leopard_scenario(&config.clone().with_crypto_mode(CryptoMode::Real));
    let metered = run_leopard_scenario(&config.with_crypto_mode(CryptoMode::Metered));
    assert!(
        real.retrievals > 0,
        "selective attack produced no retrievals — the comparison would be vacuous"
    );
    assert_eq!(real.retrievals, metered.retrievals);
    assert_eq!(
        real.average_retrieval_recv_bytes, metered.average_retrieval_recv_bytes,
        "retrieval byte accounting diverged"
    );
    assert_eq!(real.average_retrieval_secs, metered.average_retrieval_secs);
    assert_eq!(confirmation_ordering(&real), confirmation_ordering(&metered));
    assert_eq!(real.sim.events, metered.sim.events);
}
