//! Cross-crate integration tests: safety and liveness of Leopard end-to-end on the
//! simulator, with direct access to replica state.

use leopard::core::byzantine::ByzantineBehavior;
use leopard::core::{LeopardConfig, LeopardReplica};
use leopard::simnet::{FaultPlan, NetworkConfig, SimDuration, SimTime, Simulation};
use leopard::types::{NodeId, SeqNum};

fn build_simulation(
    n: usize,
    configure: impl Fn(NodeId, LeopardConfig) -> LeopardConfig,
    faults: FaultPlan,
) -> Simulation<LeopardReplica> {
    let base = LeopardConfig::small_test(n);
    let shared = LeopardConfig::shared_keys(&base, 99);
    Simulation::new(NetworkConfig::datacenter(n), faults, move |id| {
        let config = configure(id, LeopardConfig::small_test(n));
        LeopardReplica::new(id, config, shared.clone())
    })
}

fn run(sim: &mut Simulation<LeopardReplica>, secs: u64) {
    sim.run_until(
        SimTime::ZERO + SimDuration::from_secs(secs),
        20_000_000,
    );
}

/// Safety: every pair of honest replicas agrees on the block at every executed serial
/// number (Theorem 1).
fn assert_logs_consistent(sim: &Simulation<LeopardReplica>, n: usize, honest: &[u32]) {
    let min_executed = honest
        .iter()
        .map(|&i| sim.node(NodeId(i)).last_executed().0)
        .min()
        .unwrap_or(0);
    assert!(n >= honest.len());
    for seq in 1..=min_executed {
        let mut reference = None;
        for &i in honest {
            let block = sim
                .node(NodeId(i))
                .log_block(SeqNum(seq))
                .unwrap_or_else(|| panic!("replica {i} executed seq {seq} but has no log entry"));
            match &reference {
                None => reference = Some(block.clone()),
                Some(expected) => assert_eq!(
                    expected.links, block.links,
                    "divergent logs at seq {seq} (replica {i})"
                ),
            }
        }
    }
}

#[test]
fn honest_run_is_safe_and_live() {
    let n = 4;
    let mut sim = build_simulation(n, |_, c| c, FaultPlan::none());
    run(&mut sim, 2);
    let honest: Vec<u32> = (0..n as u32).collect();
    // Liveness: a non-trivial prefix of the log executed everywhere.
    for &i in &honest {
        assert!(
            sim.node(NodeId(i)).last_executed().0 >= 2,
            "replica {i} executed too little"
        );
        assert!(sim.node(NodeId(i)).confirmed_requests() > 0);
    }
    assert_logs_consistent(&sim, n, &honest);
}

#[test]
fn logs_agree_under_an_equivocating_leader() {
    let n = 4;
    let mut sim = build_simulation(
        n,
        |id, config| {
            if id == NodeId(1) {
                config.with_byzantine(ByzantineBehavior::EquivocatingLeader)
            } else {
                config
            }
        },
        FaultPlan::none(),
    );
    run(&mut sim, 3);
    // Replica 1 (the equivocator) is excluded from the honest set.
    assert_logs_consistent(&sim, n, &[0, 2, 3]);
}

#[test]
fn logs_agree_and_progress_with_vote_withholders() {
    let n = 7; // f = 2
    let mut sim = build_simulation(
        n,
        |id, config| {
            if id.as_index() >= 5 {
                config.with_byzantine(ByzantineBehavior::WithholdVotes)
            } else {
                config
            }
        },
        FaultPlan::none(),
    );
    run(&mut sim, 3);
    let honest: Vec<u32> = (0..5).collect();
    for &i in &honest {
        assert!(sim.node(NodeId(i)).confirmed_requests() > 0, "replica {i} stalled");
    }
    assert_logs_consistent(&sim, n, &honest);
}

#[test]
fn watermark_advances_through_checkpoints() {
    let n = 4;
    let mut sim = build_simulation(n, |_, c| c, FaultPlan::none());
    run(&mut sim, 3);
    // With the small-test checkpoint interval of 8 and a couple of seconds of traffic,
    // garbage collection must have advanced the low watermark at least once.
    let advanced = (0..n as u32).any(|i| sim.node(NodeId(i)).low_watermark().0 >= 8);
    assert!(advanced, "no replica ever advanced its checkpoint watermark");
}
