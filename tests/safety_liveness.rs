//! Cross-crate integration tests: safety and liveness of Leopard end-to-end on the
//! simulator, with direct access to replica state.
//!
//! Small scales (n ≤ 7) run real crypto; the large-scale tests (n ∈ {64, 128}) use
//! metered crypto, which `tests/metered_equivalence.rs` proves bit-identical in
//! schedule and decisions, to keep wall-clock time in budget.

mod common;

use common::{assert_logs_consistent, build_simulation, build_simulation_with, run};
use leopard::core::byzantine::ByzantineBehavior;
use leopard::core::LeopardConfig;
use leopard::crypto::provider::CryptoMode;
use leopard::harness::experiments::FIG9GEO_REGIONS;
use leopard::harness::scenario::{run_leopard_scenario, ScenarioConfig};
use leopard::simnet::{FaultPlan, NetworkConfig, SimDuration};
use leopard::types::NodeId;

#[test]
fn honest_run_is_safe_and_live() {
    let n = 4;
    let mut sim = build_simulation(n, |_, c| c, FaultPlan::none());
    run(&mut sim, 2);
    let honest: Vec<u32> = (0..n as u32).collect();
    // Liveness: a non-trivial prefix of the log executed everywhere.
    for &i in &honest {
        assert!(
            sim.node(NodeId(i)).last_executed().0 >= 2,
            "replica {i} executed too little"
        );
        assert!(sim.node(NodeId(i)).confirmed_requests() > 0);
    }
    assert_logs_consistent(&sim, n, &honest);
}

#[test]
fn logs_agree_under_an_equivocating_leader() {
    let n = 4;
    let mut sim = build_simulation(
        n,
        |id, config| {
            if id == NodeId(1) {
                config.with_byzantine(ByzantineBehavior::EquivocatingLeader)
            } else {
                config
            }
        },
        FaultPlan::none(),
    );
    run(&mut sim, 3);
    // Replica 1 (the equivocator) is excluded from the honest set.
    assert_logs_consistent(&sim, n, &[0, 2, 3]);
}

#[test]
fn logs_agree_and_progress_with_vote_withholders() {
    let n = 7; // f = 2
    let mut sim = build_simulation(
        n,
        |id, config| {
            if id.as_index() >= 5 {
                config.with_byzantine(ByzantineBehavior::WithholdVotes)
            } else {
                config
            }
        },
        FaultPlan::none(),
    );
    run(&mut sim, 3);
    let honest: Vec<u32> = (0..5).collect();
    for &i in &honest {
        assert!(sim.node(NodeId(i)).confirmed_requests() > 0, "replica {i} stalled");
    }
    assert_logs_consistent(&sim, n, &honest);
}

#[test]
fn watermark_advances_through_checkpoints() {
    let n = 4;
    let mut sim = build_simulation(n, |_, c| c, FaultPlan::none());
    run(&mut sim, 3);
    // With the small-test checkpoint interval of 8 and a couple of seconds of traffic,
    // garbage collection must have advanced the low watermark at least once.
    let advanced = (0..n as u32).any(|i| sim.node(NodeId(i)).low_watermark().0 >= 8);
    assert!(advanced, "no replica ever advanced its checkpoint watermark");
}

/// The `small_test` defaults with metered crypto, coarser blocks and a slower batch
/// cadence: at n = 128 the dominant cost is the per-node datablock multicast (O(n)
/// messages each), so flushing every 100 ms instead of every 20 ms cuts the event
/// count ~5× and keeps the run within a few seconds of wall clock.
fn large_scale_config(n: usize) -> LeopardConfig {
    let mut config = LeopardConfig::small_test(n).with_crypto_mode(CryptoMode::Metered);
    config.params.datablock_size = 64;
    config.params.bftblock_size = 8;
    config.batch_timeout = SimDuration::from_millis(100);
    config.propose_interval = SimDuration::from_millis(20);
    config
}

#[test]
fn honest_run_is_safe_and_live_at_n64() {
    let n = 64;
    let mut sim = build_simulation_with(
        NetworkConfig::datacenter(n),
        large_scale_config(n),
        |_, c| c,
        FaultPlan::none(),
    );
    run(&mut sim, 2);
    let honest: Vec<u32> = (0..n as u32).collect();
    for &i in &honest {
        assert!(
            sim.node(NodeId(i)).last_executed().0 >= 2,
            "replica {i} executed too little"
        );
        assert!(sim.node(NodeId(i)).confirmed_requests() > 0, "replica {i} stalled");
    }
    assert_logs_consistent(&sim, n, &honest);
}

#[test]
fn logs_agree_with_vote_withholders_at_n128() {
    let n = 128; // f = 42
    let byzantine = 16; // well inside the f-bound, enough to bite into every quorum
    let mut sim = build_simulation_with(
        NetworkConfig::datacenter(n),
        large_scale_config(n),
        move |id, config| {
            if id.as_index() >= n - byzantine {
                config.with_byzantine(ByzantineBehavior::WithholdVotes)
            } else {
                config
            }
        },
        FaultPlan::none(),
    );
    // One virtual second is ~50 proposal rounds under the 20 ms cadence — plenty to
    // prove progress and agreement, and n = 128 wall-clock cost scales with duration.
    run(&mut sim, 1);
    let honest: Vec<u32> = (0..(n - byzantine) as u32).collect();
    for &i in &honest {
        assert!(sim.node(NodeId(i)).confirmed_requests() > 0, "replica {i} stalled");
    }
    assert_logs_consistent(&sim, n, &honest);
}

#[test]
fn wan_run_at_n64_holds_steady_state_throughput() {
    // One scenario over the four-region WAN topology, with throughput bounds rather
    // than bare termination. The scenario runner's always-on invariant checker covers
    // safety, liveness and retrieval completeness on top.
    let config = ScenarioConfig::small(64)
        .with_crypto_mode(CryptoMode::Metered)
        .with_wan_regions(&FIG9GEO_REGIONS)
        .with_duration(SimDuration::from_secs(3))
        .with_warmup(SimDuration::from_secs(1));
    let report = run_leopard_scenario(&config);
    let offered = config.workload.aggregate_rps as f64;
    assert!(
        report.steady_state_throughput_rps >= 0.5 * offered,
        "steady-state throughput {:.0} req/s fell below half the offered {offered:.0} req/s",
        report.steady_state_throughput_rps
    );
    assert!(
        report.steady_state_throughput_rps <= 1.2 * offered,
        "steady-state throughput {:.0} req/s exceeds the offered load {offered:.0} req/s",
        report.steady_state_throughput_rps
    );
    assert!(report.regions.len() == FIG9GEO_REGIONS.len());
}
