//! The topology refactor's contract, end to end:
//!
//! 1. **RNG compatibility** — a flat single-region `Topology` must reproduce the
//!    scalar `base_latency`/`jitter` model's event schedule bit-identically, through
//!    the whole stack (simnet delivery, harness scenario runner, protocol above).
//! 2. **Builder round-trip** — every topology built through the public builders has a
//!    symmetric latency matrix (property-tested), valid region bookkeeping, and
//!    accessors that return exactly what the builders set.
//! 3. **Straggler plumbing** — `ScenarioConfig::with_straggler_fraction` degrades the
//!    highest non-leader ids and the system still confirms requests.

use leopard::harness::scenario::{run_leopard_scenario, ScenarioConfig, ScenarioReport};
use leopard::simnet::{SimDuration, StragglerProfile, Topology};
use proptest::prelude::*;

/// Everything the goldens pin down, extracted for cheap comparison.
fn fingerprint(report: &ScenarioReport) -> (u64, u64, u64, Vec<u64>) {
    (
        report.sim.events,
        report.confirmed_requests,
        report.sim.metrics.traffic.total_sent_bytes(),
        report
            .sim
            .metrics
            .observations
            .iter()
            .map(|o| o.at.as_nanos())
            .collect(),
    )
}

/// A flat topology matching the datacenter scalars (500 µs base, 50 µs jitter) must
/// leave the scenario's schedule bit-identical: same events, same observation
/// timestamps, same traffic. This is the constraint that makes the refactor safe —
/// all pre-topology goldens keep passing because `None` and `flat` are the same model.
#[test]
fn flat_topology_scenario_is_bit_identical_to_the_scalar_model() {
    let scalar = run_leopard_scenario(&ScenarioConfig::small(7).with_seed(0xF1A7));
    let flat = run_leopard_scenario(&ScenarioConfig::small(7).with_seed(0xF1A7).with_topology(
        Topology::flat(SimDuration::from_micros(500), SimDuration::from_micros(50)),
    ));
    assert_eq!(fingerprint(&scalar), fingerprint(&flat));
    // The only visible difference: the flat topology reports its single region.
    assert!(scalar.regions.is_empty());
    assert_eq!(flat.regions.len(), 1);
    assert_eq!(flat.regions[0].name, "flat");
    assert_eq!(flat.regions[0].nodes, 7);
}

#[test]
fn wan_scenario_populates_regions_and_percentiles() {
    let config = ScenarioConfig::small(8)
        .with_wan_regions(&["us-east", "eu-west", "ap-northeast", "sa-east"])
        .with_duration(SimDuration::from_secs(3));
    let report = run_leopard_scenario(&config);
    assert!(report.confirmed_requests > 0, "WAN run confirmed nothing");
    assert_eq!(report.regions.len(), 4);
    for region in &report.regions {
        assert_eq!(region.nodes, 2);
        assert!(region.throughput_rps > 0.0, "region {} made no progress", region.name);
    }
    // At least the non-leader regions ack client requests, so per-region latency
    // columns are populated.
    assert!(report.regions.iter().any(|r| r.average_latency_secs.is_some()));
    let (p50, p95, p99) = (
        report.latency_p50_secs.expect("p50"),
        report.latency_p95_secs.expect("p95"),
        report.latency_p99_secs.expect("p99"),
    );
    assert!(p50 <= p95 && p95 <= p99, "percentiles out of order: {p50} {p95} {p99}");
    // WAN client latency must at least exceed one inter-region hop.
    assert!(p50 > 0.030, "p50 = {p50}s is below a single WAN hop");
}

#[test]
fn straggler_fraction_degrades_highest_non_leader_ids() {
    let config = ScenarioConfig::small(8).with_straggler_fraction(0.25);
    assert_eq!(config.straggler_count(), 2);
    let topology = config.effective_topology().expect("stragglers imply a topology");
    // Initial leader of an 8-replica deployment is r1; stragglers come from the top.
    let nodes: Vec<usize> = topology.stragglers().iter().map(|(n, _)| *n).collect();
    assert_eq!(nodes, vec![6, 7]);
    assert!(config.initial_leader().as_index() != 6 && config.initial_leader().as_index() != 7);

    // The degraded system still confirms requests.
    let report = run_leopard_scenario(&config.with_duration(SimDuration::from_secs(3)));
    assert!(report.confirmed_requests > 0, "straggler run confirmed nothing");
}

#[test]
fn straggler_on_flat_lan_leaves_the_clean_replicas_schedule_unperturbed() {
    // Degrading node 7 must not shift any RNG draw of the remaining replicas' traffic:
    // the straggler extras are deterministic. We can't expect bit-identity of the whole
    // run (the straggler's own messages shift), but the run must stay deterministic.
    let run = || {
        let config = ScenarioConfig::small(8).with_seed(7).with_straggler_fraction(0.125);
        fingerprint(&run_leopard_scenario(&config))
    };
    assert_eq!(run(), run());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `uniform` + `with_latency` round-trip: the matrix stays symmetric under any
    /// sequence of symmetric overrides, accessors return what was set, and validation
    /// accepts the result for any node count.
    #[test]
    fn uniform_topology_round_trips(
        region_count in 1usize..6,
        intra in 0u64..2_000_000,
        inter in 0u64..200_000_000,
        jitter in 0u64..20_000_000,
        overrides in proptest::collection::vec((0usize..6, 0usize..6, 0u64..100_000_000, 0u64..10_000_000), 0..8),
        nodes in 1usize..100,
    ) {
        let names: Vec<String> = (0..region_count).map(|i| format!("r{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut topology = Topology::uniform(
            &name_refs,
            SimDuration::from_nanos(intra),
            SimDuration::from_nanos(inter),
            SimDuration::from_nanos(jitter),
        );
        for (a, b, base, jit) in overrides {
            let (a, b) = (a % region_count, b % region_count);
            topology = topology.with_latency(a, b, SimDuration::from_nanos(base), SimDuration::from_nanos(jit));
            prop_assert_eq!(topology.base_between(a, b), SimDuration::from_nanos(base));
            prop_assert_eq!(topology.jitter_between(b, a), SimDuration::from_nanos(jit));
        }
        prop_assert_eq!(topology.region_count(), region_count);
        for i in 0..region_count {
            for j in 0..region_count {
                // Symmetric (and trivially non-negative: SimDuration is unsigned).
                prop_assert_eq!(topology.base_between(i, j), topology.base_between(j, i));
                prop_assert_eq!(topology.jitter_between(i, j), topology.jitter_between(j, i));
            }
        }
        for node in 0..nodes {
            prop_assert!(topology.region_of(node) < region_count);
        }
        prop_assert!(topology.validate(nodes).is_ok());
    }

    /// The `wan` builder produces a symmetric, validated topology for any subset of
    /// the known region names (and `two_dc` for any latency pair), and straggler
    /// profiles survive the round-trip through `with_straggler`.
    #[test]
    fn wan_and_two_dc_round_trip(
        mask in 1u8..127,
        intra in 0u64..5_000_000,
        inter in 0u64..50_000_000,
        straggler_node in 0usize..64,
        extra in 0u64..100_000_000,
        nodes in 64usize..200,
    ) {
        const NAMES: [&str; 7] = [
            "us-east", "us-west", "eu-west", "eu-central", "ap-northeast", "ap-southeast", "sa-east",
        ];
        let selected: Vec<&str> = NAMES
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, n)| *n)
            .collect();
        let wan = Topology::wan(&selected);
        prop_assert_eq!(wan.region_count(), selected.len());
        for i in 0..selected.len() {
            for j in 0..selected.len() {
                prop_assert_eq!(wan.base_between(i, j), wan.base_between(j, i));
                prop_assert_eq!(wan.jitter_between(i, j), wan.jitter_between(j, i));
            }
            prop_assert_eq!(wan.region_name(i), selected[i]);
        }
        let profile = StragglerProfile::slow_path(SimDuration::from_nanos(extra));
        let wan = wan.with_straggler(straggler_node, profile);
        prop_assert_eq!(wan.straggler(straggler_node).copied(), Some(profile));
        prop_assert!(wan.validate(nodes).is_ok());
        prop_assert!(wan.max_one_way_latency().as_nanos() >= 2 * extra);

        let dc = Topology::two_dc(SimDuration::from_nanos(intra), SimDuration::from_nanos(inter));
        prop_assert_eq!(dc.region_count(), 2);
        prop_assert_eq!(dc.base_between(0, 1), SimDuration::from_nanos(inter));
        prop_assert_eq!(dc.base_between(1, 0), SimDuration::from_nanos(inter));
        prop_assert!(dc.validate(nodes).is_ok());
    }
}
