//! Shape tests for the headline claims, at scales small enough for CI:
//!
//! * Leopard's leader moves far less traffic than HotStuff's leader at the same scale
//!   and offered load (Fig. 2 / Fig. 11);
//! * HotStuff's leader traffic grows roughly linearly with `n` while Leopard's does not
//!   (the constant-vs-linear scaling-factor claim, Table I);
//! * the closed-form cost model agrees with those directions.

use leopard::harness::analysis;
use leopard::harness::scenario::{run_hotstuff_scenario, run_leopard_scenario, ScenarioConfig};
use leopard::harness::workload::WorkloadConfig;
use leopard::simnet::SimDuration;
use leopard::types::ProtocolParams;

fn scenario(n: usize) -> ScenarioConfig {
    ScenarioConfig::small(n)
        .with_workload(WorkloadConfig {
            aggregate_rps: 8_000,
            payload_size: 128,
        })
        .with_duration(SimDuration::from_secs(2))
}

#[test]
fn leopard_leader_moves_less_traffic_than_hotstuff_leader() {
    let n = 16;
    let leopard = run_leopard_scenario(&scenario(n));
    let hotstuff = run_hotstuff_scenario(&scenario(n));
    // Both systems confirm a comparable number of requests at this small scale...
    assert!(leopard.confirmed_requests > 0);
    assert!(hotstuff.confirmed_requests > 0);
    // ...but the HotStuff leader personally ships the payload to everyone.
    let leopard_leader_sent = leopard
        .sim
        .metrics
        .traffic
        .sent_bytes(ScenarioConfig::small(n).initial_leader());
    let hotstuff_leader_sent = hotstuff
        .sim
        .metrics
        .traffic
        .sent_bytes(ScenarioConfig::small(n).initial_leader());
    assert!(
        hotstuff_leader_sent > 3 * leopard_leader_sent,
        "hotstuff leader sent {hotstuff_leader_sent}, leopard leader sent {leopard_leader_sent}"
    );
}

#[test]
fn hotstuff_leader_traffic_grows_with_n_leopards_does_not() {
    // The scaling-factor metric counts all bits a replica moves (sent + received) per
    // confirmed request; for the leader this is what stays O(1) in Leopard and grows
    // O(n) in HotStuff. Leopard achieves that with `α = λ(n−1)`: the datablock size
    // grows with the committee (paper §V-B and Table II), amortising the per-block
    // control traffic (ready acks, vote rounds) that is inherently Θ(n) per BFTblock.
    // The scenario scales the batch the same way; a fixed tiny datablock would make
    // per-request leader bytes grow with n even in the paper's own cost model.
    let per_request_leader_bytes = |n: usize, leopard: bool| -> f64 {
        let datablock = 16 * (n - 1) / 3;
        let config = scenario(n).with_batches(datablock, 8);
        let report = if leopard {
            run_leopard_scenario(&config)
        } else {
            run_hotstuff_scenario(&config)
        };
        let leader = ScenarioConfig::small(n).initial_leader();
        let moved = (report.sim.metrics.traffic.sent_bytes(leader)
            + report.sim.metrics.traffic.received_bytes(leader)) as f64;
        moved / report.confirmed_requests.max(1) as f64
    };

    let hotstuff_small = per_request_leader_bytes(4, false);
    let hotstuff_large = per_request_leader_bytes(16, false);
    let leopard_small = per_request_leader_bytes(4, true);
    let leopard_large = per_request_leader_bytes(16, true);

    // HotStuff: leader bytes per confirmed request grow roughly with n (×4 scale here,
    // expect at least ×2.5 to absorb noise).
    assert!(
        hotstuff_large > 2.5 * hotstuff_small,
        "hotstuff per-request leader bytes: {hotstuff_small} -> {hotstuff_large}"
    );
    // Leopard: the growth is much smaller than the n factor (the dominant cost is
    // receiving each datablock once, which does not depend on n).
    assert!(
        leopard_large < 2.0 * leopard_small.max(1.0),
        "leopard per-request leader bytes: {leopard_small} -> {leopard_large}"
    );
}

#[test]
fn analytical_model_predicts_the_same_direction() {
    let capacity = 9_800_000_000u64;
    let leopard_32 = analysis::leopard_predicted_throughput(&ProtocolParams::paper_defaults(32), capacity);
    let leopard_600 = analysis::leopard_predicted_throughput(&ProtocolParams::paper_defaults(600), capacity);
    let hotstuff_32 =
        analysis::leader_based_predicted_throughput(&ProtocolParams::paper_defaults(32), capacity);
    let hotstuff_600 =
        analysis::leader_based_predicted_throughput(&ProtocolParams::paper_defaults(600), capacity);
    assert!(leopard_600 > 0.9 * leopard_32);
    assert!(hotstuff_600 < 0.1 * hotstuff_32);
    assert!(leopard_600 / hotstuff_600 > 5.0);
}

#[test]
fn experiment_dispatcher_produces_tables() {
    // Smoke-test the cheap experiments through the public dispatcher.
    for id in ["tab1", "tab2"] {
        let table = leopard::harness::experiments::run_experiment(id, true)
            .unwrap_or_else(|| panic!("unknown experiment {id}"));
        assert!(!table.rows.is_empty());
        assert!(!table.to_text().is_empty());
        assert!(!table.to_csv().is_empty());
    }
}

/// Regression guard for the PR-3 fix of the n ≥ 128 throughput collapse: before the
/// event-driven pipeline + run-lifecycle refactor, (a) the saturated batch timer's
/// first fire was deferred by a whole pacing interval (≈ 3 s at n = 128), so no
/// datablock existed before a short run ended, and (b) the simulator reserved receiver
/// downlinks at route time, starving votes behind fan-out tails. Either regression
/// drives the confirmed throughput here to zero.
///
/// Quick profile: paper protocol parameters at n ∈ {128, 192} with a reduced offered
/// load, batch size and duration so the unoptimised (debug) test build stays fast; the
/// full-scale point runs in CI via the `fig9smoke` experiment in release mode.
fn quick_paper_scale(n: usize) -> ScenarioConfig {
    ScenarioConfig::paper(n)
        .with_workload(WorkloadConfig {
            aggregate_rps: 20_000,
            payload_size: 128,
        })
        .with_batches(500, 50)
        .with_duration(SimDuration::from_millis(1_500))
}

fn assert_confirms_at_scale(n: usize) {
    let report = run_leopard_scenario(&quick_paper_scale(n));
    assert!(
        report.confirmed_requests > 0,
        "n={n}: confirmed nothing ({})",
        report.stall_summary()
    );
    assert!(
        report.steady_state_throughput_rps > 0.0,
        "n={n}: zero steady-state throughput ({})",
        report.stall_summary()
    );
    let probe = report.leader_probe.as_ref().expect("leader probe is instrumented");
    assert_eq!(
        probe.stall, "None",
        "n={n}: steady state stalled on {} ({})",
        probe.stall,
        probe.summary()
    );
}

#[test]
fn leopard_confirms_at_n128_with_healthy_pipeline() {
    assert_confirms_at_scale(128);
}

#[test]
fn leopard_confirms_at_n192_with_healthy_pipeline() {
    assert_confirms_at_scale(192);
}
