//! Fault-injection integration tests: the selective-dissemination attack (retrieval
//! path), leader crashes (view-change path) and crash-restart catch-up (state-transfer
//! path), exercised through the public scenario API and direct simulation access.

mod common;

use common::{assert_logs_consistent, build_simulation, run};
use leopard::core::byzantine::ByzantineBehavior;
use leopard::harness::scenario::{run_leopard_scenario, run_leopard_scenario_unchecked, ScenarioConfig};
use leopard::harness::workload::WorkloadConfig;
use leopard::simnet::{FaultPlan, SimDuration, SimTime};
use leopard::types::NodeId;

#[test]
fn selective_attacker_forces_retrievals_but_not_stalls() {
    let config = ScenarioConfig::small(7)
        .with_selective_attackers(2)
        .with_duration(SimDuration::from_secs(4));
    let report = run_leopard_scenario(&config);
    assert!(report.confirmed_requests > 0, "the system stalled");
    assert!(report.retrievals > 0, "no retrieval happened despite the attack");
    assert!(report.average_retrieval_secs.unwrap_or(0.0) < 2.0);
}

#[test]
fn leader_crash_recovers_via_view_change() {
    let config = ScenarioConfig::small(4)
        .with_leader_crash_at(SimDuration::from_millis(400))
        .with_duration(SimDuration::from_secs(6));
    let report = run_leopard_scenario(&config);
    assert!(report.view_changes > 0, "no view change after the leader crash");
    assert!(
        report.average_view_change_secs.is_some(),
        "no replica completed the view change"
    );
    assert!(report.view_change_bytes > 0);
    assert!(report.confirmed_requests > 0, "no progress after recovery");
}

#[test]
fn combined_faults_still_make_progress() {
    let config = ScenarioConfig::small(7)
        .with_selective_attackers(1)
        .with_leader_crash_at(SimDuration::from_secs(1))
        .with_workload(WorkloadConfig {
            aggregate_rps: 3_000,
            payload_size: 128,
        })
        .with_duration(SimDuration::from_secs(8));
    let report = run_leopard_scenario(&config);
    assert!(report.confirmed_requests > 0);
    assert!(report.view_changes > 0);
}

#[test]
fn crash_restart_catches_up_and_logs_agree() {
    let n = 4;
    // Replica 2 (a follower) is down for a full second — long enough for the rest of
    // the cluster to checkpoint past it, forcing catch-up via state transfer rather
    // than ordinary replay.
    let faults = FaultPlan::none().with_crash_restart(
        NodeId(2),
        SimTime::ZERO + SimDuration::from_millis(500),
        SimTime::ZERO + SimDuration::from_millis(1500),
    );
    let mut sim = build_simulation(n, |_, c| c, faults);
    run(&mut sim, 4);
    let rejoined = sim.node(NodeId(2));
    assert!(
        rejoined.last_executed().0 > 0,
        "the restarted replica never executed anything"
    );
    let healthy_head = sim.node(NodeId(0)).last_executed().0;
    assert!(
        healthy_head.saturating_sub(rejoined.last_executed().0) <= 16,
        "the restarted replica never caught back up (at {} vs head {healthy_head})",
        rejoined.last_executed().0
    );
    assert_logs_consistent(&sim, n, &[0, 1, 2, 3]);
}

/// Runs a crash-restart of replica 2 with one recovery-plane adversary among the
/// peers its catch-up will ask, and asserts the restarted replica still catches up
/// (honest-majority rotation defeats the attacker) with logs consistent.
fn assert_catchup_despite(behaviour: ByzantineBehavior) {
    let n = 7;
    let adversary = NodeId(1);
    let faults = FaultPlan::none().with_crash_restart(
        NodeId(2),
        SimTime::ZERO + SimDuration::from_millis(500),
        SimTime::ZERO + SimDuration::from_millis(1500),
    );
    let mut sim = build_simulation(
        n,
        move |id, config| {
            if id == adversary {
                config.with_byzantine(behaviour)
            } else {
                config
            }
        },
        faults,
    );
    run(&mut sim, 5);
    let rejoined = sim.node(NodeId(2));
    assert!(
        rejoined.last_executed().0 > 0,
        "the restarted replica never executed anything"
    );
    let healthy_head = sim.node(NodeId(0)).last_executed().0;
    assert!(
        healthy_head.saturating_sub(rejoined.last_executed().0) <= 16,
        "the restarted replica never caught back up (at {} vs head {healthy_head})",
        rejoined.last_executed().0
    );
    // A lying responder inflates its view claim by 64; adopting it would leave the
    // restarted replica complaining in a view nobody else occupies.
    let healthy_view = sim.node(NodeId(0)).view().0;
    assert!(
        rejoined.view().0 <= healthy_view + 1,
        "the restarted replica adopted a forged view claim ({} vs healthy {healthy_view})",
        rejoined.view().0
    );
    assert_logs_consistent(&sim, n, &[0, 2, 3, 4, 5, 6]);
}

#[test]
fn lying_state_responder_is_rejected_without_wedging_catchup() {
    // The forged checkpoint state, swapped proofs and inflated view claim must all be
    // detected: the requester verifies every proof and only adopts a view corroborated
    // by f+1 responders of one sync round.
    assert_catchup_despite(ByzantineBehavior::LyingStateResponder);
}

#[test]
fn silent_state_responder_does_not_wedge_catchup() {
    // A responder that simply never answers state requests must not starve catch-up:
    // the responder set rotates every retry, so an honest peer is reached.
    assert_catchup_despite(ByzantineBehavior::SilentStateResponder);
}

#[test]
fn equivocating_checkpointer_does_not_block_garbage_collection() {
    // Forged checkpoint shares carry a wrong state digest; the quorum signature over
    // the honest digest still forms (n - 1 honest replicas > 2f + 1), so the stable
    // watermark keeps advancing and logs stay consistent.
    let n = 7;
    let adversary = NodeId(1);
    let mut sim = build_simulation(
        n,
        move |id, config| {
            if id == adversary {
                config.with_byzantine(ByzantineBehavior::EquivocatingCheckpointer)
            } else {
                config
            }
        },
        FaultPlan::none(),
    );
    run(&mut sim, 4);
    for id in [0u32, 2, 3, 4, 5, 6] {
        assert!(
            sim.node(NodeId(id)).low_watermark().0 > 0,
            "garbage collection never advanced at replica {id}"
        );
    }
    assert_logs_consistent(&sim, n, &[0, 2, 3, 4, 5, 6]);
}

#[test]
fn view_change_thrash_flag_trips_when_bound_is_exceeded() {
    // A single leader crash legitimately burns one view; with the thrash bound forced
    // to zero the checker must flag it, proving the invariant is wired through the
    // scenario runner (the default bound keeps real recoveries clean).
    let config = ScenarioConfig::small(4)
        .with_leader_crash_at(SimDuration::from_millis(400))
        .with_view_thrash_bound(0)
        .with_duration(SimDuration::from_secs(6));
    let report = run_leopard_scenario_unchecked(&config);
    assert!(
        report.violations.iter().any(|v| v.contains("view-change thrash")),
        "thrash violation not reported: {:?}",
        report.violations
    );
    assert!(report.views_entered >= 1);
    assert!(report.max_views_per_disturbance >= 1);
}

#[test]
fn retrieval_cost_is_split_across_the_committee() {
    // The Fig. 12 property: the per-responder cost is a fraction of the full datablock,
    // because responses are erasure-coded chunks rather than whole datablocks.
    let config = ScenarioConfig::small(7)
        .with_batches(64, 8)
        .with_selective_attackers(1)
        .with_duration(SimDuration::from_secs(4));
    let report = run_leopard_scenario(&config);
    // A 64-request synthetic datablock encodes to 64 × 17 B + header ≈ 1.1 KB; a single
    // response carries only a (f+1 = 3)-way chunk of it plus a Merkle proof.
    let encoded_datablock_bytes = 64.0 * 17.0;
    if let (Some(responder), Some(recovered)) = (
        report.average_responder_bytes,
        report.average_retrieval_recv_bytes,
    ) {
        assert!(
            responder < encoded_datablock_bytes,
            "per-response cost {responder} should be below a full encoded datablock {encoded_datablock_bytes}"
        );
        assert!(recovered > 0.0);
        // Recovering needs f+1 chunks, so it costs more than a single response.
        assert!(recovered > responder);
    } else {
        panic!("retrieval statistics missing: {report:?}");
    }
}
