//! Fault-injection integration tests: the selective-dissemination attack (retrieval
//! path) and leader crashes (view-change path), exercised through the public scenario
//! API.

use leopard::harness::scenario::{run_leopard_scenario, ScenarioConfig};
use leopard::harness::workload::WorkloadConfig;
use leopard::simnet::SimDuration;

#[test]
fn selective_attacker_forces_retrievals_but_not_stalls() {
    let config = ScenarioConfig::small(7)
        .with_selective_attackers(2)
        .with_duration(SimDuration::from_secs(4));
    let report = run_leopard_scenario(&config);
    assert!(report.confirmed_requests > 0, "the system stalled");
    assert!(report.retrievals > 0, "no retrieval happened despite the attack");
    assert!(report.average_retrieval_secs.unwrap_or(0.0) < 2.0);
}

#[test]
fn leader_crash_recovers_via_view_change() {
    let config = ScenarioConfig::small(4)
        .with_leader_crash_at(SimDuration::from_millis(400))
        .with_duration(SimDuration::from_secs(6));
    let report = run_leopard_scenario(&config);
    assert!(report.view_changes > 0, "no view change after the leader crash");
    assert!(
        report.average_view_change_secs.is_some(),
        "no replica completed the view change"
    );
    assert!(report.view_change_bytes > 0);
    assert!(report.confirmed_requests > 0, "no progress after recovery");
}

#[test]
fn combined_faults_still_make_progress() {
    let config = ScenarioConfig::small(7)
        .with_selective_attackers(1)
        .with_leader_crash_at(SimDuration::from_secs(1))
        .with_workload(WorkloadConfig {
            aggregate_rps: 3_000,
            payload_size: 128,
        })
        .with_duration(SimDuration::from_secs(8));
    let report = run_leopard_scenario(&config);
    assert!(report.confirmed_requests > 0);
    assert!(report.view_changes > 0);
}

#[test]
fn retrieval_cost_is_split_across_the_committee() {
    // The Fig. 12 property: the per-responder cost is a fraction of the full datablock,
    // because responses are erasure-coded chunks rather than whole datablocks.
    let config = ScenarioConfig::small(7)
        .with_batches(64, 8)
        .with_selective_attackers(1)
        .with_duration(SimDuration::from_secs(4));
    let report = run_leopard_scenario(&config);
    // A 64-request synthetic datablock encodes to 64 × 17 B + header ≈ 1.1 KB; a single
    // response carries only a (f+1 = 3)-way chunk of it plus a Merkle proof.
    let encoded_datablock_bytes = 64.0 * 17.0;
    if let (Some(responder), Some(recovered)) = (
        report.average_responder_bytes,
        report.average_retrieval_recv_bytes,
    ) {
        assert!(
            responder < encoded_datablock_bytes,
            "per-response cost {responder} should be below a full encoded datablock {encoded_datablock_bytes}"
        );
        assert!(recovered > 0.0);
        // Recovering needs f+1 chunks, so it costs more than a single response.
        assert!(recovered > responder);
    } else {
        panic!("retrieval statistics missing: {report:?}");
    }
}
