//! Shared support for the cross-crate integration tests (`safety_liveness.rs`,
//! `fault_recovery.rs`): simulation construction, a bounded run helper and the
//! honest-log consistency check (Theorem 1) that several binaries assert.
//!
//! Each integration-test binary compiles its own copy of this module via
//! `mod common;`, so not every binary uses every helper.
#![allow(dead_code)]

use leopard::core::{LeopardConfig, LeopardReplica};
use leopard::simnet::{FaultPlan, NetworkConfig, SimDuration, SimTime, Simulation};
use leopard::types::{NodeId, SeqNum};

/// The key-material seed every direct-simulation integration test shares.
pub const SHARED_KEY_SEED: u64 = 99;

/// The event budget [`run`] hands to the simulator — generous enough for the largest
/// scales the integration tests exercise.
pub const MAX_EVENTS: u64 = 20_000_000;

/// Builds an `n`-replica simulation from `base` on an arbitrary network, with a
/// per-replica configuration hook (Byzantine behaviour, crypto mode, ...). The shared
/// key material is derived from `base`, so a metered-crypto `base` yields a metered
/// provider as well.
pub fn build_simulation_with(
    network: NetworkConfig,
    base: LeopardConfig,
    configure: impl Fn(NodeId, LeopardConfig) -> LeopardConfig + 'static,
    faults: FaultPlan,
) -> Simulation<LeopardReplica> {
    let shared = LeopardConfig::shared_keys(&base, SHARED_KEY_SEED);
    Simulation::new(network, faults, move |id| {
        let config = configure(id, base.clone());
        LeopardReplica::new(id, config, shared.clone())
    })
}

/// [`build_simulation_with`] on the flat datacenter network with `small_test`
/// defaults — the configuration the original safety/liveness tests were written for.
pub fn build_simulation(
    n: usize,
    configure: impl Fn(NodeId, LeopardConfig) -> LeopardConfig + 'static,
    faults: FaultPlan,
) -> Simulation<LeopardReplica> {
    build_simulation_with(
        NetworkConfig::datacenter(n),
        LeopardConfig::small_test(n),
        configure,
        faults,
    )
}

/// Runs the simulation for `secs` of virtual time under the shared event budget.
pub fn run(sim: &mut Simulation<LeopardReplica>, secs: u64) {
    sim.run_until(SimTime::ZERO + SimDuration::from_secs(secs), MAX_EVENTS);
}

/// Safety: every pair of honest replicas agrees on the block at every executed serial
/// number (Theorem 1). Only serials above every honest replica's garbage-collection
/// watermark can still be compared from the logs.
pub fn assert_logs_consistent(sim: &Simulation<LeopardReplica>, n: usize, honest: &[u32]) {
    let min_executed = honest
        .iter()
        .map(|&i| sim.node(NodeId(i)).last_executed().0)
        .min()
        .unwrap_or(0);
    let first_comparable = honest
        .iter()
        .map(|&i| sim.node(NodeId(i)).low_watermark().0 + 1)
        .max()
        .unwrap_or(1);
    assert!(n >= honest.len());
    for seq in first_comparable..=min_executed {
        let mut reference = None;
        for &i in honest {
            let block = sim
                .node(NodeId(i))
                .log_block(SeqNum(seq))
                .unwrap_or_else(|| panic!("replica {i} executed seq {seq} but has no log entry"));
            match &reference {
                None => reference = Some(block.clone()),
                Some(expected) => assert_eq!(
                    expected.links, block.links,
                    "divergent logs at seq {seq} (replica {i})"
                ),
            }
        }
    }
}
