//! Fan-out side-table equivalence properties (PR 10).
//!
//! The compressed event queue (see `DESIGN.md` §10) interns each logical fan-out
//! once in a per-run side table and queues `{fanout, receiver}` handles in place of
//! the expanded per-copy `{from, to, Arc<message>, size}` events. The expanded
//! representation no longer exists in the code, but its observable behaviour is
//! pinned twice over: the constants in `tests/determinism_golden.rs` were captured
//! from it, and `tests/engine_equivalence.rs` holds the parallel engine to the same
//! stream. This file adds the *property* layer on top of those point checks: across
//! fuzzed seeds, fault schedules and topologies (the chaos generator's space —
//! WAN/LAN, crash windows, region partitions, Byzantine proposers), the compressed
//! queue must
//!
//! * produce the same observation stream on both engines (sequential and parallel
//!   take entirely different paths through the table — immediate refcounting vs
//!   worker-side reads with deferred accounting in the replay), and
//! * pass the fan-out reference audit at the end of the run: every slot's refcount
//!   equals the number of `Arrive`/`Deliver` handles still queued against it (runs
//!   cut off at their deadline legitimately end with handles in flight, so "live
//!   slots == 0" would be the wrong invariant). A leaked reference leaves a slot
//!   out-referenced and fails the audit; a double-free underflows the slot's
//!   refcount and panics inside the table (debug assertions and overflow checks are
//!   active in the test profile) before the comparison even runs.
//!
//! Crash windows and partitions matter specifically because they drop *individual
//! receivers* out of a fan-out: the dropped copy's reference must come back via the
//! crash-path `release` (never `consume`), and a fan-out whose every copy is dropped
//! at route time must be reclaimed by `release_if_unused` without ever being
//! referenced.

use leopard::harness::chaos::FaultScheduleGenerator;
use leopard::harness::scenario::{run_leopard_scenario_unchecked, ScenarioConfig, ScenarioReport};
use proptest::prelude::*;

/// The full observable surface of a run: headline totals plus the complete
/// observation stream with instants, so two runs agreeing here are
/// observationally interchangeable.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    events: u64,
    confirmed: u64,
    sent_bytes: u64,
    recv_bytes: u64,
    views_entered: u64,
    observations: Vec<(u64, u32)>,
}

fn fingerprint(report: &ScenarioReport) -> Fingerprint {
    Fingerprint {
        events: report.sim.events,
        confirmed: report.confirmed_requests,
        sent_bytes: report.sim.metrics.traffic.total_sent_bytes(),
        recv_bytes: report.sim.metrics.traffic.total_received_bytes(),
        views_entered: report.views_entered,
        observations: report
            .sim
            .metrics
            .observations
            .iter()
            .map(|o| (o.at.as_nanos(), o.node.0))
            .collect(),
    }
}

fn run(config: &ScenarioConfig, parallel: bool) -> ScenarioReport {
    run_leopard_scenario_unchecked(&config.clone().with_parallel(parallel))
}

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// One fuzzed chaos schedule per case: `(n, master_seed, case_index)` select a
    /// schedule from the same generator CI's chaos smoke fuzzes — crash/restart
    /// windows, region partitions (WAN cases), message filters and Byzantine
    /// proposer draws included.
    #[test]
    fn compressed_queue_is_stream_equivalent_and_leak_free(
        n in 4usize..10,
        master_seed in 0u64..1024,
        case in 0usize..64,
    ) {
        let config = FaultScheduleGenerator::new(n, master_seed).schedule(case).to_config();

        let sequential = run(&config, false);
        prop_assert!(
            sequential.sim.fanouts_balanced,
            "sequential run failed the reference audit ({} live, peak {})",
            sequential.sim.fanouts_live, sequential.sim.fanouts_peak
        );

        let parallel = run(&config, true);
        prop_assert!(
            parallel.sim.fanouts_balanced,
            "parallel run failed the reference audit ({} live, peak {})",
            parallel.sim.fanouts_live, parallel.sim.fanouts_peak
        );

        prop_assert_eq!(
            fingerprint(&sequential),
            fingerprint(&parallel),
            "engines diverged on a fuzzed schedule"
        );
        // The slot *lifecycle* must also agree: live count and peak table size are
        // functions of the (identical) event schedule, not of which engine ran it.
        prop_assert_eq!(sequential.sim.fanouts_live, parallel.sim.fanouts_live);
        prop_assert_eq!(sequential.sim.fanouts_peak, parallel.sim.fanouts_peak);
        prop_assert_eq!(sequential.violations, parallel.violations);
    }
}

/// Deterministic regression anchor next to the fuzzed property: the recovery-wedging
/// chaos schedule (seed 7, case 142 — the PR 7 reproducer) passes the reference
/// audit on both engines even though crashes and partitions drop receivers
/// mid-flight (the crash-path `release` must return exactly the dropped handles).
#[test]
fn chaos_reproducer_balances_every_slot() {
    let config = FaultScheduleGenerator::new(16, 7).schedule(142).to_config();
    for parallel in [false, true] {
        let report = run(&config, parallel);
        assert!(
            report.sim.fanouts_balanced,
            "parallel={parallel}: reference audit failed ({} live, peak {})",
            report.sim.fanouts_live,
            report.sim.fanouts_peak
        );
        assert!(report.sim.fanouts_peak > 0, "parallel={parallel}: table never used");
    }
}
