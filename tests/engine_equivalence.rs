//! Sequential-vs-parallel engine equivalence.
//!
//! The sharded event engine (PR 8) has two execution modes: the default sequential
//! mode (winner-tree merge over per-node shards, conservative-lookahead runs) and the
//! opt-in parallel mode (same-instant event batches executed on worker threads, state
//! applied sequentially in slot order). Both must be observationally identical — same
//! event count, same confirmations, same traffic totals, same observation stream — to
//! each other *and* to the pre-PR single-heap engine, whose behaviour the captured
//! constants in `tests/determinism_golden.rs` pin.
//!
//! The golden tests below re-assert those same constants **through the parallel
//! engine**: `determinism_golden.rs` proves the sequential sharded engine did not
//! drift from the single-heap capture, and this file proves parallel mode does not
//! drift from sequential. A failure here with `determinism_golden.rs` green therefore
//! isolates the bug to the parallel tick (batch grouping, worker partitioning, or
//! apply order).

use leopard::harness::chaos::FaultScheduleGenerator;
use leopard::harness::experiments::FIG9GEO_REGIONS;
use leopard::harness::scenario::{
    run_hotstuff_scenario, run_leopard_scenario, run_leopard_scenario_unchecked, ScenarioConfig,
    ScenarioReport,
};

/// Everything the determinism goldens pin, plus the full observation stream (instants
/// included), so two engines agreeing here are observationally interchangeable.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    events: u64,
    confirmed: u64,
    sent_bytes: u64,
    recv_bytes: u64,
    views_entered: u64,
    observations: Vec<(u64, u32)>,
}

fn fingerprint(report: &ScenarioReport) -> Fingerprint {
    Fingerprint {
        events: report.sim.events,
        confirmed: report.confirmed_requests,
        sent_bytes: report.sim.metrics.traffic.total_sent_bytes(),
        recv_bytes: report.sim.metrics.traffic.total_received_bytes(),
        views_entered: report.views_entered,
        observations: report
            .sim
            .metrics
            .observations
            .iter()
            .map(|o| (o.at.as_nanos(), o.node.0))
            .collect(),
    }
}

fn assert_equivalent(label: &str, config: &ScenarioConfig) {
    let sequential = run_leopard_scenario_unchecked(&config.clone().with_parallel(false));
    let parallel = run_leopard_scenario_unchecked(&config.clone().with_parallel(true));
    assert_eq!(
        fingerprint(&sequential),
        fingerprint(&parallel),
        "{label}: parallel engine diverged from sequential"
    );
    assert_eq!(
        sequential.violations, parallel.violations,
        "{label}: invariant verdicts diverged"
    );
}

/// The fig9 golden point (`paper(16)`, seed 0xA5A5) through the parallel engine must
/// reproduce the exact constants captured from the pre-PR single-heap engine.
#[test]
fn parallel_engine_reproduces_fig9_golden() {
    let config = ScenarioConfig::paper(16).with_seed(0xA5A5).with_parallel(true);
    let report = run_leopard_scenario(&config);
    assert_eq!(report.sim.events, 49_883);
    assert_eq!(report.confirmed_requests, 386_000);
    assert_eq!(report.sim.metrics.traffic.total_sent_bytes(), 845_385_150);
    assert_eq!(report.sim.metrics.traffic.total_received_bytes(), 845_385_150);
}

/// The HotStuff golden point through the parallel engine (the baseline protocol runs
/// on the same engine, so it guards the non-Leopard dispatch path).
#[test]
fn parallel_engine_reproduces_hotstuff_golden() {
    let config = ScenarioConfig::paper(16).with_seed(0xA5A5).with_parallel(true);
    let report = run_hotstuff_scenario(&config);
    assert_eq!(report.sim.events, 125_449);
    assert_eq!(report.confirmed_requests, 388_700);
    assert_eq!(report.sim.metrics.traffic.total_sent_bytes(), 853_158_840);
}

/// The fig9geo golden point (4-region WAN, 10% stragglers, seed 0x6E0) through the
/// parallel engine: pins the topology delivery path, whose per-message jitter draws
/// are the easiest thing for a parallel tick to reorder.
#[test]
fn parallel_engine_reproduces_fig9geo_golden() {
    let config = ScenarioConfig::paper(16)
        .with_wan_regions(&FIG9GEO_REGIONS)
        .with_straggler_fraction(0.10)
        .with_seed(0x6E0)
        .with_parallel(true);
    let report = run_leopard_scenario(&config);
    assert_eq!(report.sim.events, 32_974);
    assert_eq!(report.confirmed_requests, 294_000);
    assert_eq!(report.sim.metrics.traffic.total_sent_bytes(), 844_733_759);
    assert_eq!(report.sim.metrics.traffic.total_received_bytes(), 844_733_759);
}

/// Chaos case 142 (seed 7, n = 16 — the recovery-wedging schedule) through the
/// parallel engine: crashes, partitions and state transfer under worker threads.
#[test]
fn parallel_engine_reproduces_chaos_case_142_golden() {
    let schedule = FaultScheduleGenerator::new(16, 7).schedule(142);
    let config = schedule.to_config().with_parallel(true);
    let report = run_leopard_scenario_unchecked(&config);
    assert_eq!(report.violations, Vec::<String>::new());
    assert_eq!(report.sim.events, 88_251);
    assert_eq!(report.confirmed_requests, 65_200);
    assert_eq!(report.sim.metrics.traffic.total_sent_bytes(), 250_904_315);
    assert_eq!(report.sim.metrics.traffic.total_received_bytes(), 243_161_414);
    assert_eq!(report.views_entered, 1);
}

/// Property check over a spread of seeds at a scale the goldens do not cover: the two
/// engines must agree on the full observation stream, not just the headline totals.
#[test]
fn engines_agree_across_seeds() {
    for seed in [1u64, 42, 0xDEAD, 0xFEED_F00D] {
        let config = ScenarioConfig::small(7).with_seed(seed);
        assert_equivalent(&format!("small(7) seed {seed:#x}"), &config);
    }
}

/// Fault-path property check: a leader crash plus a crash-restart window exercises the
/// timer, crash and state-transfer paths under both engines.
#[test]
fn engines_agree_under_faults() {
    use leopard::simnet::SimDuration;
    let config = ScenarioConfig::small(7)
        .with_seed(9)
        .with_leader_crash_at(SimDuration::from_millis(300))
        .with_crash_restart(
            leopard::types::NodeId(3),
            SimDuration::from_millis(600),
            SimDuration::from_millis(1200),
        )
        .with_duration(SimDuration::from_secs(4));
    assert_equivalent("small(7) leader crash + crash-restart", &config);
}
