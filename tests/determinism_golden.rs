//! Golden determinism tests.
//!
//! Any engine or protocol **performance** change must be observationally pure: for a
//! fixed seed a simulation run produces exactly the same event count, confirmed
//! requests, and traffic totals. The constants below were captured from the PR-4 build
//! (release profile) after its **intentional semantic changes** — the compute-resource
//! model (crypto and erasure ops now charge modeled CPU time to a per-replica
//! sequential compute queue, shifting every downstream timestamp), quorum-batched vote
//! verification on the leaders, and the scale-aware retrieval timeout. They must not
//! drift as a side effect of a pure performance change.
//!
//! If a future PR changes these numbers **intentionally** (a protocol change, a network
//! model change), re-capture the constants and say so in the PR description — a diff
//! here is a semantic change, not a perf regression.
//!
//! PR 5 (the topology layer) kept every pre-existing constant byte-for-byte: a flat
//! scenario resolves to a single-region topology whose delivery path draws the same
//! jitter values in the same order as the old scalar model. The `fig9geo` golden below
//! was captured once when the geo-distributed path landed.

use leopard::harness::chaos::FaultScheduleGenerator;
use leopard::harness::scenario::{
    run_hotstuff_scenario, run_leopard_scenario, run_leopard_scenario_unchecked, ScenarioConfig,
};
use leopard::harness::experiments::FIG9GEO_REGIONS;

struct Golden {
    events: u64,
    confirmed: u64,
    sent_bytes: u64,
    recv_bytes: u64,
}

fn assert_matches(label: &str, report: &leopard::harness::scenario::ScenarioReport, golden: &Golden) {
    assert_eq!(report.sim.events, golden.events, "{label}: events_processed drifted");
    assert_eq!(
        report.confirmed_requests, golden.confirmed,
        "{label}: confirmed requests drifted"
    );
    assert_eq!(
        report.sim.metrics.traffic.total_sent_bytes(),
        golden.sent_bytes,
        "{label}: total sent bytes drifted"
    );
    assert_eq!(
        report.sim.metrics.traffic.total_received_bytes(),
        golden.recv_bytes,
        "{label}: total received bytes drifted"
    );
}

#[test]
fn leopard_quick_scale_matches_recaptured_golden() {
    let config = ScenarioConfig::paper(16).with_seed(0xA5A5);
    let report = run_leopard_scenario(&config);
    assert_matches(
        "leopard paper(16) seed 0xA5A5",
        &report,
        &Golden {
            events: 49_883,
            confirmed: 386_000,
            sent_bytes: 845_385_150,
            recv_bytes: 845_385_150,
        },
    );
}

#[test]
fn hotstuff_quick_scale_matches_recaptured_golden() {
    let config = ScenarioConfig::paper(16).with_seed(0xA5A5);
    let report = run_hotstuff_scenario(&config);
    assert_matches(
        "hotstuff paper(16) seed 0xA5A5",
        &report,
        &Golden {
            events: 125_449,
            confirmed: 388_700,
            sent_bytes: 853_158_840,
            recv_bytes: 853_158_840,
        },
    );
}

#[test]
fn leopard_small_scale_matches_recaptured_golden() {
    let config = ScenarioConfig::small(7).with_seed(0xD00D);
    let report = run_leopard_scenario(&config);
    assert_matches(
        "leopard small(7) seed 0xD00D",
        &report,
        &Golden {
            events: 25_058,
            confirmed: 3_984,
            sent_bytes: 4_230_750,
            recv_bytes: 4_230_750,
        },
    );
}

#[test]
fn hotstuff_small_scale_matches_recaptured_golden() {
    let config = ScenarioConfig::small(7).with_seed(0xD00D);
    let report = run_hotstuff_scenario(&config);
    assert_matches(
        "hotstuff small(7) seed 0xD00D",
        &report,
        &Golden {
            events: 51_577,
            confirmed: 3_980,
            sent_bytes: 6_569_256,
            recv_bytes: 6_569_256,
        },
    );
}

/// One point of the geo-distributed `fig9geo` sweep: Leopard at n = 16 over the
/// 4-region WAN with 10% stragglers (2 degraded replicas). Captured once when the
/// topology layer landed (PR 5); pins the WAN latency matrix, the straggler profile
/// resolution and the per-pair jitter draws all at once.
#[test]
fn leopard_fig9geo_point_matches_captured_golden() {
    let config = ScenarioConfig::paper(16)
        .with_wan_regions(&FIG9GEO_REGIONS)
        .with_straggler_fraction(0.10)
        .with_seed(0x6E0);
    let report = run_leopard_scenario(&config);
    assert_matches(
        "leopard fig9geo paper(16) wan4 +10% stragglers seed 0x6E0",
        &report,
        &Golden {
            events: 32_974,
            confirmed: 294_000,
            sent_bytes: 844_733_759,
            recv_bytes: 844_733_759,
        },
    );
}

/// One chaos-engine case: seed 7, case 142 at n = 16 — the schedule (two overlapping
/// crash-restart windows plus a flapping region partition on a 4-region WAN) that
/// historically wedged recovery hardest. Captured when the chaos engine landed (PR 7);
/// pins the fault-schedule generator's draws, the crash/partition delivery model and
/// every recovery path the schedule exercises (state transfer, re-proposal
/// endorsement, deferred PrePrepares, the checkpoint watermark jump) all at once.
/// Sent and received totals differ here by design: crashes and partition windows drop
/// in-flight bytes.
///
/// Re-captured when the multi-proposer plane landed: the fault schedule is unchanged
/// (the generator's proposer overlay draws from a forked RNG stream, and this case
/// draws 1 proposer), but a stalled replica behind a confirmed frontier now
/// state-syncs its execution gap instead of waiting out the checkpoint watermark —
/// the wedge this case pinned heals ~1.4 s sooner (confirmed 42 800 → 65 200) and
/// one of the two view changes is no longer needed.
#[test]
fn chaos_case_matches_captured_golden() {
    let schedule = FaultScheduleGenerator::new(16, 7).schedule(142);
    let report = run_leopard_scenario_unchecked(&schedule.to_config());
    assert_eq!(report.violations, Vec::<String>::new(), "chaos case 142 regressed");
    assert_eq!(report.sim.events, 88_251, "chaos golden: events drifted");
    assert_eq!(report.confirmed_requests, 65_200, "chaos golden: confirmed drifted");
    assert_eq!(
        report.sim.metrics.traffic.total_sent_bytes(),
        250_904_315,
        "chaos golden: sent bytes drifted"
    );
    assert_eq!(
        report.sim.metrics.traffic.total_received_bytes(),
        243_161_414,
        "chaos golden: received bytes drifted"
    );
    assert_eq!(report.views_entered, 1);
    assert_eq!(report.max_views_per_disturbance, 1);
}

/// Two chaos runs of the same seeded schedule are bit-identical — the property the
/// one-line reproducer printed for a violating case depends on.
#[test]
fn repeated_chaos_runs_are_bit_identical() {
    let run = || {
        let schedule = FaultScheduleGenerator::new(16, 7).schedule(17);
        let report = run_leopard_scenario_unchecked(&schedule.to_config());
        (
            report.sim.events,
            report.confirmed_requests,
            report.views_entered,
            report.violations.clone(),
            report.sim.metrics.traffic.total_sent_bytes(),
        )
    };
    assert_eq!(run(), run());
}

/// Two runs with the same seed agree on everything the golden constants pin down, at a
/// scale the constants do not cover (guards seed-plumbing, not just the four scenarios
/// above).
#[test]
fn repeated_runs_are_bit_identical() {
    let run = || {
        let config = ScenarioConfig::small(10).with_seed(42);
        let report = run_leopard_scenario(&config);
        (
            report.sim.events,
            report.confirmed_requests,
            report.sim.metrics.traffic.total_sent_bytes(),
            report
                .sim
                .metrics
                .observations
                .iter()
                .map(|o| o.at.as_nanos())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run());
}
