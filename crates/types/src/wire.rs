//! A small hand-rolled binary codec plus the [`WireSize`] trait used for bandwidth
//! accounting.
//!
//! The simulator charges every message its wire size against the sender's uplink and the
//! receiver's downlink; the thread-based runtime actually serialises messages through
//! this codec. Keeping both paths on the same encoding guarantees that the simulated
//! bandwidth numbers describe real bytes.
//!
//! The encoding is deliberately simple: fixed-width little-endian integers, length-
//! prefixed byte strings, no varints, no schema evolution. It is not a public
//! interchange format.

use std::fmt;

/// Types that know how many bytes their encoded representation occupies.
///
/// For types that also implement [`Encode`], `wire_size()` must equal the length of the
/// encoded byte string; this is asserted by property tests in the implementing crates.
pub trait WireSize {
    /// Size of the encoded representation in bytes.
    fn wire_size(&self) -> usize;
}

/// Error returned when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What the decoder was trying to read.
    pub context: &'static str,
}

impl DecodeError {
    /// Creates a decode error with a static description of what was being decoded.
    pub fn new(context: &'static str) -> Self {
        DecodeError { context }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire data while decoding {}", self.context)
    }
}

impl std::error::Error for DecodeError {}

/// Incremental encoder writing into an owned byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buffer: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with preallocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buffer: Vec::with_capacity(capacity),
        }
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buffer
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Returns true if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buffer.push(value);
    }

    /// Writes a little-endian u32.
    pub fn put_u32(&mut self, value: u32) {
        self.buffer.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn put_u64(&mut self, value: u64) {
        self.buffer.extend_from_slice(&value.to_le_bytes());
    }

    /// Writes a length-prefixed byte string (u32 length).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buffer.extend_from_slice(bytes);
    }

    /// Writes raw bytes without a length prefix (fixed-size fields such as digests).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }
}

/// Incremental decoder reading from a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over the given bytes.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, position: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.position
    }

    /// Returns true once all bytes have been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, len: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < len {
            return Err(DecodeError::new(context));
        }
        let slice = &self.bytes[self.position..self.position + len];
        self.position += len;
        Ok(slice)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        let bytes = self.take(4, context)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        let bytes = self.take(8, context)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self, context: &'static str) -> Result<Vec<u8>, DecodeError> {
        let len = self.get_u32(context)? as usize;
        Ok(self.take(len, context)?.to_vec())
    }

    /// Reads exactly `len` raw bytes.
    pub fn get_raw(&mut self, len: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        self.take(len, context)
    }
}

/// Types that can encode themselves with the [`WireWriter`].
pub trait Encode {
    /// Appends the encoded representation to `writer`.
    fn encode(&self, writer: &mut WireWriter);

    /// Convenience helper returning the encoded bytes.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut writer = WireWriter::new();
        self.encode(&mut writer);
        writer.into_bytes()
    }
}

/// Types that can decode themselves with the [`WireReader`].
pub trait Decode: Sized {
    /// Decodes a value, advancing the reader.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the bytes are truncated or malformed.
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, DecodeError>;

    /// Convenience helper decoding from a complete byte slice, requiring that every byte
    /// is consumed.
    fn decode_from_slice(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut reader = WireReader::new(bytes);
        let value = Self::decode(&mut reader)?;
        if !reader.is_exhausted() {
            return Err(DecodeError::new("trailing bytes"));
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut writer = WireWriter::new();
        writer.put_u8(7);
        writer.put_u32(0xDEADBEEF);
        writer.put_u64(u64::MAX - 1);
        writer.put_bytes(b"hello");
        writer.put_raw(&[1, 2, 3]);
        let bytes = writer.into_bytes();

        let mut reader = WireReader::new(&bytes);
        assert_eq!(reader.get_u8("u8").unwrap(), 7);
        assert_eq!(reader.get_u32("u32").unwrap(), 0xDEADBEEF);
        assert_eq!(reader.get_u64("u64").unwrap(), u64::MAX - 1);
        assert_eq!(reader.get_bytes("bytes").unwrap(), b"hello");
        assert_eq!(reader.get_raw(3, "raw").unwrap(), &[1, 2, 3]);
        assert!(reader.is_exhausted());
    }

    #[test]
    fn truncated_input_reports_context() {
        let mut reader = WireReader::new(&[1, 2]);
        let err = reader.get_u32("view number").unwrap_err();
        assert_eq!(err.context, "view number");
        assert!(err.to_string().contains("view number"));
    }

    #[test]
    fn decode_from_slice_rejects_trailing_bytes() {
        struct Byte(u8);
        impl Decode for Byte {
            fn decode(reader: &mut WireReader<'_>) -> Result<Self, DecodeError> {
                Ok(Byte(reader.get_u8("byte")?))
            }
        }
        assert_eq!(Byte::decode_from_slice(&[1]).unwrap().0, 1);
        assert!(Byte::decode_from_slice(&[1, 2]).is_err());
        assert!(Byte::decode_from_slice(&[]).is_err());
    }

    #[test]
    fn writer_capacity_and_len() {
        let mut writer = WireWriter::with_capacity(64);
        assert!(writer.is_empty());
        writer.put_u64(1);
        assert_eq!(writer.len(), 8);
    }
}
