//! Client requests.

use crate::ids::{ClientId, RequestId};
use crate::wire::{Decode, DecodeError, Encode, WireReader, WireSize, WireWriter};
use leopard_crypto::{hash_bytes, Digest};

/// The payload carried by a request.
///
/// Large-scale simulations (hundreds of replicas, millions of requests) do not
/// materialise payload bytes; they only carry the declared size so that bandwidth
/// accounting stays exact while memory stays bounded. Correctness tests and the
/// real-time runtime use inline payloads end-to-end.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RequestPayload {
    /// Real bytes, hashed into the request digest.
    Inline(Vec<u8>),
    /// A synthetic payload of the given size in bytes; contents are implied to be the
    /// request id repeated, so two synthetic requests with the same id and size are
    /// identical.
    Synthetic {
        /// Declared size of the payload in bytes.
        size: u32,
    },
}

impl RequestPayload {
    /// Size of the payload in bytes.
    pub fn len(&self) -> usize {
        match self {
            RequestPayload::Inline(bytes) => bytes.len(),
            RequestPayload::Synthetic { size } => *size as usize,
        }
    }

    /// Returns true for a zero-length payload.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A client request (`req` in the paper): the unit whose confirmation the protocol's
/// throughput counts.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Request {
    /// Globally unique identifier.
    pub id: RequestId,
    /// The operation payload.
    pub payload: RequestPayload,
}

impl Request {
    /// Creates a request with an inline payload.
    pub fn new_inline(client: ClientId, seq: u64, payload: Vec<u8>) -> Self {
        Self {
            id: RequestId::new(client, seq),
            payload: RequestPayload::Inline(payload),
        }
    }

    /// Creates a request with a synthetic payload of `size` bytes.
    pub fn new_synthetic(client: ClientId, seq: u64, size: u32) -> Self {
        Self {
            id: RequestId::new(client, seq),
            payload: RequestPayload::Synthetic { size },
        }
    }

    /// A collision-resistant digest of the request, used by the deterministic assignment
    /// function `µ(req)` and for deduplication.
    pub fn digest(&self) -> Digest {
        hash_bytes(&self.encode_to_vec())
    }

    /// The deterministic assignment function `µ(req)` of the paper: maps a request to the
    /// replica responsible for packing it, excluding the current leader.
    ///
    /// `attempt` selects the next responsible replica after a timeout; the client
    /// increments it on each re-submission (up to `f` times ensures an honest replica).
    pub fn responsible_replica(&self, n: usize, leader_index: usize, attempt: usize) -> usize {
        debug_assert!(n >= 2);
        let base = (self.id.client.0 as usize + self.id.seq as usize + attempt) % (n - 1);
        // Skip over the leader so a non-leader replica is always selected.
        if base >= leader_index {
            base + 1
        } else {
            base
        }
    }
}

impl Request {
    /// Length in bytes of [`Encode::encode`]'s output for this request, computed
    /// without encoding. Differs from [`WireSize::wire_size`] for synthetic payloads:
    /// the declared payload bytes are charged on the wire but not materialised by the
    /// codec (see [`RequestPayload::Synthetic`]).
    pub fn encoded_len(&self) -> usize {
        match &self.payload {
            RequestPayload::Inline(bytes) => 4 + 8 + 1 + 4 + bytes.len(),
            RequestPayload::Synthetic { .. } => 4 + 8 + 1 + 4,
        }
    }
}

impl WireSize for Request {
    fn wire_size(&self) -> usize {
        // id (client u32 + seq u64) + payload tag + length + payload bytes
        4 + 8 + 1 + 4 + self.payload.len()
    }
}

impl Encode for Request {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_u32(self.id.client.0);
        writer.put_u64(self.id.seq);
        match &self.payload {
            RequestPayload::Inline(bytes) => {
                writer.put_u8(0);
                writer.put_bytes(bytes);
            }
            RequestPayload::Synthetic { size } => {
                writer.put_u8(1);
                writer.put_u32(*size);
            }
        }
    }
}

impl Decode for Request {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let client = ClientId(reader.get_u32("request.client")?);
        let seq = reader.get_u64("request.seq")?;
        let tag = reader.get_u8("request.payload_tag")?;
        let payload = match tag {
            0 => RequestPayload::Inline(reader.get_bytes("request.payload")?),
            1 => RequestPayload::Synthetic {
                size: reader.get_u32("request.synthetic_size")?,
            },
            _ => return Err(DecodeError::new("request.payload_tag")),
        };
        Ok(Request {
            id: RequestId::new(client, seq),
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn inline_request_roundtrip() {
        let request = Request::new_inline(ClientId(7), 42, b"transfer 10 coins".to_vec());
        let bytes = request.encode_to_vec();
        assert_eq!(Request::decode_from_slice(&bytes).unwrap(), request);
        assert_eq!(request.payload.len(), 17);
        assert!(!request.payload.is_empty());
    }

    #[test]
    fn synthetic_request_roundtrip_and_digest_stability() {
        let a = Request::new_synthetic(ClientId(1), 5, 128);
        let b = Request::new_synthetic(ClientId(1), 5, 128);
        assert_eq!(a.digest(), b.digest());
        let bytes = a.encode_to_vec();
        assert_eq!(Request::decode_from_slice(&bytes).unwrap(), a);
    }

    #[test]
    fn wire_size_of_inline_matches_encoding_length() {
        let request = Request::new_inline(ClientId(3), 9, vec![0u8; 300]);
        assert_eq!(request.wire_size(), request.encode_to_vec().len());
    }

    #[test]
    fn responsible_replica_never_selects_leader() {
        let n = 7;
        for leader in 0..n {
            for seq in 0..50u64 {
                for attempt in 0..3 {
                    let request = Request::new_synthetic(ClientId(2), seq, 128);
                    let replica = request.responsible_replica(n, leader, attempt);
                    assert_ne!(replica, leader);
                    assert!(replica < n);
                }
            }
        }
    }

    #[test]
    fn resubmission_changes_responsible_replica() {
        let request = Request::new_synthetic(ClientId(0), 0, 128);
        let first = request.responsible_replica(10, 0, 0);
        let second = request.responsible_replica(10, 0, 1);
        assert_ne!(first, second);
    }

    #[test]
    fn malformed_payload_tag_is_rejected() {
        let mut bytes = Request::new_synthetic(ClientId(1), 1, 8).encode_to_vec();
        // Corrupt the payload tag (client u32 + seq u64 = offset 12).
        bytes[12] = 9;
        assert!(Request::decode_from_slice(&bytes).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_any_inline_request(
            client in any::<u32>(),
            seq in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let request = Request::new_inline(ClientId(client), seq, payload);
            let bytes = request.encode_to_vec();
            prop_assert_eq!(request.wire_size(), bytes.len());
            prop_assert_eq!(Request::decode_from_slice(&bytes).unwrap(), request);
        }

        #[test]
        fn digests_differ_for_different_requests(
            seq_a in any::<u64>(),
            seq_b in any::<u64>(),
        ) {
            prop_assume!(seq_a != seq_b);
            let a = Request::new_synthetic(ClientId(1), seq_a, 128);
            let b = Request::new_synthetic(ClientId(1), seq_b, 128);
            prop_assert_ne!(a.digest(), b.digest());
        }
    }
}
