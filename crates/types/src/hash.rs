//! A fast, deterministic hasher for the protocol hot paths.
//!
//! The replicas' bookkeeping maps (datablock pools, ack collectors, retrieval state)
//! are hit several times per simulated message; at n ≥ 1000 the default SipHash-1-3
//! `RandomState` shows up as a top-three cost in the event-loop profile. [`FxHasher`]
//! is the multiply-xor hash used by rustc itself: not DoS-resistant, but all keys here
//! are protocol-internal (digests, node ids, sequence numbers), never
//! attacker-supplied strings, so collision flooding is not a concern.
//!
//! Determinism: unlike `RandomState`, the hasher is seed-free, so map iteration order
//! is identical across processes. Protocol code must still never let iteration order
//! leak into message order (the determinism goldens would catch it either way), but a
//! stable order makes any such bug reproducible instead of flaky.

use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-style multiply-xor hasher (`FxHash`).
///
/// Writes fold every 8-byte chunk into the state with a rotate-xor-multiply step;
/// `finish` is a plain state read. For the ≤ 32-byte keys used by the protocol this
/// is an order of magnitude cheaper than SipHash-1-3.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

/// 2^64 / φ, the classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add_to_hash(u64::from(value));
    }

    #[inline]
    fn write_u16(&mut self, value: u16) {
        self.add_to_hash(u64::from(value));
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add_to_hash(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_to_hash(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_to_hash(value as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// A `HashMap` keyed by [`FxHasher`]; construct with `FastMap::default()`.
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by [`FxHasher`]; construct with `FastSet::default()`.
pub type FastSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_store_and_retrieve() {
        let mut map: FastMap<[u8; 32], u32> = FastMap::default();
        for byte in 0..=255u8 {
            map.insert([byte; 32], u32::from(byte));
        }
        assert_eq!(map.len(), 256);
        for byte in 0..=255u8 {
            assert_eq!(map.get(&[byte; 32]), Some(&u32::from(byte)));
        }
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let hash = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(hash(b"datablock"), hash(b"datablock"));
        assert_ne!(hash(b"datablock"), hash(b"datablocj"));
        // Short keys with a single differing byte must not collide systematically.
        let mut seen: FastSet<u64> = FastSet::default();
        for byte in 0..=255u8 {
            assert!(seen.insert(hash(&[byte])));
        }
    }
}
