//! Strongly-typed identifiers used throughout the workspace.

use std::fmt;

/// Identifier of a replica (`i ∈ [n]` in the paper). Replica indices are zero-based in
/// this codebase; the threshold-signature signer index is `NodeId::as_index() + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node id from a zero-based index.
    pub fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The zero-based index as `usize`.
    pub fn as_index(&self) -> usize {
        self.0 as usize
    }

    /// The 1-based signer index used by the threshold-signature scheme.
    pub fn signer_index(&self) -> usize {
        self.0 as usize + 1
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

/// A view number (`v` in the paper). Views start at 1; view 0 is reserved as "before the
/// protocol started".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct View(pub u64);

impl View {
    /// The first view of the protocol.
    pub fn initial() -> Self {
        View(1)
    }

    /// The next view.
    pub fn next(&self) -> Self {
        View(self.0 + 1)
    }

    /// The leader of this view under the round-robin policy of the paper
    /// (`(v mod n)`-th replica).
    pub fn leader(&self, n: usize) -> NodeId {
        NodeId((self.0 % n as u64) as u32)
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A BFTblock serial number (`sn` in the paper), assigned by the leader. Serial numbers
/// start at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The first serial number.
    pub fn first() -> Self {
        SeqNum(1)
    }

    /// The next serial number.
    pub fn next(&self) -> Self {
        SeqNum(self.0 + 1)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifier of a client submitting requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Globally unique identifier of a request: the submitting client plus a per-client
/// sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RequestId {
    /// The submitting client.
    pub client: ClientId,
    /// Per-client sequence number.
    pub seq: u64,
}

impl RequestId {
    /// Creates a request id.
    pub fn new(client: ClientId, seq: u64) -> Self {
        RequestId { client, seq }
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.client, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_indices() {
        let node = NodeId::new(3);
        assert_eq!(node.as_index(), 3);
        assert_eq!(node.signer_index(), 4);
        assert_eq!(node.to_string(), "r3");
        assert_eq!(NodeId::from(7u32), NodeId(7));
    }

    #[test]
    fn view_round_robin_leader() {
        let n = 4;
        assert_eq!(View(1).leader(n), NodeId(1));
        assert_eq!(View(4).leader(n), NodeId(0));
        assert_eq!(View(5).leader(n), NodeId(1));
        assert_eq!(View::initial().next(), View(2));
    }

    #[test]
    fn seq_num_ordering_and_next() {
        assert!(SeqNum::first() < SeqNum(2));
        assert_eq!(SeqNum(9).next(), SeqNum(10));
        assert_eq!(SeqNum(3).to_string(), "#3");
    }

    #[test]
    fn request_id_display() {
        let id = RequestId::new(ClientId(2), 17);
        assert_eq!(id.to_string(), "c2:17");
    }
}
