//! Common protocol types shared by the Leopard protocol, the HotStuff baseline, the
//! simulator and the experiment harness.
//!
//! The crate defines:
//!
//! * strongly-typed identifiers ([`NodeId`], [`View`], [`SeqNum`], [`ClientId`],
//!   [`RequestId`]) — see [`ids`];
//! * client [`Request`]s, including the *synthetic payload* representation used by
//!   large-scale simulations (the byte size is carried, the bytes are not materialised);
//! * the two block planes of the paper: [`Datablock`] (request payloads produced by
//!   non-leader replicas) and [`BftBlock`] (index blocks proposed by the leader);
//! * a tiny hand-rolled binary codec ([`wire`]) plus the [`WireSize`] trait used for
//!   bandwidth accounting in the simulator;
//! * protocol-wide [`params`] such as the sizes `β` (hash) and `κ` (vote) from the
//!   paper's cost model;
//! * the seed-free [`hash`] module ([`FastMap`]/[`FastSet`]) used on the replicas'
//!   bookkeeping hot paths instead of SipHash.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod hash;
pub mod ids;
pub mod params;
pub mod request;
pub mod wire;

pub use block::{BftBlock, BftBlockId, BlockState, Datablock, DatablockId};
pub use hash::{FastMap, FastSet, FxHasher};
pub use ids::{ClientId, NodeId, RequestId, SeqNum, View};
pub use params::{bls_paper_crypto_costs, calibrated_crypto_costs, CostModelKind, ProtocolParams};
pub use request::{Request, RequestPayload};
pub use wire::{Decode, Encode, WireReader, WireSize, WireWriter};
