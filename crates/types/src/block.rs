//! The two block planes of the paper: datablocks (request payloads) and BFTblocks
//! (index blocks the replicas agree on).

use crate::ids::{NodeId, SeqNum, View};
use crate::request::Request;
use crate::wire::{Decode, DecodeError, Encode, WireReader, WireSize, WireWriter};
use leopard_crypto::{hash_bytes, Digest};

/// Identifier of a datablock: the producing replica plus that replica's local counter
/// (`(i, counter)` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatablockId {
    /// The non-leader replica that generated the datablock.
    pub producer: NodeId,
    /// The producer's local counter `d`, starting at 1.
    pub counter: u64,
}

impl DatablockId {
    /// Creates a datablock id.
    pub fn new(producer: NodeId, counter: u64) -> Self {
        Self { producer, counter }
    }
}

impl std::fmt::Display for DatablockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "db({}, {})", self.producer, self.counter)
    }
}

/// A datablock: `⟨datablock, (i, counter), R⟩` — a batch of pending requests generated
/// and multicast by a non-leader replica (paper, Algorithm 1).
#[derive(Debug, Clone)]
pub struct Datablock {
    /// Producer and counter.
    pub id: DatablockId,
    /// The batched requests `R`.
    pub requests: Vec<Request>,
    /// Lazily computed digest; shared clones (e.g. through `Arc`) compute it once.
    cached_digest: std::sync::OnceLock<Digest>,
    /// Lazily computed total payload size.
    cached_payload_bytes: std::sync::OnceLock<usize>,
    /// Lazily computed wire size. The simulator charges `wire_size()` per recipient of a
    /// multicast, so without this cell a datablock fan-out costs `O(n · requests)`.
    cached_wire_size: std::sync::OnceLock<usize>,
}

impl PartialEq for Datablock {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.requests == other.requests
    }
}

impl Eq for Datablock {}

impl Datablock {
    /// Creates a datablock.
    pub fn new(producer: NodeId, counter: u64, requests: Vec<Request>) -> Self {
        Self {
            id: DatablockId::new(producer, counter),
            requests,
            cached_digest: std::sync::OnceLock::new(),
            cached_payload_bytes: std::sync::OnceLock::new(),
            cached_wire_size: std::sync::OnceLock::new(),
        }
    }

    /// The digest linking this datablock from BFTblocks.
    ///
    /// The digest covers the encoded representation and is cached after the first call.
    pub fn digest(&self) -> Digest {
        *self
            .cached_digest
            .get_or_init(|| hash_bytes(&self.encode_to_vec()))
    }

    /// Number of requests carried.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the datablock carries no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total payload bytes carried by the datablock (`α` when full).
    ///
    /// Cached after the first call (shared `Arc` clones compute it once).
    pub fn payload_bytes(&self) -> usize {
        *self
            .cached_payload_bytes
            .get_or_init(|| self.requests.iter().map(|r| r.payload.len()).sum())
    }

    /// Length in bytes of [`Encode::encode`]'s output for this datablock, computed
    /// without encoding (differs from [`WireSize::wire_size`] for synthetic payloads —
    /// see [`Request::encoded_len`]). The retrieval mechanism erasure-codes the encoded
    /// representation, so chunk sizes derive from this length.
    pub fn encoded_len(&self) -> usize {
        4 + 8 + 4 + self.requests.iter().map(Request::encoded_len).sum::<usize>()
    }
}

impl WireSize for Datablock {
    fn wire_size(&self) -> usize {
        // producer u32 + counter u64 + request count u32 + requests
        *self.cached_wire_size.get_or_init(|| {
            4 + 8 + 4 + self.requests.iter().map(WireSize::wire_size).sum::<usize>()
        })
    }
}

impl Encode for Datablock {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_u32(self.id.producer.0);
        writer.put_u64(self.id.counter);
        writer.put_u32(self.requests.len() as u32);
        for request in &self.requests {
            request.encode(writer);
        }
    }
}

impl Decode for Datablock {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let producer = NodeId(reader.get_u32("datablock.producer")?);
        let counter = reader.get_u64("datablock.counter")?;
        let count = reader.get_u32("datablock.request_count")? as usize;
        let mut requests = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            requests.push(Request::decode(reader)?);
        }
        Ok(Datablock::new(producer, counter, requests))
    }
}

/// Identifier of a BFTblock: the view it was proposed in plus its serial number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BftBlockId {
    /// The view in which the block was proposed.
    pub view: View,
    /// The serial number assigned by the leader.
    pub seq: SeqNum,
}

impl BftBlockId {
    /// Creates a BFTblock id.
    pub fn new(view: View, seq: SeqNum) -> Self {
        Self { view, seq }
    }
}

impl std::fmt::Display for BftBlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bft({}, {})", self.view, self.seq)
    }
}

/// Agreement state of a BFTblock (paper §IV): notarized after the first voting round,
/// confirmed after the second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockState {
    /// Proposed but not yet notarized.
    Proposed,
    /// A notarization proof (first-round quorum) exists.
    Notarized,
    /// A confirmation proof (second-round quorum) exists; the block may be executed once
    /// all lower serial numbers are confirmed.
    Confirmed,
}

/// A BFTblock: `⟨BFTblock, (v, sn), ct⟩` — the index block the replicas agree on; `ct`
/// contains only the hashes of datablocks (paper §IV).
#[derive(Debug, Clone)]
pub struct BftBlock {
    /// View and serial number.
    pub id: BftBlockId,
    /// Hashes of the linked datablocks (`ct`).
    pub links: Vec<Digest>,
    /// True for the dummy blocks that fill serial-number gaps after a view-change.
    pub dummy: bool,
    /// Lazily computed digest; shared clones (e.g. through `Arc`) compute it once.
    cached_digest: std::sync::OnceLock<Digest>,
}

impl PartialEq for BftBlock {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && self.links == other.links && self.dummy == other.dummy
    }
}

impl Eq for BftBlock {}

impl BftBlock {
    /// Creates a BFTblock linking the given datablock digests.
    pub fn new(view: View, seq: SeqNum, links: Vec<Digest>) -> Self {
        Self {
            id: BftBlockId::new(view, seq),
            links,
            dummy: false,
            cached_digest: std::sync::OnceLock::new(),
        }
    }

    /// Creates the dummy block used to fill a serial-number gap during a view-change.
    pub fn dummy(view: View, seq: SeqNum) -> Self {
        Self {
            id: BftBlockId::new(view, seq),
            links: Vec::new(),
            dummy: true,
            cached_digest: std::sync::OnceLock::new(),
        }
    }

    /// The digest replicas vote on.
    ///
    /// The digest covers the encoded representation and is cached after the first call.
    pub fn digest(&self) -> Digest {
        *self
            .cached_digest
            .get_or_init(|| hash_bytes(&self.encode_to_vec()))
    }

    /// Number of datablock links.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True if the block links no datablocks.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

impl WireSize for BftBlock {
    fn wire_size(&self) -> usize {
        // view u64 + seq u64 + dummy u8 + link count u32 + 32 bytes per link
        8 + 8 + 1 + 4 + self.links.len() * 32
    }
}

impl Encode for BftBlock {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_u64(self.id.view.0);
        writer.put_u64(self.id.seq.0);
        writer.put_u8(u8::from(self.dummy));
        writer.put_u32(self.links.len() as u32);
        for link in &self.links {
            writer.put_raw(link.as_bytes());
        }
    }
}

impl Decode for BftBlock {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self, DecodeError> {
        let view = View(reader.get_u64("bftblock.view")?);
        let seq = SeqNum(reader.get_u64("bftblock.seq")?);
        let dummy = reader.get_u8("bftblock.dummy")? != 0;
        let count = reader.get_u32("bftblock.link_count")? as usize;
        let mut links = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let raw = reader.get_raw(32, "bftblock.link")?;
            links.push(Digest::from_slice(raw).ok_or(DecodeError::new("bftblock.link"))?);
        }
        let mut block = BftBlock::new(view, seq, links);
        block.dummy = dummy;
        Ok(block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ClientId;
    use proptest::prelude::*;

    fn sample_requests(count: usize) -> Vec<Request> {
        (0..count)
            .map(|i| Request::new_inline(ClientId(1), i as u64, vec![i as u8; 16]))
            .collect()
    }

    #[test]
    fn datablock_roundtrip_and_sizes() {
        let db = Datablock::new(NodeId(2), 7, sample_requests(5));
        let bytes = db.encode_to_vec();
        assert_eq!(db.wire_size(), bytes.len());
        assert_eq!(Datablock::decode_from_slice(&bytes).unwrap(), db);
        assert_eq!(db.len(), 5);
        assert!(!db.is_empty());
        assert_eq!(db.payload_bytes(), 5 * 16);
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        // Inline payloads: encoded length equals the wire size.
        let inline = Datablock::new(NodeId(1), 1, sample_requests(5));
        assert_eq!(inline.encoded_len(), inline.encode_to_vec().len());
        assert_eq!(inline.encoded_len(), inline.wire_size());
        // Synthetic payloads: the codec writes 17 bytes per request while the wire
        // charges the declared payload size.
        let synthetic = Datablock::new(
            NodeId(2),
            3,
            (0..4)
                .map(|i| Request::new_synthetic(ClientId(1), i, 128))
                .collect(),
        );
        assert_eq!(synthetic.encoded_len(), synthetic.encode_to_vec().len());
        assert!(synthetic.wire_size() > synthetic.encoded_len());
    }

    #[test]
    fn datablock_digest_changes_with_contents() {
        let a = Datablock::new(NodeId(2), 7, sample_requests(3));
        let b = Datablock::new(NodeId(2), 8, sample_requests(3));
        let c = Datablock::new(NodeId(3), 7, sample_requests(3));
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.digest(), Datablock::new(NodeId(2), 7, sample_requests(3)).digest());
    }

    #[test]
    fn bftblock_roundtrip_and_sizes() {
        let links: Vec<Digest> = (0..10u8).map(|i| hash_bytes(&[i])).collect();
        let block = BftBlock::new(View(3), SeqNum(9), links.clone());
        let bytes = block.encode_to_vec();
        assert_eq!(block.wire_size(), bytes.len());
        assert_eq!(BftBlock::decode_from_slice(&bytes).unwrap(), block);
        assert_eq!(block.len(), 10);
    }

    #[test]
    fn dummy_block_is_empty_and_flagged() {
        let dummy = BftBlock::dummy(View(4), SeqNum(2));
        assert!(dummy.dummy);
        assert!(dummy.is_empty());
        let decoded = BftBlock::decode_from_slice(&dummy.encode_to_vec()).unwrap();
        assert!(decoded.dummy);
    }

    #[test]
    fn block_state_ordering_matches_protocol_progression() {
        assert!(BlockState::Proposed < BlockState::Notarized);
        assert!(BlockState::Notarized < BlockState::Confirmed);
    }

    #[test]
    fn bftblock_wire_size_is_small_relative_to_payload() {
        // The whole point of the decoupling: a BFTblock linking 100 datablocks of 2000
        // 128-byte requests is ~3 KB while the payload it confirms is ~25 MB.
        let links: Vec<Digest> = (0..100u8).map(|i| hash_bytes(&[i])).collect();
        let block = BftBlock::new(View(1), SeqNum(1), links);
        assert!(block.wire_size() < 4 * 1024);
    }

    proptest! {
        #[test]
        fn datablock_roundtrips_with_any_requests(
            producer in 0u32..1000,
            counter in any::<u64>(),
            sizes in proptest::collection::vec(0u32..256, 0..20),
        ) {
            let requests: Vec<Request> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| Request::new_synthetic(ClientId(i as u32), i as u64, s))
                .collect();
            let db = Datablock::new(NodeId(producer), counter, requests);
            let decoded = Datablock::decode_from_slice(&db.encode_to_vec()).unwrap();
            prop_assert_eq!(decoded, db);
        }

        #[test]
        fn bftblock_roundtrips_with_any_links(
            view in 1u64..1_000,
            seq in 1u64..1_000_000,
            link_seeds in proptest::collection::vec(any::<u64>(), 0..64),
        ) {
            let links: Vec<Digest> = link_seeds
                .iter()
                .map(|s| hash_bytes(&s.to_le_bytes()))
                .collect();
            let block = BftBlock::new(View(view), SeqNum(seq), links);
            let bytes = block.encode_to_vec();
            prop_assert_eq!(block.wire_size(), bytes.len());
            prop_assert_eq!(BftBlock::decode_from_slice(&bytes).unwrap(), block);
        }
    }
}
