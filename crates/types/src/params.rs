//! Protocol-wide size and batching parameters, mirroring the symbols of the paper's
//! cost model (§V-B), plus the calibrated per-operation compute costs of the
//! compute-resource model.

use crate::wire::WireSize;
use leopard_crypto::provider::CryptoCostModel;

/// Which per-operation compute-cost calibration a run charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModelKind {
    /// Charge nothing (the pre-compute-model behaviour; replica CPU stays free).
    Free,
    /// Charge the timings measured from this repository's real in-process
    /// implementations ([`calibrated_crypto_costs`]). The default: crypto work is
    /// charged at exactly the rate the simulator would spend executing it.
    #[default]
    Calibrated,
    /// Charge published BLS12-381 threshold-signature timings
    /// ([`bls_paper_crypto_costs`]), modelling the paper's actual crypto stack, whose
    /// per-op costs are ~5 orders of magnitude above the in-process substitute. Used by
    /// the CPU-bound scaling experiment.
    BlsPaper,
}

impl CostModelKind {
    /// The cost model this kind selects.
    pub fn model(&self) -> CryptoCostModel {
        match self {
            CostModelKind::Free => CryptoCostModel::free(),
            CostModelKind::Calibrated => calibrated_crypto_costs(),
            CostModelKind::BlsPaper => bls_paper_crypto_costs(),
        }
    }
}

/// Per-operation compute costs measured from the repository's own implementations with
/// `cargo run --release --example calibrate_costs` (single-core container, see
/// `DESIGN.md` §6.3 for the methodology and the raw probe output):
///
/// | primitive | measured |
/// |-----------|----------|
/// | SHA-256 | ≈ 4.5 ns/byte + ≈ 375 ns/call |
/// | GF(2^8) fused multiply-add | ≈ 0.40 ns/byte |
/// | GF(2^61−1) multiplication | ≈ 2 ns |
/// | `sign_share` / `verify_share` | ≈ 4–5 ns |
/// | warm `combine` (cached Lagrange set) | ≈ 10 ns/share |
/// | Merkle tree | ≈ hash(leaf) + ≈ 1.4 µs/leaf overhead |
///
/// Charging these makes a [`crate::ProtocolParams`]-driven simulation's *virtual* CPU
/// time equal to the real CPU time the crypto would cost in-process, so a
/// `MeteredCrypto` run (which skips the real work) follows the same schedule as a real
/// run.
pub fn calibrated_crypto_costs() -> CryptoCostModel {
    CryptoCostModel {
        sign_share_nanos: 4,
        verify_share_nanos: 5,
        // Two inner products over the batch: ≈ 4 field muls + coefficient mixing per
        // share, plus the fixed h(m) mapping.
        batch_verify_base_nanos: 40,
        batch_verify_per_share_nanos: 12,
        // Warm-cache Lagrange combination (the cached-λ path of `ThresholdScheme`).
        combine_base_nanos: 200,
        combine_per_share_nanos: 10,
        verify_combined_nanos: 5,
        hash_base_nanos: 375,
        hash_per_byte_picos: 4_500,
        erasure_per_byte_picos: 400,
        merkle_per_leaf_nanos: 1_400,
    }
}

/// Per-operation compute costs of a BLS12-381 threshold-signature stack (the paper's
/// prototype signs votes with threshold BLS), taken from published single-core `blst`
/// measurements: ≈ 0.3 ms per G1 signing, ≈ 1.2 ms per pairing-based verification,
/// ≈ 0.25 ms per share interpolation step at paper scales, with batched verification
/// amortising the two pairings across the batch at ≈ 0.04 ms per extra share. Hashing
/// and erasure coding keep the measured in-process rates (SHA-256 and GF(2^8) are not
/// the expensive part of a BLS stack).
///
/// Under this model a quorum of individually verified votes costs the leader
/// `2f · 1.2 ms` of serial CPU per round — the per-replica sequential work FnF-BFT
/// identifies as the real scaling limit — while batched verification cuts it to
/// `1.2 ms + 2f · 0.04 ms`. The CPU-bound fig9 variant charges this model.
pub fn bls_paper_crypto_costs() -> CryptoCostModel {
    CryptoCostModel {
        sign_share_nanos: 300_000,
        verify_share_nanos: 1_200_000,
        batch_verify_base_nanos: 1_200_000,
        batch_verify_per_share_nanos: 40_000,
        combine_base_nanos: 250_000,
        combine_per_share_nanos: 15_000,
        verify_combined_nanos: 1_200_000,
        hash_base_nanos: 375,
        hash_per_byte_picos: 4_500,
        erasure_per_byte_picos: 400,
        merkle_per_leaf_nanos: 1_400,
    }
}

/// The sizes and batching parameters that drive both the protocol implementations and
/// the analytical cost model.
///
/// | Symbol | Field | Paper default |
/// |--------|-------|---------------|
/// | payload | `payload_size` | 128 B |
/// | β | `hash_size` | 32 B (SHA-256) |
/// | κ | `vote_size` | 48 B (threshold BLS) |
/// | α | `datablock_size * payload_size` | e.g. 2000 × 128 B |
/// | τ | `bftblock_size` | e.g. 100 links |
/// | k | `max_parallel_instances` | 100 |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolParams {
    /// Number of replicas `n = 3f + 1`.
    pub n: usize,
    /// Size of one client request in bytes (`payload`).
    pub payload_size: usize,
    /// Size of a hash / digest in bytes (`β`).
    pub hash_size: usize,
    /// Size of a vote (threshold signature share) in bytes (`κ`).
    pub vote_size: usize,
    /// Number of requests per datablock (so `α = datablock_size * payload_size` bits of
    /// payload per datablock).
    pub datablock_size: usize,
    /// Number of datablock links per BFTblock (`τ`).
    pub bftblock_size: usize,
    /// Maximum number of agreement instances in flight (`k`).
    pub max_parallel_instances: usize,
    /// Number of concurrent proposers `p` (PR 9 multi-proposer agreement plane).
    ///
    /// Serial numbers are striped round-robin over `p` proposers: the proposer of
    /// stripe `j` in view `v` is replica `((v mod n) + j) mod n`, so stripe 0 is
    /// always the classic leader and `p = 1` is exactly the single-leader
    /// protocol. Each proposer runs its own pipeline stripe with τ-batching, and a
    /// view change rotates the whole window (demoting a faulty proposer without
    /// renumbering the honest stripes).
    pub proposers: usize,
}

impl ProtocolParams {
    /// Parameters matching the paper's defaults for a given `n`, with the batch sizes of
    /// Table II.
    pub fn paper_defaults(n: usize) -> Self {
        let (datablock_size, bftblock_size) = Self::table2_batches(n);
        Self {
            n,
            payload_size: 128,
            hash_size: 32,
            vote_size: 48,
            datablock_size,
            bftblock_size,
            max_parallel_instances: 100,
            proposers: 1,
        }
    }

    /// The batch sizes of Table II (datablock size, BFTblock size) for a given scale,
    /// interpolating the paper's reported values for untested scales.
    pub fn table2_batches(n: usize) -> (usize, usize) {
        match n {
            0..=32 => (2000, 100),
            33..=64 => (2000, 100),
            65..=128 => (3000, 300),
            129..=256 => (4000, 300),
            257..=399 => (4000, 300),
            _ => (4000, 400),
        }
    }

    /// Number of Byzantine faults tolerated, `f = ⌊(n-1)/3⌋`.
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// Quorum size `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// `α` in bytes: payload bytes carried by one datablock.
    pub fn alpha_bytes(&self) -> usize {
        self.datablock_size * self.payload_size
    }

    /// The scaling factor of Leopard from the paper's closed form
    /// `max{(β + 4κ/τ)(n−1)/α + 1, 2 + (β + 4κ/τ)/α}`.
    pub fn leopard_scaling_factor(&self) -> f64 {
        let beta = self.hash_size as f64;
        let kappa = self.vote_size as f64;
        let tau = self.bftblock_size as f64;
        let alpha = self.alpha_bytes() as f64;
        let n = self.n as f64;
        let per_block_overhead = beta + 4.0 * kappa / tau;
        let leader = per_block_overhead * (n - 1.0) / alpha + 1.0;
        let non_leader = 2.0 + per_block_overhead / alpha;
        leader.max(non_leader)
    }

    /// The scaling factor of a leader-disseminates-payload protocol (PBFT / SBFT /
    /// HotStuff): the leader ships every payload bit to `n − 1` replicas, so
    /// `SF ≈ n − 1` plus vote overhead.
    pub fn leader_based_scaling_factor(&self) -> f64 {
        let n = self.n as f64;
        let kappa = self.vote_size as f64;
        let tau = self.bftblock_size.max(1) as f64;
        let payload = self.payload_size as f64;
        (n - 1.0) * (1.0 + kappa / (tau * payload)) + 1.0
    }

    /// Validates the structural constraints (`n = 3f + 1` style sanity checks).
    ///
    /// Returns a human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 4 {
            return Err(format!("n must be at least 4, got {}", self.n));
        }
        if self.payload_size == 0 {
            return Err("payload_size must be positive".to_string());
        }
        if self.datablock_size == 0 {
            return Err("datablock_size must be positive".to_string());
        }
        if self.bftblock_size == 0 {
            return Err("bftblock_size must be positive".to_string());
        }
        if self.max_parallel_instances == 0 {
            return Err("max_parallel_instances must be positive".to_string());
        }
        if self.proposers == 0 {
            return Err("proposers must be at least 1".to_string());
        }
        if self.proposers > self.n {
            return Err(format!(
                "proposers must not exceed n ({} > {})",
                self.proposers, self.n
            ));
        }
        Ok(())
    }
}

impl Default for ProtocolParams {
    fn default() -> Self {
        Self::paper_defaults(4)
    }
}

impl WireSize for ProtocolParams {
    fn wire_size(&self) -> usize {
        8 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_kinds_resolve() {
        assert_eq!(CostModelKind::Free.model(), CryptoCostModel::free());
        assert_eq!(CostModelKind::default(), CostModelKind::Calibrated);
        let calibrated = CostModelKind::Calibrated.model();
        let bls = CostModelKind::BlsPaper.model();
        // The in-process substitute is orders of magnitude cheaper than BLS for the
        // signature ops, while the byte-rate ops (hashing, erasure) are shared.
        assert!(bls.verify_share_nanos > 1000 * calibrated.verify_share_nanos);
        assert_eq!(bls.hash_per_byte_picos, calibrated.hash_per_byte_picos);
        // Batched verification is what makes a BLS stack scale: one base pairing plus
        // a small per-share term instead of a pairing per share.
        assert!(bls.batch_verify(401).as_nanos() < 401 * bls.verify_share_nanos / 20);
        // For the in-process field the two paths are both a handful of ns per share —
        // batching is charged honestly (a batch is *not* cheaper there).
        assert!(calibrated.batch_verify(401).as_nanos() < 10_000);
    }

    #[test]
    fn f_and_quorum() {
        let p = ProtocolParams::paper_defaults(4);
        assert_eq!(p.f(), 1);
        assert_eq!(p.quorum(), 3);
        let p = ProtocolParams::paper_defaults(601);
        assert_eq!(p.f(), 200);
        assert_eq!(p.quorum(), 401);
    }

    #[test]
    fn table2_batches_match_paper() {
        assert_eq!(ProtocolParams::table2_batches(32), (2000, 100));
        assert_eq!(ProtocolParams::table2_batches(64), (2000, 100));
        assert_eq!(ProtocolParams::table2_batches(128), (3000, 300));
        assert_eq!(ProtocolParams::table2_batches(256), (4000, 300));
        assert_eq!(ProtocolParams::table2_batches(400), (4000, 400));
        assert_eq!(ProtocolParams::table2_batches(600), (4000, 400));
    }

    #[test]
    fn leopard_scaling_factor_is_near_constant() {
        // With α = λ(n−1) the paper predicts an O(1) scaling factor; with the Table II
        // batches the factor stays small (≈2) across all tested scales.
        let small = ProtocolParams::paper_defaults(32).leopard_scaling_factor();
        let large = ProtocolParams::paper_defaults(600).leopard_scaling_factor();
        assert!(small >= 1.0 && small < 3.0, "small={small}");
        assert!(large >= 1.0 && large < 3.0, "large={large}");
        assert!((large - small).abs() < 1.5);
    }

    #[test]
    fn leader_based_scaling_factor_grows_linearly() {
        let sf32 = ProtocolParams::paper_defaults(32).leader_based_scaling_factor();
        let sf300 = ProtocolParams::paper_defaults(300).leader_based_scaling_factor();
        assert!(sf300 > 8.0 * sf32);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut p = ProtocolParams::paper_defaults(4);
        assert!(p.validate().is_ok());
        p.n = 3;
        assert!(p.validate().is_err());
        p = ProtocolParams::paper_defaults(4);
        p.datablock_size = 0;
        assert!(p.validate().is_err());
        p = ProtocolParams::paper_defaults(4);
        p.bftblock_size = 0;
        assert!(p.validate().is_err());
        p = ProtocolParams::paper_defaults(4);
        p.payload_size = 0;
        assert!(p.validate().is_err());
        p = ProtocolParams::paper_defaults(4);
        p.max_parallel_instances = 0;
        assert!(p.validate().is_err());
        p = ProtocolParams::paper_defaults(4);
        p.proposers = 0;
        assert!(p.validate().is_err());
        p.proposers = 5;
        assert!(p.validate().is_err());
        p.proposers = 4;
        assert!(p.validate().is_ok());
    }
}
