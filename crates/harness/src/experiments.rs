//! One function per table/figure of the paper's evaluation section (§VI).
//!
//! Every function returns a [`Table`] whose rows mirror the corresponding plot or table
//! in the paper. `quick = true` selects reduced scales / durations suitable for CI and
//! criterion benchmarks; `quick = false` selects the scales reported in
//! `EXPERIMENTS.md`.

use crate::analysis;
use crate::chaos::{chaos_experiment, ChaosOptions, ChaosOverrides};
use crate::report::Table;
use crate::scenario::{run_hotstuff_scenario, run_leopard_scenario, ScenarioConfig, ScenarioReport};
use crate::workload::WorkloadConfig;
use leopard_core::byzantine::ByzantineBehavior;
use leopard_simnet::{ObservationKind, SimDuration, SimTime};
use leopard_types::{NodeId, ProtocolParams};

fn scales(quick: bool, quick_list: &[usize], full_list: &[usize]) -> Vec<usize> {
    if quick { quick_list.to_vec() } else { full_list.to_vec() }
}

fn fmt_f(value: f64) -> String {
    format!("{value:.2}")
}

fn fmt_opt_secs(value: Option<f64>) -> String {
    value.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".to_string())
}

/// Formats a protocol's p50/p95/p99 latency percentiles (milliseconds) as one cell.
/// The leading number keeps the cell parseable by `--require-nonzero`.
///
/// The percentiles are bucket midpoints of a 1/16-octave histogram
/// (`leopard_simnet::LatencyHistogram`), so when a run's confirmation latencies are
/// concentrated — the drained n ≥ 2000 fig9xl rows confirm in a handful of
/// dissemination waves — all three ranks can land in one bucket and print the same
/// midpoint (e.g. `1912.6 / 1912.6 / 1912.6`). That repetition means "the spread is
/// below the histogram's ±2.2% resolution", not "exactly equal"; the cell says so
/// explicitly instead of leaving the repeated value looking like a bug.
fn fmt_percentiles(report: &ScenarioReport) -> String {
    match (
        report.latency_p50_secs,
        report.latency_p95_secs,
        report.latency_p99_secs,
    ) {
        (Some(p50), Some(p95), Some(p99)) => {
            let cell = format!(
                "{:.1} / {:.1} / {:.1}",
                p50 * 1000.0,
                p95 * 1000.0,
                p99 * 1000.0
            );
            // Bitwise equality is the single-bucket signature: all three midpoints
            // come from the same `LatencyHistogram::percentile` bucket.
            if p50 == p99 {
                format!("{cell} (spread < ±2.2% bucket)")
            } else {
                cell
            }
        }
        _ => "-".to_string(),
    }
}

/// Formats a throughput-like cell, annotating a zero with the run's `StallReason` so a
/// collapse can never appear as a bare `0.00` (the numeric prefix stays parseable).
fn fmt_annotated(value: f64, report: &ScenarioReport) -> String {
    let cell = fmt_f(value);
    if value > 0.0 {
        return cell;
    }
    match report.stall_annotation() {
        Some(stall) => format!("{cell} [{stall}]"),
        None => cell,
    }
}

/// Fig. 1 — throughput of a prior leader-based BFT (HotStuff) at increasing scale, for
/// 128-byte and 1024-byte payloads.
pub fn fig1_prior_scalability(quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 1 — HotStuff throughput vs n (128 B and 1024 B payloads)",
        &["n", "throughput 128B (Kreqs/s)", "throughput 1024B (Kreqs/s)"],
    );
    for n in scales(quick, &[4, 8, 16], &[16, 32, 64, 128, 256]) {
        let small = run_hotstuff_scenario(&ScenarioConfig::paper(n));
        let large = run_hotstuff_scenario(
            &ScenarioConfig::paper(n).with_workload(WorkloadConfig::large_payload()),
        );
        table.push_row(vec![
            n.to_string(),
            fmt_f(small.throughput_kreqs()),
            fmt_f(large.throughput_kreqs()),
        ]);
    }
    table
}

/// Fig. 2 — HotStuff throughput together with the leader's bandwidth utilisation.
pub fn fig2_leader_bottleneck(quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 2 — HotStuff throughput and leader bandwidth vs n (128 B payload)",
        &["n", "throughput (Kreqs/s)", "leader bandwidth (Gbps)"],
    );
    for n in scales(quick, &[4, 8, 16], &[4, 16, 32, 64, 128, 256, 300]) {
        let report = run_hotstuff_scenario(&ScenarioConfig::paper(n));
        table.push_row(vec![
            n.to_string(),
            fmt_f(report.throughput_kreqs()),
            fmt_f(report.leader_bandwidth_bps / 1e9),
        ]);
    }
    table
}

/// Table I — amortized cost comparison (analytical).
pub fn tab1_cost_model() -> Table {
    analysis::table1(300)
}

/// Fig. 6 — HotStuff throughput on varying batch sizes.
pub fn fig6_hotstuff_batch(quick: bool) -> Table {
    let ns = scales(quick, &[8], &[32, 64, 128]);
    let batches: Vec<usize> = if quick {
        vec![50, 200, 800]
    } else {
        vec![100, 200, 400, 800, 1200]
    };
    let mut headers = vec!["batch size".to_string()];
    headers.extend(ns.iter().map(|n| format!("n={n} (Kreqs/s)")));
    let mut table = Table::new("Fig. 6 — HotStuff throughput vs batch size", &[]);
    table.headers = headers;
    for &batch in &batches {
        let mut row = vec![batch.to_string()];
        for &n in &ns {
            let report =
                run_hotstuff_scenario(&ScenarioConfig::paper(n).with_hotstuff_batch(batch));
            row.push(fmt_f(report.throughput_kreqs()));
        }
        table.push_row(row);
    }
    table
}

/// Fig. 7 — Leopard throughput on varying BFTblock sizes (number of datablock links).
pub fn fig7_bftblock_size(quick: bool) -> Table {
    let ns = scales(quick, &[8], &[32, 64, 128, 256]);
    let sizes: Vec<usize> = if quick { vec![2, 8, 32] } else { vec![10, 50, 100, 200, 400] };
    let mut headers = vec!["BFTblock size".to_string()];
    headers.extend(ns.iter().map(|n| format!("n={n} (Kreqs/s)")));
    let mut table = Table::new("Fig. 7 — Leopard throughput vs BFTblock size", &[]);
    table.headers = headers;
    for &size in &sizes {
        let mut row = vec![size.to_string()];
        for &n in &ns {
            let config = ScenarioConfig::paper(n);
            let datablock = config.datablock_size;
            let report = run_leopard_scenario(&config.with_batches(datablock, size));
            row.push(fmt_f(report.throughput_kreqs()));
        }
        table.push_row(row);
    }
    table
}

/// Fig. 8 — Leopard throughput on varying datablock sizes, with the BFTblock size fixed
/// at 10 and at 100.
pub fn fig8_datablock_size(quick: bool) -> Table {
    let ns = scales(quick, &[8], &[32, 64, 128]);
    // The quick profile keeps the shape check (small vs large datablocks at both
    // BFTblock sizes) with two sizes instead of three: the middle point added ~2 s of
    // pure engine time to the quick suite without changing what the curve shows
    // (the PR-8 quick-suite budget trim; the full profile is untouched).
    let sizes: Vec<usize> = if quick {
        vec![8, 256]
    } else {
        vec![500, 1000, 2000, 3000, 4000]
    };
    let mut headers = vec!["datablock size".to_string(), "BFTblock size".to_string()];
    headers.extend(ns.iter().map(|n| format!("n={n} (Kreqs/s)")));
    let mut table = Table::new("Fig. 8 — Leopard throughput vs datablock size", &[]);
    table.headers = headers;
    for &bftblock in &[10usize, 100] {
        for &size in &sizes {
            let mut row = vec![size.to_string(), bftblock.to_string()];
            for &n in &ns {
                let report =
                    run_leopard_scenario(&ScenarioConfig::paper(n).with_batches(size, bftblock));
                row.push(fmt_f(report.throughput_kreqs()));
            }
            table.push_row(row);
        }
    }
    table
}

/// Table II — the batch sizes used per scale.
pub fn tab2_batch_sizes() -> Table {
    let mut table = Table::new(
        "Table II — batch-size parameters per scale",
        &["n", "Leopard datablock", "Leopard BFTblock", "HotStuff batch"],
    );
    for n in [32usize, 64, 128, 256, 400, 600] {
        let (datablock, bftblock) = ProtocolParams::table2_batches(n);
        table.push_row(vec![
            n.to_string(),
            datablock.to_string(),
            bftblock.to_string(),
            "800".to_string(),
        ]);
    }
    table
}

/// The Fig. 9 column set, shared with the `fig9smoke` CI point: full-window and
/// steady-state throughput for both protocols, plus the leader's stall diagnostics so
/// a zero cell always names the guard that blocked the pipeline.
const FIG9_HEADERS: &[&str] = &[
    "n",
    "Leopard (Kreqs/s)",
    "HotStuff (Kreqs/s)",
    "ratio",
    "Leopard steady (Kreqs/s)",
    "HotStuff steady (Kreqs/s)",
    "Leopard p50/p95/p99 lat (ms)",
    "HotStuff p50/p95/p99 lat (ms)",
    "Leopard diagnostics",
];

fn fig9_row(n: usize) -> Vec<String> {
    let leopard = run_leopard_scenario(&ScenarioConfig::paper(n));
    let hotstuff = run_hotstuff_scenario(&ScenarioConfig::paper(n));
    let ratio = if hotstuff.throughput_rps > 0.0 {
        leopard.throughput_rps / hotstuff.throughput_rps
    } else {
        f64::INFINITY
    };
    vec![
        n.to_string(),
        fmt_annotated(leopard.throughput_kreqs(), &leopard),
        fmt_annotated(hotstuff.throughput_kreqs(), &hotstuff),
        fmt_f(ratio),
        fmt_annotated(leopard.steady_state_kreqs(), &leopard),
        fmt_annotated(hotstuff.steady_state_kreqs(), &hotstuff),
        fmt_percentiles(&leopard),
        fmt_percentiles(&hotstuff),
        leopard.stall_summary(),
    ]
}

/// Fig. 9 — the headline plot: throughput of Leopard and HotStuff at increasing scale.
pub fn fig9_throughput_scaling(quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 9 — throughput of Leopard and HotStuff at different scales",
        FIG9_HEADERS,
    );
    for n in scales(quick, &[4, 8, 16], &[32, 64, 128, 256, 300, 400, 600]) {
        table.push_row(fig9_row(n));
    }
    table
}

/// Fig. 9 smoke point — the single paper-scale cell (n = 128) where the pre-PR-3
/// timer-polled pipeline silently collapsed to zero. Always runs at full scale
/// (ignoring `quick`), and runs **Leopard only** — the HotStuff baseline is not under
/// guard here, and a second paper-scale simulation would double the CI step for
/// nothing. CI fails the build if any Leopard throughput cell reads zero again.
pub fn fig9_smoke(_quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 9 smoke — Leopard must confirm at the paper scale n = 128",
        &[
            "n",
            "Leopard (Kreqs/s)",
            "Leopard steady (Kreqs/s)",
            "Leopard diagnostics",
        ],
    );
    let leopard = run_leopard_scenario(&ScenarioConfig::paper(128));
    table.push_row(vec![
        "128".to_string(),
        fmt_annotated(leopard.throughput_kreqs(), &leopard),
        fmt_annotated(leopard.steady_state_kreqs(), &leopard),
        leopard.stall_summary(),
    ]);
    table
}

/// The Fig. 9 XL column set: Leopard-only (a HotStuff baseline at n = 4000 would
/// double the sweep for a protocol the paper already shows collapsing by n = 300),
/// with the engine-speed figures — events executed, events per wall-clock second and
/// peak RSS — as first-class columns next to the protocol ones. The events/sec header
/// deliberately does not contain "Leopard", so `--require-nonzero Leopard` keeps
/// gating protocol health only.
const FIG9XL_HEADERS: &[&str] = &[
    "n",
    "Leopard (Kreqs/s)",
    "Leopard steady (Kreqs/s)",
    "Leopard p50/p95/p99 lat (ms)",
    "events",
    "engine (Mev/s)",
    "peak RSS (MB)",
    "wall (s)",
    "Leopard diagnostics",
];

fn fig9xl_row(n: usize) -> Vec<String> {
    // The default 50 M event budget is a runaway valve, not a scale ceiling: at
    // n = 4000 the first dissemination wave alone is ~32 M events (each of the
    // n − 1 producers multicasts its datablock to n − 1 peers).
    let mut config = ScenarioConfig::paper(n).with_max_events(400_000_000);
    if n >= 2000 {
        // Past n ≈ 2000 disseminating one datablock serialises its
        // (n − 1) × datablock_bytes through the producer's 9.8 Gbps uplink for a
        // large fraction of the 3 s run, so the end-of-run availability snapshot
        // would judge blocks still in honest flight as unretrievable and the 2 s
        // progress watchdog would fire before the first confirmation can exist.
        // Drain instead of weakening either check: stop offered load at the 3 s
        // mark, keep the run going two dissemination times so in-flight blocks
        // land, and scale the watchdog with the dissemination time. n ≤ 1000 rows
        // stay byte-for-byte comparable with fig9.
        let datablock_bytes = (config.datablock_size * config.workload.payload_size) as f64;
        let dissemination =
            SimDuration::from_secs_f64((n - 1) as f64 * datablock_bytes * 8.0 / 9.8e9);
        let progress_timeout = dissemination.saturating_mul(4).max(SimDuration::from_secs(2));
        let load_window = config.duration;
        config = config
            .with_workload_stop(load_window)
            .with_duration(load_window + dissemination.saturating_mul(2))
            .with_progress_timeout(progress_timeout)
            .with_warmup(SimDuration::from_secs(1));
    }
    let events_before = leopard_simnet::global_events_processed();
    let start = std::time::Instant::now();
    let leopard = run_leopard_scenario(&config);
    let wall_secs = start.elapsed().as_secs_f64();
    let events = leopard_simnet::global_events_processed() - events_before;
    let events_per_sec = if wall_secs > 0.0 { events as f64 / wall_secs } else { 0.0 };
    vec![
        n.to_string(),
        fmt_annotated(leopard.throughput_kreqs(), &leopard),
        fmt_annotated(leopard.steady_state_kreqs(), &leopard),
        fmt_percentiles(&leopard),
        events.to_string(),
        format!("{:.2}", events_per_sec / 1e6),
        format!("{:.0}", crate::report::peak_rss_bytes() as f64 / 1e6),
        format!("{wall_secs:.2}"),
        leopard.stall_summary(),
    ]
}

/// Fig. 9 XL — the fig9 sweep continued past the paper's n = 600 ceiling, with the
/// simulator's own speed (events/sec, peak RSS) reported alongside the protocol
/// figures. The quick profile covers {600, 1000}; the full profile adds {2000, 4000}
/// (see `EXPERIMENTS.md` for the scale-selection notes).
pub fn fig9xl_scaling(quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 9 XL — Leopard at n ≥ 600 with engine events/sec and peak RSS",
        FIG9XL_HEADERS,
    );
    for n in scales(quick, &[600, 1000], &[600, 1000, 2000, 4000]) {
        table.push_row(fig9xl_row(n));
    }
    table
}

/// Fig. 9 XL smoke point — the single n = 1000 cell, always at full scale (ignoring
/// `quick`). CI runs it under `--require-nonzero Leopard` and `--max-wall-clock`, so
/// both a protocol collapse at n = 1000 and an engine-speed regression fail the build;
/// the events/sec column lands in the CI log via the printed table.
pub fn fig9xl_smoke(_quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 9 XL smoke — Leopard must confirm at n = 1000",
        FIG9XL_HEADERS,
    );
    table.push_row(fig9xl_row(1000));
    table
}

/// The four regions of the geo-distributed fig9 variant, spanning four continents.
pub const FIG9GEO_REGIONS: [&str; 4] = ["us-east", "eu-west", "ap-northeast", "sa-east"];

/// Fig. 9 (geo-distributed variant) — throughput at increasing scale when the replicas
/// are spread round-robin over a four-region WAN ([`FIG9GEO_REGIONS`], representative
/// public-cloud inter-region latencies), with and without 10% Raptr-style stragglers
/// (1 Gbps NIC, half-speed CPU, +25 ms one-way latency; see
/// `leopard_simnet::StragglerProfile::wan_default`).
///
/// The point of the experiment: Leopard's throughput plateau is a *bandwidth* argument
/// (the scaling factor stays O(1)), so WAN propagation latency moves its client
/// latency percentiles but not its plateau — while HotStuff's leader bottleneck only
/// deepens, since every request still serialises through one (now far-away) leader.
/// Per-region latency columns show the Leopard replicas' mean client latency from each
/// region's vantage point.
pub fn fig9geo_throughput_scaling(quick: bool) -> Table {
    let mut headers: Vec<String> = [
        "n",
        "stragglers",
        "Leopard (Kreqs/s)",
        "HotStuff (Kreqs/s)",
        "Leopard steady (Kreqs/s)",
        "Leopard p50/p95/p99 lat (ms)",
    ]
    .iter()
    .map(|h| h.to_string())
    .collect();
    headers.extend(FIG9GEO_REGIONS.iter().map(|region| format!("{region} lat (ms)")));
    headers.push("Leopard diagnostics".to_string());
    let mut table = Table::new(
        "Fig. 9 (geo) — throughput over a 4-region WAN, with and without 10% stragglers",
        &[],
    );
    table.headers = headers;
    for n in scales(quick, &[8, 16], &[32, 64, 128, 256]) {
        for (label, fraction) in [("none", 0.0), ("10%", 0.10)] {
            let config = ScenarioConfig::paper(n)
                .with_wan_regions(&FIG9GEO_REGIONS)
                .with_straggler_fraction(fraction);
            let leopard = run_leopard_scenario(&config);
            let hotstuff = run_hotstuff_scenario(&config);
            let mut row = vec![
                n.to_string(),
                label.to_string(),
                fmt_annotated(leopard.throughput_kreqs(), &leopard),
                fmt_annotated(hotstuff.throughput_kreqs(), &hotstuff),
                fmt_annotated(leopard.steady_state_kreqs(), &leopard),
                fmt_percentiles(&leopard),
            ];
            for region in &leopard.regions {
                row.push(
                    region
                        .average_latency_secs
                        .map(|secs| format!("{:.1}", secs * 1000.0))
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            row.push(leopard.stall_summary());
            table.push_row(row);
        }
    }
    table
}

/// Fig. 9 (CPU-bound variant) — throughput at increasing scale when replica *compute*
/// is the contended resource instead of link bandwidth.
///
/// Charges the BLS-paper cost model (≈ 1.2 ms per pairing-based verification, ≈ 0.3 ms
/// per signing — the crypto stack the paper's prototype actually runs) to every
/// replica's sequential compute queue, under metered execution so the wall-clock stays
/// modest. Each scale runs twice: with uniform CPUs and with the top quarter of the
/// replica ids running at 0.25× speed (heterogeneous stragglers, the Raptr concern).
/// The per-replica compute-utilization columns show *why* a protocol's curve bends:
/// the HotStuff leader batches, verifies and re-ships every request itself, so its
/// compute queue saturates with `n`, while Leopard's leader only handles index blocks
/// and batched vote rounds.
pub fn fig9cpu_compute_bound(quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 9 (CPU-bound) — throughput under BLS-grade compute costs, uniform and heterogeneous CPUs",
        &[
            "n",
            "CPUs",
            "Leopard (Kreqs/s)",
            "HotStuff (Kreqs/s)",
            "Leopard leader cpu",
            "Leopard max cpu",
            "Leopard mean cpu",
            "HotStuff leader cpu",
        ],
    );
    let fmt_cpu = |utilization: f64| format!("{:.1}%", utilization * 100.0);
    for n in scales(quick, &[8, 16], &[16, 32, 64, 128, 256]) {
        for (label, slow) in [("uniform", 0usize), ("25% at 0.25x", n / 4)] {
            let config = ScenarioConfig::paper(n)
                .with_crypto_mode(leopard_crypto::provider::CryptoMode::Metered)
                .with_cost_model(leopard_types::CostModelKind::BlsPaper)
                .with_slow_replicas(slow, 0.25);
            let leopard = run_leopard_scenario(&config);
            let hotstuff = run_hotstuff_scenario(&config);
            table.push_row(vec![
                n.to_string(),
                label.to_string(),
                fmt_annotated(leopard.throughput_kreqs(), &leopard),
                fmt_annotated(hotstuff.throughput_kreqs(), &hotstuff),
                fmt_cpu(leopard.leader_compute_utilization),
                fmt_cpu(leopard.max_compute_utilization),
                fmt_cpu(leopard.mean_compute_utilization),
                fmt_cpu(hotstuff.leader_compute_utilization),
            ]);
        }
    }
    table
}

/// The fig9mp column set: one row per (proposers, cores) cell, with the per-replica
/// compute-utilization columns that decide the experiment (is any single replica
/// CPU-bound?) and the wall clock for the engine-speed log.
const FIG9MP_HEADERS: &[&str] = &[
    "n",
    "proposers",
    "cores",
    "Leopard (Kreqs/s)",
    "Leopard steady (Kreqs/s)",
    "leader cpu",
    "max cpu",
    "mean cpu",
    "wall (s)",
    "Leopard diagnostics",
];

/// One fig9mp cell: the BLS-grade CPU-bound scenario of `fig9cpu`, with `proposers`
/// concurrent BFTblock proposers and `cores` worker lanes per replica.
fn fig9mp_run(n: usize, proposers: usize, cores: usize) -> ScenarioReport {
    let config = ScenarioConfig::paper(n)
        .with_crypto_mode(leopard_crypto::provider::CryptoMode::Metered)
        .with_cost_model(leopard_types::CostModelKind::BlsPaper)
        .with_proposers(proposers)
        .with_cores(cores);
    run_leopard_scenario(&config)
}

fn fig9mp_row(n: usize, proposers: usize, cores: usize, leopard: &ScenarioReport, wall_secs: f64) -> Vec<String> {
    let fmt_cpu = |utilization: f64| format!("{:.1}%", utilization * 100.0);
    vec![
        n.to_string(),
        proposers.to_string(),
        cores.to_string(),
        fmt_annotated(leopard.throughput_kreqs(), leopard),
        fmt_annotated(leopard.steady_state_kreqs(), leopard),
        fmt_cpu(leopard.leader_compute_utilization),
        fmt_cpu(leopard.max_compute_utilization),
        fmt_cpu(leopard.mean_compute_utilization),
        format!("{wall_secs:.2}"),
        leopard.stall_summary(),
    ]
}

/// Fig. 9 (multi-proposer variant) — the CPU-bound sweep of `fig9cpu` rerun under the
/// PR 9 multi-proposer agreement plane and multi-core compute model.
///
/// Under BLS-grade costs the single leader's quorum settlement (batch-verify +
/// combine over `2f` shares, twice per BFTblock) is the first replica to saturate as
/// `n` grows. Rotating proposing over `p` stripes divides that settlement load by
/// `p`, and `k` worker lanes divide what remains per replica by up to `k` — so the
/// experiment's question is whether the max per-replica utilization drops below
/// CPU-bound (< 90%) at the paper's n = 600 ceiling while throughput holds. The
/// `p = 1, k = 1` row is the bit-identical classic protocol and serves as baseline.
pub fn fig9mp_multi_proposer(quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 9 (multi-proposer) — CPU-bound scaling with p proposers × k cores",
        FIG9MP_HEADERS,
    );
    let (n, grid): (usize, Vec<(usize, usize)>) = if quick {
        (16, vec![(1, 1), (1, 2), (2, 1), (2, 2)])
    } else {
        (
            600,
            vec![(1, 1), (1, 4), (2, 1), (2, 4), (4, 1), (4, 4), (8, 1), (8, 4)],
        )
    };
    for (proposers, cores) in grid {
        let start = std::time::Instant::now();
        let leopard = fig9mp_run(n, proposers, cores);
        let wall_secs = start.elapsed().as_secs_f64();
        table.push_row(fig9mp_row(n, proposers, cores, &leopard, wall_secs));
    }
    table
}

/// Fig. 9 (multi-proposer) smoke — the baseline cell and one multi-proposer cell at
/// n = 128, always at full scale (ignoring `quick`). CI runs it under
/// `--require-nonzero Leopard` and `--max-wall-clock`; on top of that the smoke
/// itself asserts the multi-proposer cell is not CPU-bound (max per-replica
/// utilization < 90%), so a regression that re-centralises the quorum-verification
/// load on one replica fails the build even if throughput stays nonzero.
pub fn fig9mp_smoke(_quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 9 (multi-proposer) smoke — p=4 × k=4 must not be CPU-bound at n = 128",
        FIG9MP_HEADERS,
    );
    for (proposers, cores) in [(1usize, 1usize), (4, 4)] {
        let start = std::time::Instant::now();
        let leopard = fig9mp_run(128, proposers, cores);
        let wall_secs = start.elapsed().as_secs_f64();
        if proposers > 1 {
            assert!(
                leopard.max_compute_utilization < 0.90,
                "fig9mpsmoke: p={proposers} k={cores} max compute utilization {:.1}% >= 90% — a replica is CPU-bound",
                leopard.max_compute_utilization * 100.0
            );
        }
        table.push_row(fig9mp_row(128, proposers, cores, &leopard, wall_secs));
    }
    table
}

/// Fig. 10 — effectiveness of scaling up: throughput and latency under 20–200 Mbps
/// per-replica bandwidth.
pub fn fig10_scaling_up(quick: bool) -> Table {
    let ns = scales(quick, &[4], &[4, 16, 64, 128]);
    let bandwidths: Vec<u64> = if quick { vec![20, 100] } else { vec![20, 40, 80, 100, 200] };
    let mut table = Table::new(
        "Fig. 10 — throughput (Mbps) and latency (s) vs per-replica bandwidth",
        &[
            "bandwidth (Mbps)",
            "n",
            "Leopard tput (Mbps)",
            "Leopard latency (s)",
            "HotStuff tput (Mbps)",
            "HotStuff latency (s)",
        ],
    );
    for &mbps in &bandwidths {
        for &n in &ns {
            // The offered load tracks the throttled capacity (≈80 % of the link) so the
            // system runs near saturation without over-subscribing the FIFO links, and
            // smaller batches keep per-datablock transfer times reasonable (the paper
            // also fixes batch sizes in this experiment).
            let offered_rps = (mbps as f64 * 1e6 * 0.8 / (128.0 * 8.0)) as u64;
            let config = ScenarioConfig::paper(n)
                .with_bandwidth_mbps(mbps)
                .with_workload(WorkloadConfig {
                    aggregate_rps: offered_rps.max(1_000),
                    payload_size: 128,
                })
                .with_batches(200, 20)
                .with_hotstuff_batch(400)
                .with_duration(SimDuration::from_secs(if quick { 5 } else { 20 }));
            let leopard = run_leopard_scenario(&config);
            let hotstuff = run_hotstuff_scenario(&config);
            table.push_row(vec![
                mbps.to_string(),
                n.to_string(),
                fmt_annotated(leopard.throughput_mbps(), &leopard),
                fmt_opt_secs(leopard.average_latency_secs),
                fmt_annotated(hotstuff.throughput_mbps(), &hotstuff),
                fmt_opt_secs(hotstuff.average_latency_secs),
            ]);
        }
    }
    table
}

/// Table III — bandwidth-utilisation breakdown of Leopard (leader and one non-leader
/// replica), by message category.
pub fn tab3_bandwidth_breakdown(quick: bool) -> Table {
    let n = if quick { 8 } else { 32 };
    let report = run_leopard_scenario(&ScenarioConfig::paper(n));
    let traffic = &report.sim.metrics.traffic;
    let mut table = Table::new(
        format!("Table III — bandwidth utilisation breakdown of Leopard (n = {n})"),
        &["role", "direction", "category", "bytes", "% of role+direction"],
    );
    let leader_id = ScenarioConfig::paper(n).initial_leader();
    let non_leader_id = NodeId(if leader_id.0 == 0 { 2 } else { 0 });
    for (role, node) in [("leader", leader_id), ("non-leader", non_leader_id)] {
        for direction in ["send", "receive"] {
            let per_category: Vec<(&'static str, u64)> = traffic
                .categories()
                .into_iter()
                .map(|category| {
                    let bytes = if direction == "send" {
                        traffic.sent_bytes_in(node, category)
                    } else {
                        traffic.received_bytes_in(node, category)
                    };
                    (category, bytes)
                })
                .collect();
            let total: u64 = per_category.iter().map(|(_, b)| *b).sum();
            for (category, bytes) in per_category {
                if bytes == 0 {
                    continue;
                }
                let percent = if total > 0 {
                    bytes as f64 * 100.0 / total as f64
                } else {
                    0.0
                };
                table.push_row(vec![
                    role.to_string(),
                    direction.to_string(),
                    category.to_string(),
                    bytes.to_string(),
                    format!("{percent:.2}%"),
                ]);
            }
        }
    }
    table
}

/// Table IV — latency breakdown of Leopard across protocol stages.
pub fn tab4_latency_breakdown(quick: bool) -> Table {
    let n = if quick { 8 } else { 32 };
    let report = run_leopard_scenario(&ScenarioConfig::paper(n));
    let stages = [
        ("datablock generation", "latency_generation"),
        ("datablock dissemination", "latency_dissemination"),
        ("agreement", "latency_agreement"),
    ];
    let averages: Vec<(&str, f64)> = stages
        .iter()
        .map(|(name, label)| {
            let samples = report.sim.metrics.custom_samples(label);
            let avg = if samples.is_empty() {
                0.0
            } else {
                samples.iter().map(|&v| v as f64).sum::<f64>() / samples.len() as f64
            };
            (*name, avg)
        })
        .collect();
    let total: f64 = averages.iter().map(|(_, v)| v).sum();
    let mut table = Table::new(
        format!("Table IV — latency breakdown of Leopard (n = {n})"),
        &["stage", "avg time (ms)", "% of latency"],
    );
    for (name, avg) in averages {
        let percent = if total > 0.0 { avg * 100.0 / total } else { 0.0 };
        table.push_row(vec![
            name.to_string(),
            format!("{:.3}", avg / 1e6),
            format!("{percent:.2}%"),
        ]);
    }
    table
}

/// Fig. 11 — bandwidth usage of the leader in Leopard and HotStuff at different scales.
pub fn fig11_leader_bandwidth(quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 11 — leader bandwidth usage (Mbps) vs n",
        &["n", "Leopard leader (Mbps)", "HotStuff leader (Mbps)"],
    );
    for n in scales(quick, &[4, 8, 16], &[4, 16, 32, 64, 128, 256, 300]) {
        let leopard = run_leopard_scenario(&ScenarioConfig::paper(n));
        let hotstuff = run_hotstuff_scenario(&ScenarioConfig::paper(n));
        table.push_row(vec![
            n.to_string(),
            fmt_f(leopard.leader_bandwidth_mbps()),
            fmt_f(hotstuff.leader_bandwidth_mbps()),
        ]);
    }
    table
}

/// Fig. 12 + Table V — communication and time cost of retrieving a missing datablock.
pub fn fig12_retrieval(quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 12 / Table V — datablock retrieval cost vs n",
        &[
            "n",
            "cost on recovering (KB)",
            "cost on responding (KB)",
            "time (ms)",
            "retrievals",
        ],
    );
    for n in scales(quick, &[4, 7], &[4, 7, 16, 32, 64, 128]) {
        // One selective attacker whose 2000-request datablocks must be retrieved by the
        // replicas outside its dissemination set.
        let config = ScenarioConfig::paper(n)
            .with_batches(2000, 10)
            .with_selective_attackers(1)
            .with_workload(WorkloadConfig {
                aggregate_rps: 20_000,
                payload_size: 128,
            })
            .with_duration(SimDuration::from_secs(4));
        let report = run_leopard_scenario(&config);
        table.push_row(vec![
            n.to_string(),
            report
                .average_retrieval_recv_bytes
                .map(|b| format!("{:.1}", b / 1024.0))
                .unwrap_or_else(|| "-".to_string()),
            report
                .average_responder_bytes
                .map(|b| format!("{:.1}", b / 1024.0))
                .unwrap_or_else(|| "-".to_string()),
            report
                .average_retrieval_secs
                .map(|s| format!("{:.1}", s * 1000.0))
                .unwrap_or_else(|| "-".to_string()),
            report.retrievals.to_string(),
        ]);
    }
    table
}

/// Time (seconds) until *every* honest replica has confirmed requests after the last
/// scheduled disturbance ([`ScenarioConfig::quiet_after`]) — the recovery-time measure
/// of the Fig. 13 matrix. `None` if some honest replica never confirmed after the
/// disturbance (which the invariant checker would have flagged as a stall anyway).
fn recovery_secs(config: &ScenarioConfig, report: &ScenarioReport) -> Option<f64> {
    let quiet = config.quiet_after();
    let mut first: Vec<Option<SimTime>> = vec![None; config.n];
    for observation in &report.sim.metrics.observations {
        if let ObservationKind::RequestsConfirmed { .. } = observation.kind {
            if observation.at >= quiet {
                let slot = &mut first[observation.node.as_index()];
                if slot.map_or(true, |at| observation.at < at) {
                    *slot = Some(observation.at);
                }
            }
        }
    }
    let mut worst = SimTime::ZERO;
    for (index, slot) in first.iter().enumerate() {
        let node = NodeId(index as u32);
        if config.byzantine.iter().any(|&(byz, _)| byz == node) {
            continue;
        }
        match slot {
            Some(at) => worst = worst.max(*at),
            None => return None,
        }
    }
    Some(worst.saturating_since(quiet).as_secs_f64())
}

/// Total KB every replica sent in the fault-handling message categories — view-change
/// rounds, state-transfer catch-up, and the retrieval plane's query/response pairs.
/// This is the "extra communication" a failure costs on top of the steady-state flow.
fn fault_handling_kb(report: &ScenarioReport, n: usize) -> f64 {
    const CATEGORIES: [&str; 4] = ["viewchange", "statesync", "query", "retrieval"];
    let traffic = &report.sim.metrics.traffic;
    let bytes: u64 = (0..n as u32)
        .map(|node| {
            CATEGORIES
                .iter()
                .map(|category| traffic.sent_bytes_in(NodeId(node), category))
                .sum::<u64>()
        })
        .sum();
    bytes as f64 / 1024.0
}

/// The Fig. 13 recovery-matrix column set, shared with the `fig13smoke` CI point.
const FIG13_HEADERS: &[&str] = &[
    "scenario",
    "n",
    "full (Kreqs/s)",
    "post-recovery (Kreqs/s)",
    "recovery (s)",
    "extra comm (KB)",
    "views",
    "violations",
];

/// The adversarial & recovery scenario matrix behind [`fig13_recovery`]: each entry is
/// a named scenario exercising one failure mode of §VI-D, with the warm-up window set
/// past the expected recovery instant so the steady-state column reads *post-recovery*
/// throughput.
fn fig13_matrix(quick: bool) -> Vec<(&'static str, ScenarioConfig)> {
    let burst = WorkloadConfig {
        aggregate_rps: 20_000,
        payload_size: 128,
    };
    // Scales: small enough for CI in quick mode, paper-representative in full mode
    // (the withholding scenario runs at n = 128, where the retrieval plane's quorum
    // geometry matters; see ISSUE acceptance criteria).
    let n_base = if quick { 4 } else { 32 };
    let n_wan = if quick { 8 } else { 32 };
    let n_retrieval = if quick { 7 } else { 128 };
    let mut matrix = Vec::new();

    // 1. Equivocating leader: the initial leader proposes conflicting BFTblocks per
    //    serial; neither side reaches the vote quorum, the progress timer fires and a
    //    view change installs an honest leader. Safety must hold throughout.
    let equivocating = ScenarioConfig::paper(n_base)
        .with_workload(burst.clone())
        .with_batches(200, 10)
        .with_duration(SimDuration::from_secs(8))
        .with_warmup(SimDuration::from_secs(4))
        .with_liveness_bound(SimDuration::from_secs(3));
    let leader = equivocating.initial_leader();
    matrix.push((
        "equivocating leader",
        equivocating.with_byzantine_replica(leader, ByzantineBehavior::EquivocatingLeader),
    ));

    // 2. Withholding datablocks: a selective attacker disseminates its datablocks only
    //    to a 2f+1 prefix, forcing everyone else through the retrieval plane (Fig. 12's
    //    attack, here at the scale where the ISSUE demands it stays complete).
    matrix.push((
        "withholding datablocks",
        ScenarioConfig::paper(n_retrieval)
            .with_workload(burst.clone())
            .with_batches(2000, 10)
            .with_selective_attackers(1)
            .with_duration(SimDuration::from_secs(4))
            .with_liveness_bound(SimDuration::from_secs(3)),
    ));

    // 3. Silent leader over the WAN: the initial leader of a four-region deployment
    //    goes mute, so the view-change storm (timeout broadcast, view-change votes,
    //    new-view install) crosses inter-continental latencies.
    let silent = ScenarioConfig::paper(n_wan)
        .with_workload(burst.clone())
        .with_batches(200, 10)
        .with_wan_regions(&FIG9GEO_REGIONS)
        .with_duration(SimDuration::from_secs(8))
        .with_warmup(SimDuration::from_secs(4))
        .with_liveness_bound(SimDuration::from_secs(3));
    let leader = silent.initial_leader();
    matrix.push((
        "silent leader (WAN)",
        silent.with_byzantine_replica(leader, ByzantineBehavior::SilentLeader),
    ));

    // 4. Crash + restart: a non-leader replica dies at 1 s and comes back at 3 s; it
    //    must rejoin via state transfer (checkpoint proof + confirmed entries) instead
    //    of replaying from genesis, then resume confirming.
    let crash = ScenarioConfig::paper(n_base)
        .with_workload(burst.clone())
        .with_batches(200, 10)
        .with_duration(SimDuration::from_secs(10))
        .with_warmup(SimDuration::from_secs(5))
        .with_liveness_bound(SimDuration::from_secs(3));
    let victim = if crash.initial_leader() == NodeId(2) {
        NodeId(3)
    } else {
        NodeId(2)
    };
    matrix.push((
        "crash + restart",
        crash.with_crash_restart(victim, SimDuration::from_secs(1), SimDuration::from_secs(3)),
    ));

    // 5. Region partition healed at GST: region 0 of the four-region WAN is cut off
    //    from every other region for 2 s. The majority partition keeps confirming
    //    (n/4 < f + 1 replicas cannot even force a view change); the minority catches
    //    up after the heal via checkpoint-proof-triggered state transfer.
    let burst2 = burst.clone();
    let mut partitioned = ScenarioConfig::paper(n_wan)
        .with_workload(burst)
        .with_batches(200, 10)
        .with_wan_regions(&FIG9GEO_REGIONS)
        .with_duration(SimDuration::from_secs(10))
        .with_warmup(SimDuration::from_secs(5))
        .with_liveness_bound(SimDuration::from_secs(3));
    for other in 1..FIG9GEO_REGIONS.len() {
        partitioned = partitioned.with_partition_window(
            0,
            other,
            SimDuration::from_secs(1),
            SimDuration::from_secs(3),
        );
    }
    matrix.push(("region partition", partitioned));

    // 6. Lying state-transfer responders: a crashed replica rejoins via state transfer
    //    while one of the peers it solicits forges its checkpoint digest, swaps the
    //    notarization/confirmation proofs of every entry and inflates its view claim.
    //    Honest replicas must reject the forgery (every corruption is detectable
    //    against the threshold public key) without the catch-up wedging: the row's
    //    post-recovery throughput must stay positive and the run clean.
    let lying = ScenarioConfig::paper(n_base)
        .with_workload(burst2)
        .with_batches(200, 10)
        .with_duration(SimDuration::from_secs(10))
        .with_warmup(SimDuration::from_secs(5))
        .with_liveness_bound(SimDuration::from_secs(3))
        .with_byzantine_replica(NodeId(0), ByzantineBehavior::LyingStateResponder);
    matrix.push((
        "lying state responders",
        lying.with_crash_restart(NodeId(2), SimDuration::from_secs(1), SimDuration::from_secs(3)),
    ));

    matrix
}

fn fig13_row(name: &str, config: &ScenarioConfig) -> Vec<String> {
    // run_leopard_scenario asserts the invariants, so every published row comes from a
    // run with zero violations; the column makes that explicit in the table.
    let report = run_leopard_scenario(config);
    vec![
        name.to_string(),
        config.n.to_string(),
        fmt_annotated(report.throughput_kreqs(), &report),
        fmt_annotated(report.steady_state_kreqs(), &report),
        recovery_secs(config, &report)
            .map(|secs| format!("{secs:.3}"))
            .unwrap_or_else(|| "never".to_string()),
        format!("{:.1}", fault_handling_kb(&report, config.n)),
        report.views_entered.to_string(),
        report.violations.len().to_string(),
    ]
}

/// Fig. 13 (recovery matrix) — per-scenario recovery time, throughput dip/recovery and
/// extra communication under the adversarial & recovery scenario suite (§VI-D failure
/// figures). Every run goes through the always-on invariant checker; a safety fork,
/// post-quiesce stall or unretrievable datablock fails the experiment outright.
pub fn fig13_recovery(quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 13 (recovery) — adversarial & recovery scenario matrix",
        FIG13_HEADERS,
    );
    for (name, config) in fig13_matrix(quick) {
        table.push_row(fig13_row(name, &config));
    }
    table
}

/// Fig. 13 smoke — the recovery matrix at its reduced (quick) scales regardless of the
/// `--full` flag, for the CI step that guards post-recovery throughput: every scenario
/// must end with non-zero post-recovery throughput and zero invariant violations.
pub fn fig13_smoke(_quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 13 smoke — every recovery scenario must recover (reduced scales)",
        FIG13_HEADERS,
    );
    for (name, config) in fig13_matrix(true) {
        table.push_row(fig13_row(name, &config));
    }
    table
}

/// Fig. 13 (view-change cost) — view-change time and communication cost.
pub fn fig13_view_change(quick: bool) -> Table {
    let mut table = Table::new(
        "Fig. 13 — view-change time and communication cost vs n",
        &["n", "time (s)", "total comm. (KB)", "view changes"],
    );
    for n in scales(quick, &[4, 8], &[4, 8, 13, 32, 64, 128, 400]) {
        let config = ScenarioConfig::paper(n)
            .with_workload(WorkloadConfig {
                aggregate_rps: 20_000,
                payload_size: 128,
            })
            .with_batches(200, 10)
            .with_leader_crash_at(SimDuration::from_millis(500))
            .with_duration(SimDuration::from_secs(8));
        let report = run_leopard_scenario(&config);
        table.push_row(vec![
            n.to_string(),
            fmt_opt_secs(report.average_view_change_secs),
            format!("{:.1}", report.view_change_bytes as f64 / 1024.0),
            report.view_changes.to_string(),
        ]);
    }
    table
}

/// Every experiment id understood by [`run_experiment`].
pub const EXPERIMENT_IDS: &[&str] = &[
    "fig1", "fig2", "tab1", "fig6", "fig7", "fig8", "tab2", "fig9", "fig9smoke", "fig9xl",
    "fig9xlsmoke", "fig9cpu", "fig9mp", "fig9mpsmoke", "fig9geo", "fig10", "tab3", "tab4",
    "fig11", "fig12", "fig13", "fig13smoke", "fig13vc", "chaos", "chaossmoke",
];

/// Dispatches an experiment by id. Returns `None` for an unknown id.
pub fn run_experiment(id: &str, quick: bool) -> Option<Table> {
    run_experiment_with(id, quick, &ChaosOverrides::default())
}

/// [`run_experiment`] with CLI overrides for the chaos experiments: `chaos` follows
/// the quick/full profile split (25 schedules at n = 16 vs 200 at n ∈ {16, 32, 64}),
/// `chaossmoke` always runs the quick profile, and `--schedules` / `--chaos-seed` /
/// `--chaos-case` apply on top of either.
pub fn run_experiment_with(id: &str, quick: bool, chaos: &ChaosOverrides) -> Option<Table> {
    let table = match id {
        "chaos" => {
            let profile = if quick { ChaosOptions::quick() } else { ChaosOptions::full() };
            chaos_experiment(&chaos.apply(profile))
        }
        "chaossmoke" => chaos_experiment(&chaos.apply(ChaosOptions::quick())),
        "fig1" => fig1_prior_scalability(quick),
        "fig2" => fig2_leader_bottleneck(quick),
        "tab1" => tab1_cost_model(),
        "fig6" => fig6_hotstuff_batch(quick),
        "fig7" => fig7_bftblock_size(quick),
        "fig8" => fig8_datablock_size(quick),
        "tab2" => tab2_batch_sizes(),
        "fig9" => fig9_throughput_scaling(quick),
        "fig9smoke" => fig9_smoke(quick),
        "fig9xl" => fig9xl_scaling(quick),
        "fig9xlsmoke" => fig9xl_smoke(quick),
        "fig9cpu" => fig9cpu_compute_bound(quick),
        "fig9mp" => fig9mp_multi_proposer(quick),
        "fig9mpsmoke" => fig9mp_smoke(quick),
        "fig9geo" => fig9geo_throughput_scaling(quick),
        "fig10" => fig10_scaling_up(quick),
        "tab3" => tab3_bandwidth_breakdown(quick),
        "tab4" => tab4_latency_breakdown(quick),
        "fig11" => fig11_leader_bandwidth(quick),
        "fig12" => fig12_retrieval(quick),
        "fig13" => fig13_recovery(quick),
        "fig13smoke" => fig13_smoke(quick),
        "fig13vc" => fig13_view_change(quick),
        _ => return None,
    };
    Some(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab1_and_tab2_are_static_and_complete() {
        let t1 = tab1_cost_model();
        assert_eq!(t1.rows.len(), 4);
        let t2 = tab2_batch_sizes();
        assert_eq!(t2.rows.len(), 6);
    }

    #[test]
    fn quick_fig9_shows_leopard_ahead_or_equal() {
        let table = fig9_throughput_scaling(true);
        assert_eq!(table.rows.len(), 3);
        for row in &table.rows {
            let leopard: f64 = row[1].parse().unwrap();
            assert!(leopard > 0.0);
        }
    }

    #[test]
    fn dispatcher_knows_every_id() {
        for id in EXPERIMENT_IDS {
            // Only run the cheap analytical ones here; the rest are covered by the
            // integration tests and benches.
            if *id == "tab1" || *id == "tab2" {
                assert!(run_experiment(id, true).is_some());
            }
        }
        assert!(run_experiment("nope", true).is_none());
    }
}
