//! End-to-end scenario runners: configure a system (scale, bandwidth, batches, faults),
//! run it on the simulator, and distil the metrics the paper plots.

use crate::invariants::SystemSnapshot;
use crate::workload::WorkloadConfig;
use leopard_core::byzantine::ByzantineBehavior;
use leopard_core::{config::WorkloadMode, LeopardConfig, LeopardReplica};
use leopard_crypto::provider::CryptoMode;
use leopard_hotstuff::{HotStuffConfig, HotStuffReplica};
use leopard_simnet::{
    ExecutionMode, FaultPlan, NetworkConfig, ObservationKind, ProgressProbe, SimDuration, SimTime,
    Simulation, SimulationReport, StragglerProfile, Topology,
};
use leopard_types::{CostModelKind, NodeId, ProtocolParams};
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide default for [`ScenarioConfig::parallel`], set by the experiments
/// binary's `--parallel` flag. The engines are bit-identical, so flipping this can
/// never change a result — only the wall clock.
static DEFAULT_PARALLEL: AtomicBool = AtomicBool::new(false);

/// Makes every subsequently constructed [`ScenarioConfig`] default to the parallel
/// engine ([`leopard_simnet::ExecutionMode::Parallel`], threads auto-sized). The
/// opt-in behind the experiments binary's `--parallel` flag; individual scenarios can
/// still override with [`ScenarioConfig::with_parallel`].
pub fn set_default_parallel(parallel: bool) {
    DEFAULT_PARALLEL.store(parallel, Ordering::Relaxed);
}

/// Description of one experiment run.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of replicas.
    pub n: usize,
    /// Offered workload.
    pub workload: WorkloadConfig,
    /// Per-replica link capacity in Mbps; `None` selects the paper's 9.8 Gbps NIC.
    pub bandwidth_mbps: Option<u64>,
    /// Virtual duration of the run.
    pub duration: SimDuration,
    /// Warm-up window excluded from the steady-state throughput figures, or `None`
    /// for the default of one third of the duration (see
    /// [`Self::effective_warmup`]). The full-window figures still cover
    /// `[0, duration]` so cross-PR numbers stay comparable; the steady-state split
    /// exists so a short run's pipeline-fill transient cannot masquerade as a
    /// throughput loss.
    pub warmup: Option<SimDuration>,
    /// Requests per datablock (Leopard).
    pub datablock_size: usize,
    /// Datablock links per BFTblock (Leopard).
    pub bftblock_size: usize,
    /// Requests per block (HotStuff).
    pub hotstuff_batch: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Crash the initial leader at this offset (for the view-change experiments).
    pub leader_crash_at: Option<SimDuration>,
    /// Number of replicas performing the selective datablock attack (for the retrieval
    /// experiments).
    pub selective_attackers: usize,
    /// Event budget (safety valve for runaway configurations).
    pub max_events: u64,
    /// Whether crypto executes for real or is metered (identical modeled time, far
    /// less wall-clock). [`Self::paper`] picks metered above the validated n = 64
    /// equivalence scale; `tests/metered_equivalence.rs` guards that choice.
    pub crypto_mode: CryptoMode,
    /// Which per-operation compute-cost calibration the replicas charge.
    pub cost_model: CostModelKind,
    /// Number of replicas (counted from the highest id downwards, skipping the initial
    /// leader) whose CPU runs at [`Self::slow_cpu_factor`] speed.
    pub slow_replicas: usize,
    /// CPU speed factor of the slow replicas (`1.0` = no slowdown).
    pub slow_cpu_factor: f64,
    /// Geo-distributed topology (regions, pairwise latency matrix, bandwidth classes).
    /// `None` keeps the paper's flat LAN. See [`Self::with_topology`] and the `wan` /
    /// `two_dc` builders.
    pub topology: Option<Topology>,
    /// Fraction of the replicas (highest ids first, skipping the initial leader, count
    /// rounded up) degraded with [`Self::straggler_profile`] — Raptr-style stragglers
    /// that are network- and CPU-slow at once. `0.0` disables stragglers.
    pub straggler_fraction: f64,
    /// The degradation applied to each straggler (see
    /// [`StragglerProfile::wan_default`]).
    pub straggler_profile: StragglerProfile,
    /// Replicas running a protocol-level Byzantine behaviour (equivocation, vote
    /// withholding, silence — see [`ByzantineBehavior`]). These replicas are excluded
    /// from the invariant checker's honest set.
    pub byzantine: Vec<(NodeId, ByzantineBehavior)>,
    /// Crash-restart windows `(node, crash offset, restart offset)`: the node is down
    /// for the window and rejoins via state transfer at the restart instant.
    pub crash_restarts: Vec<(NodeId, SimDuration, SimDuration)>,
    /// Region-level partition windows `(region_a, region_b, from, until)` over the
    /// scenario's [`Self::topology`] — all traffic between the pair is dropped for
    /// the window, then heals.
    pub partitions: Vec<(usize, usize, SimDuration, SimDuration)>,
    /// Longest tolerated confirmation stall of an honest live replica after the last
    /// scheduled disturbance (the liveness invariant), or `None` for the default of
    /// four progress timeouts.
    pub liveness_bound: Option<SimDuration>,
    /// Most views honest replicas may enter beyond the initial one (the view-change
    /// thrash invariant), or `None` for the default of
    /// `4 + 4 × `[`Self::disturbance_count`] — generous for any genuine recovery, far
    /// below a view-change livelock.
    pub view_thrash_bound: Option<u64>,
    /// Overrides the protocol's progress timeout (the view-change trigger). The chaos
    /// engine shortens it so runs with consecutive faulty leaders recover within a
    /// few-second schedule; `None` keeps the protocol default.
    pub progress_timeout: Option<SimDuration>,
    /// Stop offering client load at this offset while the run continues to
    /// [`Self::duration`] (see [`Self::with_workload_stop`]); `None` offers load for
    /// the whole run.
    pub workload_stop: Option<SimDuration>,
    /// Executes same-instant event batches on worker threads
    /// ([`leopard_simnet::ExecutionMode::Parallel`]). Bit-identical to the default
    /// sequential engine by construction — `tests/engine_equivalence.rs` guards it —
    /// so this is purely a wall-clock knob for large-`n` sweeps.
    pub parallel: bool,
    /// Number of concurrent BFTblock proposers (the PR 9 multi-proposer agreement
    /// plane). `1` is the classic single-leader protocol, bit for bit.
    pub proposers: usize,
    /// Worker lanes (cores) per replica in the simulator's compute model. `1` is the
    /// classic single-core horizon, bit for bit (see `NetworkConfig::with_cores`).
    pub cores: usize,
}

impl ScenarioConfig {
    /// The paper's configuration for scale `n`: Table II batch sizes, 9.8 Gbps NICs,
    /// 128-byte payloads at the calibrated saturation rate, no faults.
    pub fn paper(n: usize) -> Self {
        let (datablock_size, bftblock_size) = ProtocolParams::table2_batches(n);
        Self {
            n,
            workload: WorkloadConfig::paper_default(),
            bandwidth_mbps: None,
            duration: SimDuration::from_secs(3),
            warmup: None,
            datablock_size,
            bftblock_size,
            hotstuff_batch: 800,
            seed: 0xBEEF,
            leader_crash_at: None,
            selective_attackers: 0,
            max_events: 50_000_000,
            // Metered crypto above the equivalence-validated scale: identical modeled
            // schedule, a fraction of the wall-clock (the full fig9 sweep's acceptance
            // criterion).
            crypto_mode: if n > 64 { CryptoMode::Metered } else { CryptoMode::Real },
            cost_model: CostModelKind::Calibrated,
            slow_replicas: 0,
            slow_cpu_factor: 1.0,
            topology: None,
            straggler_fraction: 0.0,
            straggler_profile: StragglerProfile::wan_default(),
            byzantine: Vec::new(),
            crash_restarts: Vec::new(),
            partitions: Vec::new(),
            liveness_bound: None,
            view_thrash_bound: None,
            progress_timeout: None,
            workload_stop: None,
            parallel: DEFAULT_PARALLEL.load(Ordering::Relaxed),
            proposers: 1,
            cores: 1,
        }
    }

    /// A small, fast configuration for unit tests and doc examples.
    pub fn small(n: usize) -> Self {
        Self {
            n,
            workload: WorkloadConfig::small(),
            bandwidth_mbps: None,
            duration: SimDuration::from_secs(2),
            warmup: None,
            datablock_size: 16,
            bftblock_size: 8,
            hotstuff_batch: 16,
            seed: 0xBEEF,
            leader_crash_at: None,
            selective_attackers: 0,
            max_events: 5_000_000,
            crypto_mode: CryptoMode::Real,
            cost_model: CostModelKind::Calibrated,
            slow_replicas: 0,
            slow_cpu_factor: 1.0,
            topology: None,
            straggler_fraction: 0.0,
            straggler_profile: StragglerProfile::wan_default(),
            byzantine: Vec::new(),
            crash_restarts: Vec::new(),
            partitions: Vec::new(),
            liveness_bound: None,
            view_thrash_bound: None,
            progress_timeout: None,
            workload_stop: None,
            parallel: DEFAULT_PARALLEL.load(Ordering::Relaxed),
            proposers: 1,
            cores: 1,
        }
    }

    /// Overrides the number of concurrent proposers (`1` = single leader).
    pub fn with_proposers(mut self, proposers: usize) -> Self {
        self.proposers = proposers;
        self
    }

    /// Overrides the per-replica core count of the compute model (`1` = the classic
    /// single-core horizon).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Overrides the per-replica bandwidth (Mbps).
    pub fn with_bandwidth_mbps(mut self, mbps: u64) -> Self {
        self.bandwidth_mbps = Some(mbps);
        self
    }

    /// Overrides the workload.
    pub fn with_workload(mut self, workload: WorkloadConfig) -> Self {
        self.workload = workload;
        self
    }

    /// Overrides the virtual duration. An explicit [`Self::with_warmup`] override is
    /// preserved regardless of call order; otherwise the warm-up stays at its default
    /// of one third of the (new) duration.
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Overrides the warm-up window excluded from steady-state figures (the default
    /// is one third of the duration).
    pub fn with_warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = Some(warmup);
        self
    }

    /// The warm-up window in effect: the explicit override, or one third of the
    /// duration.
    pub fn effective_warmup(&self) -> SimDuration {
        self.warmup
            .unwrap_or_else(|| SimDuration::from_nanos(self.duration.as_nanos() / 3))
    }

    /// Overrides the Leopard batch sizes.
    pub fn with_batches(mut self, datablock_size: usize, bftblock_size: usize) -> Self {
        self.datablock_size = datablock_size;
        self.bftblock_size = bftblock_size;
        self
    }

    /// Overrides the HotStuff batch size.
    pub fn with_hotstuff_batch(mut self, batch: usize) -> Self {
        self.hotstuff_batch = batch;
        self
    }

    /// Schedules a crash of the initial leader.
    pub fn with_leader_crash_at(mut self, at: SimDuration) -> Self {
        self.leader_crash_at = Some(at);
        self
    }

    /// Makes the last `count` replicas selective attackers (they disseminate datablocks
    /// only to a `2f+1`-sized prefix of the replicas).
    pub fn with_selective_attackers(mut self, count: usize) -> Self {
        self.selective_attackers = count;
        self
    }

    /// Runs `node` with a protocol-level Byzantine behaviour (it is excluded from the
    /// invariant checker's honest set).
    pub fn with_byzantine_replica(mut self, node: NodeId, behaviour: ByzantineBehavior) -> Self {
        self.byzantine.push((node, behaviour));
        self
    }

    /// Crashes `node` at offset `at` and restarts it at `until`; the restarted replica
    /// rejoins via state transfer (see `leopard_core::replica`'s catch-up path).
    ///
    /// # Panics
    ///
    /// Panics (in [`FaultPlan::with_crash_restart`], when the run starts) if the
    /// window is inverted.
    pub fn with_crash_restart(mut self, node: NodeId, at: SimDuration, until: SimDuration) -> Self {
        self.crash_restarts.push((node, at, until));
        self
    }

    /// Severs all traffic between `region_a` and `region_b` of the scenario's
    /// [`Self::topology`] for `from <= t < until` (then heals). To isolate one region
    /// of a `k`-region topology, add its `k - 1` pairwise windows.
    ///
    /// # Panics
    ///
    /// Panics (in [`FaultPlan::with_partition`], when the run starts) if the window
    /// is inverted or the regions are equal.
    pub fn with_partition_window(
        mut self,
        region_a: usize,
        region_b: usize,
        from: SimDuration,
        until: SimDuration,
    ) -> Self {
        self.partitions.push((region_a, region_b, from, until));
        self
    }

    /// Overrides the liveness-invariant stall bound (default: four progress timeouts).
    pub fn with_liveness_bound(mut self, bound: SimDuration) -> Self {
        self.liveness_bound = Some(bound);
        self
    }

    /// Overrides the view-change-thrash bound (default:
    /// `4 + 4 × `[`Self::disturbance_count`]).
    pub fn with_view_thrash_bound(mut self, bound: u64) -> Self {
        self.view_thrash_bound = Some(bound);
        self
    }

    /// Overrides the protocol's progress timeout (the view-change trigger).
    pub fn with_progress_timeout(mut self, timeout: SimDuration) -> Self {
        self.progress_timeout = Some(timeout);
        self
    }

    /// Runs the simulation's same-instant event batches on worker threads (thread
    /// count auto-sized to the machine). The schedule, metrics and RNG draws stay
    /// bit-identical to the sequential engine.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Overrides the event budget (the runaway-configuration safety valve). The
    /// `fig9xl` sweep raises it: at n = 4000 a single dissemination wave alone is
    /// tens of millions of events, comfortably past the default 50 M cap.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Stops offering client load at `stop` (an offset from the run start) while the
    /// run itself continues to [`Self::duration`] — a drain window. The `fig9xl`
    /// sweep needs one: at n ≥ 2000 a datablock's dissemination is a large fraction
    /// of the run, and the end-of-run availability invariant must judge a quiesced
    /// system, not honest datablocks still in flight (see `EXPERIMENTS.md`).
    pub fn with_workload_stop(mut self, stop: SimDuration) -> Self {
        self.workload_stop = Some(stop);
        self
    }

    /// The execution mode the runners hand to the simulator.
    fn execution_mode(&self) -> ExecutionMode {
        if self.parallel {
            ExecutionMode::Parallel { threads: 0 }
        } else {
            ExecutionMode::Sequential
        }
    }

    /// A flapping link between `region_a` and `region_b` of the scenario's
    /// [`Self::topology`]: `cycles` partition windows starting at `start`, one per
    /// `period`, each severed for the first `duty` fraction of its period. Composes
    /// with [`Self::with_partition_window`] — every severed window lands in
    /// [`Self::partitions`], so [`Self::quiet_after`] sees the final heal.
    ///
    /// # Panics
    ///
    /// Panics under the [`leopard_simnet::flapping_windows`] validity rules (positive
    /// period, at least one cycle, duty strictly between 0 and 1) or if the regions
    /// are equal.
    pub fn with_flapping_partition(
        mut self,
        region_a: usize,
        region_b: usize,
        start: SimDuration,
        period: SimDuration,
        duty: f64,
        cycles: usize,
    ) -> Self {
        assert!(
            region_a != region_b,
            "with_flapping_partition: cannot partition region {region_a} from itself"
        );
        for (at, until) in leopard_simnet::flapping_windows(SimTime::ZERO + start, period, duty, cycles)
        {
            self.partitions.push((
                region_a,
                region_b,
                at.saturating_since(SimTime::ZERO),
                until.saturating_since(SimTime::ZERO),
            ));
        }
        self
    }

    /// Number of scheduled disturbances: the leader crash, each crash-restart window,
    /// each partition window and each Byzantine replica. The default view-change
    /// thrash bound scales with this.
    pub fn disturbance_count(&self) -> usize {
        usize::from(self.leader_crash_at.is_some())
            + self.crash_restarts.len()
            + self.partitions.len()
            + self.byzantine.len()
    }

    /// The view-change-thrash bound in effect: the explicit override, or
    /// `4 + 4 × `[`Self::disturbance_count`].
    pub fn effective_view_thrash_bound(&self) -> u64 {
        self.view_thrash_bound
            .unwrap_or(4 + 4 * self.disturbance_count() as u64)
    }

    /// The instants at which scheduled disturbances begin or end (crash instants,
    /// restart instants, partition edges, the leader crash), sorted and deduplicated.
    /// The per-disturbance view accounting buckets view entries between consecutive
    /// instants.
    pub fn disturbance_instants(&self) -> Vec<SimTime> {
        let mut instants = Vec::new();
        if let Some(at) = self.leader_crash_at {
            instants.push(SimTime::ZERO + at);
        }
        for &(_, at, until) in &self.crash_restarts {
            instants.push(SimTime::ZERO + at);
            instants.push(SimTime::ZERO + until);
        }
        for &(_, _, from, until) in &self.partitions {
            instants.push(SimTime::ZERO + from);
            instants.push(SimTime::ZERO + until);
        }
        instants.sort();
        instants.dedup();
        instants
    }

    /// The instant the last scheduled disturbance acts: crash instants, restart
    /// instants and partition heals. The liveness invariant only binds after this.
    pub fn quiet_after(&self) -> SimTime {
        let mut quiet = SimTime::ZERO;
        if let Some(at) = self.leader_crash_at {
            quiet = quiet.max(SimTime::ZERO + at);
        }
        for &(_, at, until) in &self.crash_restarts {
            quiet = quiet.max(SimTime::ZERO + at).max(SimTime::ZERO + until);
        }
        for &(_, _, _, until) in &self.partitions {
            quiet = quiet.max(SimTime::ZERO + until);
        }
        quiet
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the crypto mode (real vs metered execution).
    pub fn with_crypto_mode(mut self, mode: CryptoMode) -> Self {
        self.crypto_mode = mode;
        self
    }

    /// Overrides the compute-cost calibration.
    pub fn with_cost_model(mut self, kind: CostModelKind) -> Self {
        self.cost_model = kind;
        self
    }

    /// Makes the `count` highest-id replicas (skipping the initial leader) run their
    /// CPUs at `factor` speed — the heterogeneous-CPU experiments.
    pub fn with_slow_replicas(mut self, count: usize, factor: f64) -> Self {
        self.slow_replicas = count;
        self.slow_cpu_factor = factor;
        self
    }

    /// Installs a geo-distributed topology. A flat single-region topology reproduces
    /// the default LAN bit-identically (see `DESIGN.md` §7).
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Spreads the replicas round-robin over a WAN of the named regions, with
    /// representative public-cloud inter-region latencies
    /// (see [`Topology::wan`]).
    pub fn with_wan_regions(self, regions: &[&str]) -> Self {
        self.with_topology(Topology::wan(regions))
    }

    /// Splits the replicas over two datacenters with `intra` latency inside each and
    /// `inter` latency across the pair (see [`Topology::two_dc`]).
    pub fn with_two_dc(self, intra: SimDuration, inter: SimDuration) -> Self {
        self.with_topology(Topology::two_dc(intra, inter))
    }

    /// Degrades `ceil(fraction · n)` replicas (highest ids first, skipping the initial
    /// leader) with the current [`Self::straggler_profile`] — slow link, slow CPU and
    /// extra one-way latency at once, the Raptr straggler scenario.
    pub fn with_straggler_fraction(mut self, fraction: f64) -> Self {
        self.straggler_fraction = fraction;
        self
    }

    /// Overrides the degradation profile used by [`Self::with_straggler_fraction`].
    pub fn with_straggler_profile(mut self, profile: StragglerProfile) -> Self {
        self.straggler_profile = profile;
        self
    }

    /// Number of stragglers this scenario degrades.
    pub fn straggler_count(&self) -> usize {
        if self.straggler_fraction <= 0.0 {
            return 0;
        }
        ((self.straggler_fraction * self.n as f64).ceil() as usize).min(self.n.saturating_sub(1))
    }

    /// The topology actually handed to the simulator: [`Self::topology`] (or a flat
    /// stand-in when stragglers are requested without one) with the straggler profiles
    /// applied. `None` when the scenario is a plain flat LAN.
    pub fn effective_topology(&self) -> Option<Topology> {
        let stragglers = self.straggler_count();
        let mut topology = self.topology.clone();
        if stragglers > 0 {
            // The scenario's own LAN expressed as a flat topology — bit-identical to
            // the scalar model by construction, so adding stragglers never perturbs
            // the non-straggler schedule, and the scalars can never drift from the
            // network the scenario actually builds.
            let mut with_stragglers = topology.take().unwrap_or_else(|| {
                let base = self.base_network();
                Topology::flat(base.base_latency, base.jitter)
            });
            for node in self.highest_non_leader_ids(stragglers) {
                with_stragglers = with_stragglers.with_straggler(node, self.straggler_profile);
            }
            topology = Some(with_stragglers);
        }
        topology
    }

    /// The identifier of the initial leader (the leader of view 1).
    pub fn initial_leader(&self) -> NodeId {
        leopard_types::View::initial().leader(self.n)
    }

    /// The `count` highest replica ids, skipping the initial leader — the shared
    /// selection used for stragglers, slow-CPU replicas and selective attackers, so
    /// the three experiments always degrade the same node set.
    fn highest_non_leader_ids(&self, count: usize) -> Vec<usize> {
        let leader = self.initial_leader();
        (0..self.n)
            .rev()
            .filter(|&i| NodeId(i as u32) != leader)
            .take(count)
            .collect()
    }

    /// The network before any topology is applied (scale, NIC class, seed scalars).
    fn base_network(&self) -> NetworkConfig {
        match self.bandwidth_mbps {
            Some(mbps) => NetworkConfig::throttled(self.n, mbps),
            None => NetworkConfig::datacenter(self.n),
        }
    }

    fn network(&self) -> NetworkConfig {
        let mut config = self.base_network();
        if self.cores > 1 {
            config = config.with_cores(self.cores);
        }
        if self.slow_replicas > 0 && self.slow_cpu_factor != 1.0 {
            for node in self.highest_non_leader_ids(self.slow_replicas) {
                config = config.with_node_cpu_speed(node, self.slow_cpu_factor);
            }
        }
        if let Some(topology) = self.effective_topology() {
            config = config.with_topology(topology);
        }
        config.with_seed(self.seed)
    }

    fn faults(&self) -> FaultPlan {
        let mut plan = if self.selective_attackers > 0 {
            let f = (self.n - 1) / 3;
            let quorum = 2 * f + 1;
            let attackers: Vec<NodeId> = self
                .highest_non_leader_ids(self.selective_attackers)
                .into_iter()
                .map(|i| NodeId(i as u32))
                .collect();
            FaultPlan::selective_attack(attackers, "datablock", quorum)
        } else {
            FaultPlan::none()
        };
        if let Some(at) = self.leader_crash_at {
            plan = plan.with_crash(self.initial_leader(), SimTime::ZERO + at);
        }
        for &(node, at, until) in &self.crash_restarts {
            plan = plan.with_crash_restart(node, SimTime::ZERO + at, SimTime::ZERO + until);
        }
        for &(region_a, region_b, from, until) in &self.partitions {
            plan = plan.with_partition(region_a, region_b, SimTime::ZERO + from, SimTime::ZERO + until);
        }
        plan
    }

    fn leopard_config(&self) -> LeopardConfig {
        let mut config = LeopardConfig::paper(self.n, self.workload.aggregate_rps);
        config.params.payload_size = self.workload.payload_size;
        config.params.datablock_size = self.datablock_size;
        config.params.bftblock_size = self.bftblock_size;
        config.params.proposers = self.proposers;
        // Saturated pacing calibrated so the aggregate datablock production matches the
        // offered load (see EXPERIMENTS.md, "calibration"). Proposers do not produce
        // datablocks, so the per-producer pacing spreads over `n − p` replicas.
        let producers = (self.n - self.proposers.max(1)).max(1) as f64;
        let pacing_secs =
            producers * self.datablock_size as f64 / self.workload.aggregate_rps.max(1) as f64;
        config.workload = WorkloadMode::Saturated {
            pacing: SimDuration::from_secs_f64(pacing_secs),
        };
        config.crypto_mode = self.crypto_mode;
        config.cost_model = self.cost_model;
        if let Some(timeout) = self.progress_timeout {
            config.progress_timeout = timeout;
        }
        config.workload_stop = self.workload_stop;
        // Scale-aware retrieval timeout: disseminating one datablock to `n − 1` peers
        // serialises `(n−1)·α` bytes through the producer's uplink, which at paper
        // scale exceeds the 100 ms default (≈ 114 ms at n = 256, ≈ 250 ms at n = 600).
        // A timeout below that made every replica query for datablocks that were still
        // in honest flight — at n = 256 the resulting ~270k spurious responses were
        // 74% of the full fig9 sweep's wall-clock and a storm of pointless modeled
        // erasure work. Three dissemination times of headroom keeps the timer a
        // genuine loss detector (fig12's retrieval runs use small datablocks, where
        // the 100 ms floor still applies).
        // Under a topology the slowest producer's uplink bounds honest dissemination
        // (a straggler's 1 Gbps NIC, a throttled region class), and WAN propagation
        // adds up to `max_one_way_latency` per hop of query/response — so the timeout
        // gets four one-way latencies of deterministic headroom on top. For a flat
        // network both terms collapse to exactly the pre-topology formula.
        let network = self.network();
        let resolved = network.resolve();
        let min_uplink_bps = resolved
            .links
            .iter()
            .map(|link| {
                if link.uplink_bps == 0 {
                    u64::MAX // unlimited
                } else {
                    link.uplink_bps
                }
            })
            .min()
            .unwrap_or(u64::MAX);
        let datablock_bytes = (self.datablock_size * self.workload.payload_size) as f64;
        let dissemination_secs = if min_uplink_bps == u64::MAX {
            0.0 // unlimited link: dissemination is instant, the floor applies
        } else {
            (self.n - 1) as f64 * datablock_bytes * 8.0 / min_uplink_bps as f64
        };
        let wan_headroom = network
            .topology
            .as_ref()
            .map(|topology| topology.max_one_way_latency().saturating_mul(4))
            .unwrap_or(SimDuration::ZERO);
        config.retrieval_timeout = config
            .retrieval_timeout
            .max(SimDuration::from_secs_f64(3.0 * dissemination_secs) + wan_headroom);
        config
    }

    fn hotstuff_config(&self) -> HotStuffConfig {
        let mut config = HotStuffConfig::paper(self.n, self.workload.aggregate_rps);
        config.payload_size = self.workload.payload_size;
        config.batch_size = self.hotstuff_batch;
        config.crypto_mode = self.crypto_mode;
        config.cost_model = self.cost_model;
        config
    }
}

/// Throughput and latency of the replicas of one region (see
/// [`ScenarioReport::regions`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionStats {
    /// Region name (from the scenario's [`Topology`]).
    pub name: String,
    /// Number of replicas assigned to the region.
    pub nodes: usize,
    /// Confirmed requests per second, measured as the maximum per-replica confirmation
    /// count *within the region* over the full run window (the same server-side
    /// measure as the global figure, restricted to the region).
    pub throughput_rps: f64,
    /// Mean client latency in seconds over the requests acknowledged by this region's
    /// replicas, or `None` if none completed.
    pub average_latency_secs: Option<f64>,
    /// Number of latency samples behind [`Self::average_latency_secs`].
    pub latency_samples: u64,
}

impl RegionStats {
    /// Throughput in the paper's Kreqs/sec unit.
    pub fn throughput_kreqs(&self) -> f64 {
        self.throughput_rps / 1_000.0
    }
}

/// The distilled result of one scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Which protocol produced it (`"leopard"` or `"hotstuff"`).
    pub protocol: &'static str,
    /// Number of replicas.
    pub n: usize,
    /// Virtual duration in seconds.
    pub duration_secs: f64,
    /// Requests confirmed (max over replicas).
    pub confirmed_requests: u64,
    /// Confirmed requests per second over the full `[0, duration]` window (warm-up
    /// transient included — the historical, cross-PR-comparable figure).
    pub throughput_rps: f64,
    /// Confirmed requests per second over the steady-state window
    /// `[warmup, duration]` only.
    pub steady_state_throughput_rps: f64,
    /// The warm-up window excluded from the steady-state figures, in seconds.
    pub warmup_secs: f64,
    /// Confirmed payload bits per second.
    pub throughput_bps: f64,
    /// Average client latency in seconds (None if nothing completed).
    pub average_latency_secs: Option<f64>,
    /// Median client latency in seconds, from the O(1) fixed-bucket histogram
    /// (bucket-midpoint accuracy; see `leopard_simnet::LatencyHistogram`).
    pub latency_p50_secs: Option<f64>,
    /// 95th-percentile client latency in seconds (same histogram).
    pub latency_p95_secs: Option<f64>,
    /// 99th-percentile client latency in seconds (same histogram).
    pub latency_p99_secs: Option<f64>,
    /// Per-region throughput and latency, in the topology's region order. Empty when
    /// the scenario has no [`ScenarioConfig::topology`].
    pub regions: Vec<RegionStats>,
    /// Bits per second moved (sent + received) by the initial leader.
    pub leader_bandwidth_bps: f64,
    /// Number of view changes observed (across all replicas).
    pub view_changes: u64,
    /// Number of distinct views the system entered beyond the initial one (each view
    /// counted once however many replicas entered it). The view-change thrash
    /// invariant bounds the per-replica equivalent of this figure.
    pub views_entered: u64,
    /// The most distinct views entered within any one disturbance window (windows are
    /// delimited by [`ScenarioConfig::disturbance_instants`]; with no disturbances the
    /// whole run is one window).
    pub max_views_per_disturbance: u64,
    /// Average view-change completion time in seconds, if any completed.
    pub average_view_change_secs: Option<f64>,
    /// Total bytes of view-change traffic (timeout + view-change + new-view messages).
    pub view_change_bytes: u64,
    /// Number of completed datablock retrievals.
    pub retrievals: u64,
    /// Average retrieval time in seconds, if any completed.
    pub average_retrieval_secs: Option<f64>,
    /// Average bytes received to recover one datablock.
    pub average_retrieval_recv_bytes: Option<f64>,
    /// Average bytes sent per responding replica during retrievals.
    pub average_responder_bytes: Option<f64>,
    /// The initial leader's progress probe at the end of the run ("last confirmation
    /// at t, stalled on X since t′"), if the protocol is instrumented.
    pub leader_probe: Option<ProgressProbe>,
    /// Fraction of the run the initial leader's compute queue was busy with modeled
    /// crypto work (can exceed 1.0 when the queue ends the run backlogged).
    pub leader_compute_utilization: f64,
    /// The highest per-replica compute utilization of the run.
    pub max_compute_utilization: f64,
    /// The mean per-replica compute utilization of the run.
    pub mean_compute_utilization: f64,
    /// Invariant violations found by the always-on checker (rendered, one per line).
    /// Always empty for reports returned by [`run_leopard_scenario`], which panics on
    /// any violation; populated (when violations exist) only by
    /// [`run_leopard_scenario_unchecked`]. HotStuff runs are not instrumented.
    pub violations: Vec<String>,
    /// The raw simulation report (traffic matrix, observations) for detailed breakdowns.
    pub sim: SimulationReport,
}

impl ScenarioReport {
    fn from_sim(protocol: &'static str, config: &ScenarioConfig, sim: SimulationReport) -> Self {
        let duration_secs = sim.end_time.as_secs_f64();
        let confirmed = sim.metrics.max_confirmed_requests(config.n);
        let throughput_rps = sim.throughput_rps();
        let warmup = config.effective_warmup();
        let steady_state_throughput_rps = sim.steady_state_throughput_rps(warmup);
        let leader_probe = sim
            .probes
            .get(config.initial_leader().as_index())
            .cloned()
            .flatten();
        let payload_bits = confirmed as f64 * config.workload.payload_size as f64 * 8.0;
        let throughput_bps = if duration_secs > 0.0 {
            payload_bits / duration_secs
        } else {
            0.0
        };
        let leader = config.initial_leader();
        let leader_bandwidth_bps = sim.node_bandwidth_bps(leader);
        let average_latency_secs = sim.average_latency_secs();
        let latency_p50_secs = sim.latency_percentile_secs(0.50);
        let latency_p95_secs = sim.latency_percentile_secs(0.95);
        let latency_p99_secs = sim.latency_percentile_secs(0.99);
        let regions = Self::region_stats(config, &sim);
        let leader_compute_utilization = sim.compute_utilization(leader);
        let max_compute_utilization = sim.max_compute_utilization();
        let mean_compute_utilization = sim.mean_compute_utilization();

        let view_changes = sim
            .metrics
            .observations
            .iter()
            .filter(|o| matches!(o.kind, ObservationKind::ViewChange { .. }))
            .count() as u64;
        // Distinct views entered (with the instant the first replica entered each),
        // and the densest disturbance window. A healthy recovery enters one or two
        // views per disturbance; thrash shows up here long before the invariant fires.
        let mut first_entered: std::collections::BTreeMap<u64, SimTime> =
            std::collections::BTreeMap::new();
        for observation in &sim.metrics.observations {
            if let ObservationKind::ViewChange { view } = observation.kind {
                let at = first_entered.entry(view).or_insert(observation.at);
                *at = (*at).min(observation.at);
            }
        }
        let views_entered = first_entered.len() as u64;
        let mut instants = config.disturbance_instants();
        instants.insert(0, SimTime::ZERO);
        let max_views_per_disturbance = instants
            .windows(2)
            .map(|w| (w[0], Some(w[1])))
            .chain(std::iter::once((*instants.last().expect("non-empty"), None)))
            .map(|(from, until)| {
                first_entered
                    .values()
                    .filter(|&&at| at >= from && until.map_or(true, |u| at < u))
                    .count() as u64
            })
            .max()
            .unwrap_or(0);
        let view_change_samples: Vec<u64> = sim.metrics.custom_samples("view_change_nanos");
        let average_view_change_secs = if view_change_samples.is_empty() {
            None
        } else {
            Some(
                view_change_samples.iter().map(|&v| v as f64 / 1e9).sum::<f64>()
                    / view_change_samples.len() as f64,
            )
        };
        let view_change_bytes: u64 = (0..config.n as u32)
            .map(|node| {
                sim.metrics.traffic.sent_bytes_in(NodeId(node), "viewchange")
                    + sim.metrics.traffic.sent_bytes_in(NodeId(node), "newview")
            })
            .sum();

        let mut retrieval_times = Vec::new();
        let mut retrieval_bytes = Vec::new();
        for observation in &sim.metrics.observations {
            if let ObservationKind::RetrievalCompleted {
                nanos,
                received_bytes,
            } = observation.kind
            {
                retrieval_times.push(nanos as f64 / 1e9);
                retrieval_bytes.push(received_bytes as f64);
            }
        }
        let retrievals = retrieval_times.len() as u64;
        let average = |values: &[f64]| {
            if values.is_empty() {
                None
            } else {
                Some(values.iter().sum::<f64>() / values.len() as f64)
            }
        };
        // Responder cost: average bytes of a single retrieval response (one erasure-coded
        // chunk plus its Merkle proof) — the per-replica "cost on responding" of Fig. 12.
        let (retrieval_bytes_sent, retrieval_messages) = sim
            .metrics
            .traffic
            .iter_sent()
            .filter(|(_, category, _, _)| *category == "retrieval")
            .fold((0u64, 0u64), |(bytes, count), (_, _, b, c)| (bytes + b, count + c));
        let average_responder_bytes = if retrieval_messages > 0 {
            Some(retrieval_bytes_sent as f64 / retrieval_messages as f64)
        } else {
            None
        };

        Self {
            protocol,
            n: config.n,
            duration_secs,
            confirmed_requests: confirmed,
            throughput_rps,
            steady_state_throughput_rps,
            warmup_secs: warmup.as_secs_f64(),
            throughput_bps,
            average_latency_secs,
            latency_p50_secs,
            latency_p95_secs,
            latency_p99_secs,
            regions,
            leader_bandwidth_bps,
            view_changes,
            views_entered,
            max_views_per_disturbance,
            average_view_change_secs,
            view_change_bytes,
            retrievals,
            average_retrieval_secs: average(&retrieval_times),
            average_retrieval_recv_bytes: average(&retrieval_bytes),
            average_responder_bytes,
            leader_probe,
            leader_compute_utilization,
            max_compute_utilization,
            mean_compute_utilization,
            violations: Vec::new(),
            sim,
        }
    }

    /// One pass over the observations grouping confirmations and latency samples by
    /// region. Empty when the scenario has no topology.
    fn region_stats(config: &ScenarioConfig, sim: &SimulationReport) -> Vec<RegionStats> {
        let Some(topology) = &config.topology else {
            return Vec::new();
        };
        let r = topology.region_count();
        let duration_secs = sim.end_time.as_secs_f64();
        let mut per_node_confirmed = vec![0u64; config.n];
        let mut latency_sum = vec![0f64; r];
        let mut latency_count = vec![0u64; r];
        for observation in &sim.metrics.observations {
            match observation.kind {
                ObservationKind::RequestsConfirmed { count, .. } => {
                    if let Some(slot) = per_node_confirmed.get_mut(observation.node.as_index()) {
                        *slot += count;
                    }
                }
                ObservationKind::RequestLatency { nanos } => {
                    let region = topology.region_of(observation.node.as_index());
                    latency_sum[region] += nanos as f64 / 1e9;
                    latency_count[region] += 1;
                }
                _ => {}
            }
        }
        let mut max_confirmed = vec![0u64; r];
        let mut nodes_per_region = vec![0usize; r];
        for (node, &confirmed) in per_node_confirmed.iter().enumerate() {
            let region = topology.region_of(node);
            max_confirmed[region] = max_confirmed[region].max(confirmed);
            nodes_per_region[region] += 1;
        }
        (0..r)
            .map(|region| RegionStats {
                name: topology.region_name(region).to_string(),
                nodes: nodes_per_region[region],
                throughput_rps: if duration_secs > 0.0 {
                    max_confirmed[region] as f64 / duration_secs
                } else {
                    0.0
                },
                average_latency_secs: if latency_count[region] > 0 {
                    Some(latency_sum[region] / latency_count[region] as f64)
                } else {
                    None
                },
                latency_samples: latency_count[region],
            })
            .collect()
    }

    /// Throughput in the paper's Kreqs/sec unit.
    pub fn throughput_kreqs(&self) -> f64 {
        self.throughput_rps / 1_000.0
    }

    /// Steady-state throughput (warm-up excluded) in Kreqs/sec.
    pub fn steady_state_kreqs(&self) -> f64 {
        self.steady_state_throughput_rps / 1_000.0
    }

    /// The leader's stall label when the run ended stalled (e.g. `"AwaitingReady"`),
    /// `None` when the leader was healthy or the protocol is not instrumented.
    pub fn stall_annotation(&self) -> Option<&'static str> {
        self.leader_probe
            .as_ref()
            .filter(|probe| !probe.is_healthy())
            .map(|probe| probe.stall)
    }

    /// Human-readable leader diagnostics for table output: `"-"` when healthy,
    /// otherwise e.g. `"AwaitingReady since 0.020s; never confirmed"`.
    pub fn stall_summary(&self) -> String {
        match &self.leader_probe {
            Some(probe) if !probe.is_healthy() => probe.summary(),
            _ => "-".to_string(),
        }
    }

    /// Throughput in Mbps of confirmed payload (the unit of Fig. 10).
    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_bps / 1_000_000.0
    }

    /// Leader bandwidth in Mbps (the unit of Fig. 11).
    pub fn leader_bandwidth_mbps(&self) -> f64 {
        self.leader_bandwidth_bps / 1_000_000.0
    }
}

/// Runs Leopard under the given scenario and asserts the invariant checker found
/// nothing: any safety fork, post-quiesce liveness stall, unretrievable datablock or
/// view-change thrash panics with the rendered violations. Every experiment goes through this runner, so
/// all published figures come from runs that passed the checker.
///
/// # Panics
///
/// Panics if the run violates any invariant (see [`crate::invariants`]).
pub fn run_leopard_scenario(config: &ScenarioConfig) -> ScenarioReport {
    let report = run_leopard_scenario_unchecked(config);
    assert!(
        report.violations.is_empty(),
        "scenario violated {} invariant(s):\n{}",
        report.violations.len(),
        report.violations.join("\n")
    );
    report
}

/// Runs Leopard under the given scenario with the invariant checker *reporting*
/// instead of asserting: violations land in [`ScenarioReport::violations`]. This is
/// the escape hatch for harness tests that deliberately provoke violations; everything
/// else should use [`run_leopard_scenario`].
pub fn run_leopard_scenario_unchecked(config: &ScenarioConfig) -> ScenarioReport {
    let leopard_config = config.leopard_config();
    let stall_bound = config
        .liveness_bound
        .unwrap_or_else(|| leopard_config.progress_timeout.saturating_mul(4));
    let shared = LeopardConfig::shared_keys(&leopard_config, config.seed);
    let byzantine = config.byzantine.clone();
    let factory_config = leopard_config;
    let mut sim = Simulation::new(config.network(), config.faults(), move |id| {
        let mut replica_config = factory_config.clone();
        if let Some(&(_, behaviour)) = byzantine.iter().find(|(node, _)| *node == id) {
            replica_config = replica_config.with_byzantine(behaviour);
        }
        LeopardReplica::new(id, replica_config, shared.clone())
    });
    sim.set_execution_mode(config.execution_mode());
    sim.run_until(SimTime::ZERO + config.duration, config.max_events);
    let snapshot = SystemSnapshot::capture(
        &sim,
        config.n,
        config.quiet_after(),
        stall_bound,
        config.disturbance_count(),
        config.effective_view_thrash_bound(),
    );
    let violations: Vec<String> = snapshot.check().iter().map(ToString::to_string).collect();
    let report = sim.into_report();
    let mut report = ScenarioReport::from_sim("leopard", config, report);
    report.violations = violations;
    report
}

/// Runs the HotStuff baseline under the given scenario.
pub fn run_hotstuff_scenario(config: &ScenarioConfig) -> ScenarioReport {
    let hotstuff_config = config.hotstuff_config();
    let keys = hotstuff_config.shared_keys(config.seed);
    let sim = Simulation::new(config.network(), config.faults(), move |id| {
        HotStuffReplica::new(id, hotstuff_config.clone(), keys.clone())
    })
    .with_execution_mode(config.execution_mode());
    let report = sim.run_to_report(SimTime::ZERO + config.duration, config.max_events);
    ScenarioReport::from_sim("hotstuff", config, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_leopard_scenario_confirms_requests() {
        let config = ScenarioConfig::small(4);
        let report = run_leopard_scenario(&config);
        assert_eq!(report.protocol, "leopard");
        assert!(report.confirmed_requests > 0);
        assert!(report.throughput_rps > 0.0);
        assert!(report.throughput_mbps() > 0.0);
        assert!(report.leader_bandwidth_bps > 0.0);
    }

    #[test]
    fn small_hotstuff_scenario_confirms_requests() {
        let config = ScenarioConfig::small(4);
        let report = run_hotstuff_scenario(&config);
        assert_eq!(report.protocol, "hotstuff");
        assert!(report.confirmed_requests > 0);
        assert!(report.average_latency_secs.is_some());
    }

    #[test]
    fn leader_crash_scenario_reports_view_changes() {
        let config = ScenarioConfig::small(4)
            .with_leader_crash_at(SimDuration::from_millis(300))
            .with_duration(SimDuration::from_secs(5));
        let report = run_leopard_scenario(&config);
        assert!(report.view_changes > 0, "no view change observed");
        assert!(report.view_change_bytes > 0);
    }

    #[test]
    fn selective_attack_scenario_reports_retrievals() {
        let config = ScenarioConfig::small(4)
            .with_selective_attackers(1)
            .with_duration(SimDuration::from_secs(4));
        let report = run_leopard_scenario(&config);
        assert!(report.confirmed_requests > 0);
        // The attacked replicas' datablocks must have been recovered at least once.
        assert!(report.retrievals > 0, "no retrieval was needed/completed");
        assert!(report.average_retrieval_secs.is_some());
    }

    #[test]
    fn builders_compose() {
        let config = ScenarioConfig::paper(16)
            .with_bandwidth_mbps(100)
            .with_batches(500, 50)
            .with_hotstuff_batch(400)
            .with_seed(1)
            .with_workload(WorkloadConfig::small())
            .with_duration(SimDuration::from_secs(1));
        assert_eq!(config.bandwidth_mbps, Some(100));
        assert_eq!(config.datablock_size, 500);
        assert_eq!(config.hotstuff_batch, 400);
        assert_eq!(config.initial_leader(), NodeId(1));
    }

    #[test]
    fn topology_builders_compose() {
        let config = ScenarioConfig::paper(16)
            .with_wan_regions(&["us-east", "eu-west"])
            .with_straggler_fraction(0.10)
            .with_straggler_profile(StragglerProfile::slow_path(SimDuration::from_millis(10)));
        assert_eq!(config.topology.as_ref().unwrap().region_count(), 2);
        assert_eq!(config.straggler_count(), 2);
        let topology = config.effective_topology().unwrap();
        assert_eq!(topology.stragglers().len(), 2);
        assert!(config.network().validate().is_ok());

        let dc = ScenarioConfig::small(4)
            .with_two_dc(SimDuration::from_micros(200), SimDuration::from_millis(5));
        assert_eq!(dc.topology.as_ref().unwrap().region_count(), 2);
        assert!(dc.effective_topology().is_some());

        // No topology, no stragglers: the network stays the flat scalar model.
        let flat = ScenarioConfig::small(4);
        assert!(flat.effective_topology().is_none());
        assert!(flat.network().topology.is_none());
    }

    #[test]
    fn fault_schedule_builders_compose() {
        let config = ScenarioConfig::small(4)
            .with_byzantine_replica(NodeId(1), ByzantineBehavior::EquivocatingLeader)
            .with_crash_restart(NodeId(2), SimDuration::from_secs(1), SimDuration::from_secs(2))
            .with_partition_window(0, 1, SimDuration::from_millis(500), SimDuration::from_millis(800))
            .with_liveness_bound(SimDuration::from_secs(3));
        assert_eq!(config.byzantine, vec![(NodeId(1), ByzantineBehavior::EquivocatingLeader)]);
        assert_eq!(config.crash_restarts.len(), 1);
        assert_eq!(config.partitions.len(), 1);
        assert_eq!(config.liveness_bound, Some(SimDuration::from_secs(3)));
        // The restart at 2 s is the last scheduled disturbance.
        assert_eq!(config.quiet_after(), SimTime::ZERO + SimDuration::from_secs(2));
        let plan = config.faults();
        assert_eq!(plan.crash_windows().len(), 1);
        assert_eq!(plan.partitions().len(), 1);
    }

    #[test]
    fn flapping_partition_builder_expands_to_cycle_windows() {
        let config = ScenarioConfig::small(8)
            .with_wan_regions(&["us-east", "eu-west"])
            .with_flapping_partition(
                0,
                1,
                SimDuration::from_millis(500),
                SimDuration::from_millis(400),
                0.5,
                3,
            );
        assert_eq!(config.partitions.len(), 3);
        assert_eq!(
            config.partitions[0],
            (0, 1, SimDuration::from_millis(500), SimDuration::from_millis(700))
        );
        assert_eq!(
            config.partitions[2],
            (0, 1, SimDuration::from_millis(1300), SimDuration::from_millis(1500))
        );
        // quiet_after is the LAST heal of the flap.
        assert_eq!(config.quiet_after(), SimTime::ZERO + SimDuration::from_millis(1500));
        // 3 partition windows = 3 disturbances; default thrash bound scales with them.
        assert_eq!(config.disturbance_count(), 3);
        assert_eq!(config.effective_view_thrash_bound(), 16);
        assert_eq!(config.disturbance_instants().len(), 6);
        let plan = config.faults();
        assert_eq!(plan.partitions().len(), 3);
    }

    #[test]
    #[should_panic(expected = "with_flapping_partition: cannot partition region 0 from itself")]
    fn flapping_partition_builder_rejects_self_region() {
        let _ = ScenarioConfig::small(8).with_flapping_partition(
            0,
            0,
            SimDuration::from_millis(500),
            SimDuration::from_millis(400),
            0.5,
            3,
        );
    }

    #[test]
    fn leader_crash_reports_views_entered() {
        let config = ScenarioConfig::small(4)
            .with_leader_crash_at(SimDuration::from_millis(300))
            .with_duration(SimDuration::from_secs(5));
        let report = run_leopard_scenario(&config);
        // One leader crash consumes exactly one view (view 1 -> view 2).
        assert_eq!(report.views_entered, 1, "views entered: {}", report.views_entered);
        assert_eq!(report.max_views_per_disturbance, 1);
    }

    #[test]
    fn healthy_run_enters_no_views() {
        let report = run_leopard_scenario(&ScenarioConfig::small(4));
        assert_eq!(report.views_entered, 0);
        assert_eq!(report.max_views_per_disturbance, 0);
    }

    #[test]
    fn crash_restart_scenario_recovers_and_passes_the_checker() {
        let config = ScenarioConfig::small(4)
            .with_crash_restart(NodeId(2), SimDuration::from_secs(1), SimDuration::from_secs(2))
            .with_duration(SimDuration::from_secs(5));
        // run_leopard_scenario panics on any violation, so reaching the asserts means
        // the restarted replica caught up and every invariant held.
        let report = run_leopard_scenario(&config);
        assert!(report.violations.is_empty());
        assert!(report.confirmed_requests > 0);
        assert!(
            report.sim.metrics.traffic.sent_bytes_in(NodeId(2), "statesync") > 0,
            "restarted replica never requested state transfer"
        );
    }

    #[test]
    fn unchecked_runner_reports_a_real_liveness_loss() {
        // Two vote withholders exceed f = 1 at n = 4: the quorum of 3 is unreachable,
        // nothing ever confirms, and the two honest replicas stall from t = 0. The
        // unchecked runner must surface that as liveness violations (one per honest
        // live replica) instead of panicking.
        let config = ScenarioConfig::small(4)
            .with_byzantine_replica(NodeId(1), ByzantineBehavior::WithholdVotes)
            .with_byzantine_replica(NodeId(2), ByzantineBehavior::WithholdVotes)
            .with_duration(SimDuration::from_secs(4))
            // The default bound (four 2 s progress timeouts) outlasts this short run.
            .with_liveness_bound(SimDuration::from_secs(2));
        let report = run_leopard_scenario_unchecked(&config);
        assert_eq!(report.confirmed_requests, 0);
        assert_eq!(report.violations.len(), 2, "violations: {:?}", report.violations);
        assert!(report.violations.iter().all(|v| v.contains("liveness stall")));
    }

    #[test]
    fn wan_topology_raises_the_retrieval_timeout() {
        let flat = ScenarioConfig::paper(16);
        let wan = ScenarioConfig::paper(16).with_wan_regions(&["us-east", "eu-west", "sa-east"]);
        let flat_timeout = flat.leopard_config().retrieval_timeout;
        let wan_timeout = wan.leopard_config().retrieval_timeout;
        // eu-west ↔ sa-east is 95 ms + 9.5 ms jitter; four one-way latencies of
        // headroom must push the timeout well past the flat configuration's 100 ms.
        assert!(
            wan_timeout.as_nanos() >= 4 * 95_000_000 && wan_timeout > flat_timeout,
            "wan timeout {wan_timeout} vs flat {flat_timeout}"
        );
    }

    #[test]
    fn small_wan_scenario_reports_region_stats() {
        let config = ScenarioConfig::small(4)
            .with_wan_regions(&["us-east", "eu-west"])
            .with_duration(SimDuration::from_secs(3));
        let report = run_leopard_scenario(&config);
        assert!(report.confirmed_requests > 0);
        assert_eq!(report.regions.len(), 2);
        assert_eq!(report.regions[0].name, "us-east");
        assert_eq!(report.regions[0].nodes + report.regions[1].nodes, 4);
        assert!(report.regions.iter().all(|r| r.throughput_rps > 0.0));
        assert!(report.latency_p50_secs.is_some());
    }
}
