//! Folding the repo's `BENCH_PR*.json` documents into one trajectory table.
//!
//! Every PR records the machine-readable output of the `experiments` binary
//! (`--bench-json`, schema `leopard-bench/v1` or `/v2` — see
//! [`crate::report::bench_records_to_json`]) as a `BENCH_PR<k>_*.json` file at the
//! repo root. Each file answers "how fast was the suite at PR k", but the question
//! the files exist for — "is the engine getting faster or slower over the life of
//! the repo" — needs them side by side. The `bench-trajectory` subcommand of the
//! `experiments` binary calls [`fold_document`] over every `BENCH_PR*.json` it
//! finds and writes the resulting markdown table to `BENCH_TRAJECTORY.md`.
//!
//! The fold is schema-tolerant: v1 files (PR 2–5) predate the engine-speed fields,
//! so their events/sec and peak-RSS cells render as `-` instead of failing the fold.
//! The parser below is a ~hundred-line recursive-descent JSON reader — the workspace
//! deliberately has no serde dependency, and the input is machine-written by
//! [`crate::report::bench_records_to_json`], so full JSON generality is not needed
//! (it still handles escapes, nested containers and scientific notation, and rejects
//! malformed input with a line-free error rather than panicking).

use std::fmt::Write as _;

/// A parsed JSON value. Numbers are kept as `f64` — the bench documents contain
/// nothing that needs more than 53 bits of precision.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (the bench documents have no duplicate keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document. Errors are descriptive strings with a byte offset.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            members.push((key, self.value()?));
            self.skip_whitespace();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match escape {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // The bench writer never emits surrogate pairs; map a
                            // lone surrogate to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged: find the
                    // char boundary via the original str slice.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// One folded `BENCH_PR*.json` document.
#[derive(Debug, Clone)]
pub struct TrajectoryRow {
    /// PR number parsed from the `BENCH_PR<k>_…` filename (rows sort by it).
    pub pr: u32,
    /// The source filename.
    pub file: String,
    /// The document's `profile` field (`"quick"` / `"full"`).
    pub profile: String,
    /// The document's schema tag.
    pub schema: String,
    /// `total_wall_clock_secs` of the run.
    pub wall_secs: f64,
    /// Number of experiments in the document.
    pub experiments: usize,
    /// Wall-time-weighted mean engine events/sec over the experiments that ran a
    /// simulation (`None` for v1 documents, which lack the field).
    pub events_per_sec: Option<f64>,
    /// Peak RSS over the whole run, bytes (`None` for v1 documents).
    pub peak_memory_bytes: Option<u64>,
}

/// Folds one `BENCH_PR*.json` document into a [`TrajectoryRow`].
pub fn fold_document(file: &str, content: &str) -> Result<TrajectoryRow, String> {
    let pr = file
        .strip_prefix("BENCH_PR")
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse::<u32>().ok())
        .ok_or_else(|| format!("{file}: not a BENCH_PR<k>_*.json filename"))?;
    let doc = parse_json(content).map_err(|e| format!("{file}: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let profile = doc
        .get("profile")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string();
    let wall_secs = doc
        .get("total_wall_clock_secs")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{file}: missing total_wall_clock_secs"))?;
    let experiments = doc
        .get("experiments")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{file}: missing experiments array"))?;

    // Engine speed over the whole document: each v2 entry records its own
    // events/sec; the suite-level figure is the wall-time-weighted mean over the
    // entries that actually ran events (total events / total simulating wall).
    let mut sim_wall = 0.0f64;
    let mut events = 0.0f64;
    let mut peak: Option<u64> = None;
    for entry in experiments {
        let wall = entry.get("wall_clock_secs").and_then(Json::as_f64).unwrap_or(0.0);
        if let Some(eps) = entry.get("events_per_sec").and_then(Json::as_f64) {
            if eps > 0.0 {
                sim_wall += wall;
                events += eps * wall;
            }
        }
        if let Some(bytes) = entry.get("peak_memory_bytes").and_then(Json::as_f64) {
            let bytes = bytes as u64;
            peak = Some(peak.map_or(bytes, |p| p.max(bytes)));
        }
    }
    Ok(TrajectoryRow {
        pr,
        file: file.to_string(),
        profile,
        schema,
        wall_secs,
        experiments: experiments.len(),
        events_per_sec: (sim_wall > 0.0).then(|| events / sim_wall),
        peak_memory_bytes: peak,
    })
}

/// Renders the folded rows as the `BENCH_TRAJECTORY.md` document. Rows are sorted
/// by PR number, quick profile before full, so the leftmost column reads as the
/// repo's history.
pub fn render_trajectory(mut rows: Vec<TrajectoryRow>) -> String {
    rows.sort_by(|a, b| {
        (a.pr, a.profile != "quick", a.file.as_str()).cmp(&(b.pr, b.profile != "quick", b.file.as_str()))
    });
    let mut out = String::new();
    out.push_str("# Benchmark trajectory\n\n");
    out.push_str(
        "Folded from every `BENCH_PR*.json` at the repo root by\n\
         `cargo run -p leopard-bench --release --bin experiments -- bench-trajectory`.\n\
         Regenerate after recording a new `BENCH_PR*.json`; do not edit by hand.\n\n\
         The engine column is the wall-time-weighted mean events/sec over the\n\
         experiments that ran a simulation — total events divided by total\n\
         simulating wall time, *not* a mean of per-experiment rates. Schema-v1\n\
         documents (PR 2–5) predate the engine-speed fields, so those cells read\n\
         `-`. Numbers from different PRs were recorded on that PR's reference\n\
         machine; treat cross-PR deltas as indicative, and rerun `--ab-compare`\n\
         for a same-machine comparison (see `EXPERIMENTS.md`).\n\n",
    );
    out.push_str("| PR | file | profile | wall (s) | engine (Mev/s) | peak RSS (MB) | experiments |\n");
    out.push_str("|----|------|---------|----------|----------------|---------------|-------------|\n");
    for row in &rows {
        let engine = row
            .events_per_sec
            .map_or("-".to_string(), |eps| format!("{:.2}", eps / 1e6));
        let rss = row
            .peak_memory_bytes
            .map_or("-".to_string(), |bytes| format!("{:.0}", bytes as f64 / 1e6));
        let _ = writeln!(
            out,
            "| {} | {} | {} | {:.1} | {} | {} | {} |",
            row.pr, row.file, row.profile, row.wall_secs, engine, rss, row.experiments
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_writer_output() {
        let json = crate::report::bench_records_to_json(
            "quick",
            &[crate::report::BenchRecord {
                id: "fig9".to_string(),
                wall_clock_secs: 1.5,
                events_per_sec: 2.0e6,
                peak_memory_bytes: 100_000_000,
                table: {
                    let mut t = crate::report::Table::new("T — \"quoted\"", &["a", "b"]);
                    t.push_row(vec!["1".to_string(), "x / y".to_string()]);
                    t
                },
            }],
        );
        let doc = parse_json(&json).expect("writer output parses");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("leopard-bench/v2"));
        let experiments = doc.get("experiments").and_then(Json::as_arr).unwrap();
        assert_eq!(experiments.len(), 1);
        assert_eq!(
            experiments[0].get("table").and_then(|t| t.get("title")).and_then(Json::as_str),
            Some("T — \"quoted\"")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{\"a\": 1} extra").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn folds_v1_and_v2_documents() {
        let v2 = r#"{"schema":"leopard-bench/v2","profile":"quick","total_wall_clock_secs":10.0,
            "experiments":[
                {"id":"a","wall_clock_secs":4.0,"events_per_sec":1000000,"peak_memory_bytes":50000000,"table":{"title":"t","headers":[],"rows":[]}},
                {"id":"b","wall_clock_secs":1.0,"events_per_sec":6000000,"peak_memory_bytes":80000000,"table":{"title":"t","headers":[],"rows":[]}},
                {"id":"tab","wall_clock_secs":0.0,"events_per_sec":0,"peak_memory_bytes":10000000,"table":{"title":"t","headers":[],"rows":[]}}
            ]}"#;
        let row = fold_document("BENCH_PR8_quick.json", v2).expect("v2 folds");
        assert_eq!(row.pr, 8);
        assert_eq!(row.experiments, 3);
        // (4 s · 1 Mev/s + 1 s · 6 Mev/s) / 5 s = 2 Mev/s — weighted, zero-eps
        // analytical entries excluded.
        assert_eq!(row.events_per_sec, Some(2.0e6));
        assert_eq!(row.peak_memory_bytes, Some(80_000_000));

        let v1 = r#"{"schema":"leopard-bench/v1","profile":"quick","total_wall_clock_secs":1.7,
            "experiments":[{"id":"fig9","wall_clock_secs":0.8,"table":{"title":"t","headers":[],"rows":[]}}]}"#;
        let row = fold_document("BENCH_PR2_quick.json", v1).expect("v1 folds");
        assert_eq!(row.pr, 2);
        assert_eq!(row.events_per_sec, None);
        assert_eq!(row.peak_memory_bytes, None);

        assert!(fold_document("NOT_A_BENCH.json", v1).is_err());
    }

    #[test]
    fn renders_sorted_markdown() {
        let rows = vec![
            fold_document(
                "BENCH_PR10_quick.json",
                r#"{"schema":"leopard-bench/v2","profile":"quick","total_wall_clock_secs":9.0,
                    "experiments":[{"id":"a","wall_clock_secs":1.0,"events_per_sec":1500000,"peak_memory_bytes":1000000,"table":{"title":"t","headers":[],"rows":[]}}]}"#,
            )
            .unwrap(),
            fold_document(
                "BENCH_PR2_quick.json",
                r#"{"schema":"leopard-bench/v1","profile":"quick","total_wall_clock_secs":1.7,"experiments":[]}"#,
            )
            .unwrap(),
        ];
        let md = render_trajectory(rows);
        let pr2 = md.find("BENCH_PR2_quick.json").expect("PR 2 row present");
        let pr10 = md.find("BENCH_PR10_quick.json").expect("PR 10 row present");
        assert!(pr2 < pr10, "rows sort numerically by PR, not lexically");
        assert!(md.contains("| 1.50 |"), "events/sec rendered in Mev/s:\n{md}");
        assert!(md.contains("| - | - |"), "v1 rows render dashes");
    }
}
