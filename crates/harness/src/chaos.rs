//! The chaos engine: seeded fault-schedule fuzzing over the invariant checker.
//!
//! [`FaultScheduleGenerator`] composes random-but-valid adversarial runs — crash-restart
//! windows, flapping region partitions over the WAN topology, straggler assignments and
//! Byzantine role draws (including the recovery-plane attackers of
//! [`ByzantineBehavior::all_byzantine`]) — and the `chaos` experiment pushes hundreds of
//! them through [`run_leopard_scenario_unchecked`] and the invariant checker.
//!
//! Every generated schedule satisfies two validity constraints *by construction*:
//!
//! * **corrupt + crashed ≤ f at every instant** — the generator first draws
//!   `b ≤ min(f, 2)` Byzantine roles, then at most `min(f − b, 2)` crash-restart
//!   windows on *distinct, non-Byzantine* replicas, so even if every crash window
//!   overlapped the budget cannot be exceeded;
//! * **a forced quiet tail after GST** — every scheduled fault ends by
//!   [`ChaosSchedule::gst`] (2.5 s into a 6 s run), so `ScenarioConfig::quiet_after()`
//!   leaves a 3.5 s disturbance-free tail, longer than the 2.5 s liveness bound, and
//!   the [`crate::invariants`] checker can always judge liveness.
//!
//! A violating seed is automatically shrunk by [`shrink_schedule`]: deterministically
//! drop one scheduled fault at a time, re-run, and keep the failure — repeated until no
//! single-fault removal still fails. The minimal schedule is printed together with a
//! one-line reproducer (`chaos --chaos-seed N --chaos-case K`) that regenerates the
//! exact same schedule from the seed pair alone.

use std::fmt;
use std::time::Instant;

use crate::experiments::FIG9GEO_REGIONS;
use crate::report::Table;
use crate::scenario::{run_leopard_scenario_unchecked, ScenarioConfig, ScenarioReport};
use crate::workload::WorkloadConfig;
use leopard_core::byzantine::ByzantineBehavior;
use leopard_crypto::provider::CryptoMode;
use leopard_simnet::{flapping_windows, SimDuration, SimTime};
use leopard_types::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One scheduled fault — the unit the shrinker drops. Each variant maps onto exactly
/// one `ScenarioConfig` builder call in [`ChaosSchedule::to_config`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosFault {
    /// A replica plays one of the Byzantine roles for the whole run.
    Byzantine {
        /// The corrupted replica.
        node: NodeId,
        /// Its behaviour, drawn from [`ByzantineBehavior::all_byzantine`].
        behaviour: ByzantineBehavior,
    },
    /// A replica crashes at `at` and restarts (cold, via state transfer) at `until`.
    CrashRestart {
        /// The crashed replica.
        node: NodeId,
        /// Crash instant, as an offset from the start of the run.
        at: SimDuration,
        /// Restart instant; always at or before GST.
        until: SimDuration,
    },
    /// One severed window of a flapping region partition (each window shrinks away
    /// independently).
    Partition {
        /// First region index of the severed pair.
        region_a: usize,
        /// Second region index of the severed pair.
        region_b: usize,
        /// Start of the severed window.
        from: SimDuration,
        /// Heal instant of the window.
        until: SimDuration,
    },
    /// `count` replicas run as stragglers (network- and CPU-slow) for the whole run.
    Stragglers {
        /// Number of straggler replicas.
        count: usize,
    },
}

impl fmt::Display for ChaosFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosFault::Byzantine { node, behaviour } => {
                write!(f, "byzantine node {} ({behaviour:?})", node.0)
            }
            ChaosFault::CrashRestart { node, at, until } => write!(
                f,
                "crash-restart node {} [{:.3}s, {:.3}s)",
                node.0,
                at.as_secs_f64(),
                until.as_secs_f64()
            ),
            ChaosFault::Partition {
                region_a,
                region_b,
                from,
                until,
            } => write!(
                f,
                "partition regions {region_a}<->{region_b} [{:.3}s, {:.3}s)",
                from.as_secs_f64(),
                until.as_secs_f64()
            ),
            ChaosFault::Stragglers { count } => write!(f, "{count} straggler replica(s)"),
        }
    }
}

/// A complete generated adversarial run: the seed pair that reproduces it, the scale,
/// whether it runs over the four-region WAN topology, and the fault list.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// The master seed the generator was built with (`--chaos-seed`).
    pub master_seed: u64,
    /// The case index within the master seed's stream (`--chaos-case`).
    pub case_index: usize,
    /// Replica count.
    pub n: usize,
    /// `true` when the run uses the four-region WAN topology ([`FIG9GEO_REGIONS`]).
    pub wan: bool,
    /// Concurrent BFTblock proposers (the PR 9 multi-proposer plane); `1` is the
    /// classic single-leader protocol. Schedules with `proposers > 1` bias their
    /// Byzantine/crash draws onto the initial view's proposer slots, so faulty
    /// *proposers* — not just faulty leaders — are part of the fuzzed space.
    pub proposers: usize,
    /// The scheduled faults, in generation order.
    pub faults: Vec<ChaosFault>,
}

impl ChaosSchedule {
    /// Global stabilisation time: every scheduled fault has ended by this offset, and
    /// the remaining tail of the run is fault-free.
    pub fn gst() -> SimDuration {
        SimDuration::from_millis(2_500)
    }

    /// Total simulated duration of a chaos run.
    pub fn duration() -> SimDuration {
        SimDuration::from_secs(6)
    }

    /// The worst-case instantaneous `corrupt + crashed` count, assuming every crash
    /// window overlaps (an upper bound; the checker's validity argument needs only
    /// that this never exceeds f).
    pub fn max_corrupt_and_crashed(&self) -> usize {
        let byzantine = self
            .faults
            .iter()
            .filter(|fault| matches!(fault, ChaosFault::Byzantine { .. }))
            .count();
        let crashed = self
            .faults
            .iter()
            .filter(|fault| matches!(fault, ChaosFault::CrashRestart { .. }))
            .count();
        byzantine + crashed
    }

    /// The latest instant at which any scheduled fault is still active. The generator
    /// guarantees this is at most [`Self::gst`].
    pub fn last_fault_end(&self) -> SimDuration {
        let mut last = SimDuration::ZERO;
        for fault in &self.faults {
            let end = match fault {
                ChaosFault::CrashRestart { until, .. } | ChaosFault::Partition { until, .. } => {
                    *until
                }
                // Byzantine roles and stragglers run for the whole schedule but do not
                // disturb quiescence: the liveness bound already tolerates them.
                ChaosFault::Byzantine { .. } | ChaosFault::Stragglers { .. } => SimDuration::ZERO,
            };
            last = last.max(end);
        }
        last
    }

    /// Expands the schedule into a runnable [`ScenarioConfig`]: a 6 s metered run at
    /// 20 Kreqs/s with an aggressive progress timeout (400 ms on the flat LAN, 1 s
    /// over the WAN — in both cases just above the network's agreement round, so even
    /// two consecutive bad leaders are voted out well inside the 2.5 s liveness
    /// bound) and the liveness bound armed, so the invariant checker judges all four
    /// violation families.
    pub fn to_config(&self) -> ScenarioConfig {
        let timeout_ms = if self.wan { 1_000 } else { 400 };
        let mut config = ScenarioConfig::paper(self.n)
            .with_workload(WorkloadConfig {
                aggregate_rps: 20_000,
                payload_size: 128,
            })
            .with_batches(200, 10)
            .with_duration(Self::duration())
            .with_liveness_bound(Self::gst())
            .with_progress_timeout(SimDuration::from_millis(timeout_ms))
            .with_crypto_mode(CryptoMode::Metered)
            .with_proposers(self.proposers.max(1))
            .with_seed(case_seed(self.master_seed, self.case_index));
        if self.wan {
            config = config.with_wan_regions(&FIG9GEO_REGIONS);
        }
        let mut straggler_count = 0usize;
        for fault in &self.faults {
            match *fault {
                ChaosFault::Byzantine { node, behaviour } => {
                    config = config.with_byzantine_replica(node, behaviour);
                }
                ChaosFault::CrashRestart { node, at, until } => {
                    config = config.with_crash_restart(node, at, until);
                }
                ChaosFault::Partition {
                    region_a,
                    region_b,
                    from,
                    until,
                } => {
                    config = config.with_partition_window(region_a, region_b, from, until);
                }
                ChaosFault::Stragglers { count } => straggler_count += count,
            }
        }
        if straggler_count > 0 {
            // Offset down by half a replica so `ceil(fraction * n)` is immune to
            // floating-point rounding and lands exactly on `straggler_count`.
            let fraction = (straggler_count as f64 - 0.5) / self.n as f64;
            config = config.with_straggler_fraction(fraction);
        }
        config
    }

    /// A multi-line human-readable rendering of the schedule.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "schedule seed {} case {} (n = {}, {}, {} proposer(s)): {} fault(s)",
            self.master_seed,
            self.case_index,
            self.n,
            if self.wan { "4-region WAN" } else { "flat LAN" },
            self.proposers.max(1),
            self.faults.len()
        );
        for fault in &self.faults {
            out.push_str("\n  * ");
            out.push_str(&fault.to_string());
        }
        out
    }
}

/// Mixes the master seed and the case index into the per-case RNG seed (and the
/// simulation seed), so `--chaos-case K` reproduces case `K` without replaying the
/// stream. SplitMix64's odd multiplicative constant decorrelates adjacent cases.
fn case_seed(master_seed: u64, case_index: usize) -> u64 {
    master_seed ^ (case_index as u64)
        .wrapping_add(1)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The single-line deterministic reproducer for a chaos case.
pub fn reproducer(master_seed: u64, case_index: usize) -> String {
    format!(
        "cargo run -p leopard-bench --release --bin experiments -- chaos --chaos-seed {master_seed} --chaos-case {case_index}"
    )
}

/// Runs a schedule through the unchecked scenario runner; `report.violations` carries
/// whatever the invariant checker found.
pub fn run_schedule(schedule: &ChaosSchedule) -> ScenarioReport {
    run_leopard_scenario_unchecked(&schedule.to_config())
}

/// Seeded generator of valid adversarial schedules at a fixed scale. The same
/// `(n, master_seed, case_index)` triple always yields the same schedule.
#[derive(Debug, Clone)]
pub struct FaultScheduleGenerator {
    n: usize,
    master_seed: u64,
}

impl FaultScheduleGenerator {
    /// Creates a generator for `n` replicas under `master_seed`.
    ///
    /// # Panics
    /// If `n < 4` (no fault budget exists below four replicas).
    pub fn new(n: usize, master_seed: u64) -> Self {
        assert!(n >= 4, "FaultScheduleGenerator: need n >= 4, got {n}");
        Self { n, master_seed }
    }

    /// Generates case `case_index` of this generator's schedule stream.
    pub fn schedule(&self, case_index: usize) -> ChaosSchedule {
        let mut rng = StdRng::seed_from_u64(case_seed(self.master_seed, case_index));
        // The proposer overlay draws from a forked sub-stream: growing the generator
        // must not reshuffle the crash/Byzantine/partition draws of every historical
        // case, or shrunk reproducer lines recorded before the feature landed would
        // silently reproduce different fault schedules.
        let mut overlay_rng =
            StdRng::seed_from_u64(case_seed(self.master_seed, case_index) ^ 0x70726F_706F73_6572);
        let f = (self.n - 1) / 3;
        let mut faults = Vec::new();

        // Multi-proposer draw: half the schedules run the PR 9 agreement plane with
        // p ∈ {2, 4} concurrent proposers (capped at n/4 so non-proposing producers
        // always remain; below n = 8 the cap collapses the draw back to 1).
        let proposers = if overlay_rng.gen_bool(0.5) {
            (*[2usize, 4].choose(&mut overlay_rng).expect("non-empty")).min(self.n / 4).max(1)
        } else {
            1
        };

        // Byzantine role draws: b ≤ min(f, 2) distinct replicas, behaviours from the
        // full adversarial catalogue (agreement plane and recovery plane alike).
        let mut ids: Vec<u32> = (0..self.n as u32).collect();
        ids.shuffle(&mut rng);
        if proposers > 1 && overlay_rng.gen_bool(0.5) {
            // Bias the corruption/crash draws onto the initial view's proposer slots
            // (replicas `(1 + j) mod n`, `j < p`): a faulty replica that *owns a
            // stripe* exercises the per-stripe view-change demotion path, which a
            // uniform draw at n = 16+ would rarely hit. A stable sort keeps the
            // shuffled order within each group, so the draw stays seed-deterministic.
            let n = self.n as u32;
            ids.sort_by_key(|&id| (id + n - 1) % n >= proposers as u32);
        }
        let byzantine_count = rng.gen_range(0..=f.min(2));
        let behaviours = ByzantineBehavior::all_byzantine();
        for &id in &ids[..byzantine_count] {
            let behaviour = *behaviours.choose(&mut rng).expect("catalogue is non-empty");
            faults.push(ChaosFault::Byzantine {
                node: NodeId(id),
                behaviour,
            });
        }

        // Crash-restart windows on distinct non-Byzantine replicas. Even if every
        // window overlapped, corrupt + crashed ≤ byzantine_count + crash_count ≤ f.
        let crash_budget = (f - byzantine_count).min(2);
        let crash_count = if crash_budget == 0 {
            0
        } else {
            rng.gen_range(0..=crash_budget)
        };
        for &id in &ids[byzantine_count..byzantine_count + crash_count] {
            let at_ms = rng.gen_range(400..=1_500u64);
            let len_ms = rng.gen_range(300..=1_000u64);
            faults.push(ChaosFault::CrashRestart {
                node: NodeId(id),
                at: SimDuration::from_millis(at_ms),
                until: SimDuration::from_millis(at_ms + len_ms),
            });
        }

        // Topology draw; half the schedules run over the four-region WAN, and most of
        // those flap one region in and out of the network before GST.
        let wan = rng.gen_bool(0.5);
        if wan && rng.gen_bool(0.7) {
            let regions = FIG9GEO_REGIONS.len();
            let victim = rng.gen_range(0..regions);
            let start_ms = rng.gen_range(300..=800u64);
            let period_ms = rng.gen_range(300..=600u64);
            let duty = rng.gen_range(0.3..0.7);
            let cycles = rng.gen_range(2..=3usize);
            // Worst case 800 + 2·600 + 0.7·600 = 2 420 ms: the last heal always lands
            // before GST at 2 500 ms.
            let windows = flapping_windows(
                SimTime::ZERO + SimDuration::from_millis(start_ms),
                SimDuration::from_millis(period_ms),
                duty,
                cycles,
            );
            for (at, until) in windows {
                for other in 0..regions {
                    if other == victim {
                        continue;
                    }
                    faults.push(ChaosFault::Partition {
                        region_a: victim.min(other),
                        region_b: victim.max(other),
                        from: at.saturating_since(SimTime::ZERO),
                        until: until.saturating_since(SimTime::ZERO),
                    });
                }
            }
        }

        // Stragglers: honest-but-slow replicas, not counted against the fault budget.
        if rng.gen_bool(0.3) {
            faults.push(ChaosFault::Stragglers {
                count: rng.gen_range(1..=2usize),
            });
        }

        ChaosSchedule {
            master_seed: self.master_seed,
            case_index,
            n: self.n,
            wan,
            proposers,
            faults,
        }
    }
}

/// Greedily shrinks a failing schedule: scan the fault list, drop one fault, re-run
/// via `fails`, and restart the scan from the shortened schedule whenever the failure
/// persists. Terminates when no single-fault removal still fails — a 1-minimal
/// schedule. Deterministic because the scan order and the runner are.
pub fn shrink_schedule(
    schedule: &ChaosSchedule,
    mut fails: impl FnMut(&ChaosSchedule) -> bool,
) -> ChaosSchedule {
    let mut current = schedule.clone();
    loop {
        let mut shrunk = false;
        for index in 0..current.faults.len() {
            let mut candidate = current.clone();
            candidate.faults.remove(index);
            if fails(&candidate) {
                current = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

/// Knobs of the `chaos` experiment, settable from the CLI
/// (`--schedules`, `--chaos-seed`, `--chaos-case`).
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Number of generated schedules per scale.
    pub schedules: usize,
    /// Master seed of the schedule stream.
    pub seed: u64,
    /// Run exactly this one case instead of `0..schedules` (the reproducer path).
    pub case: Option<usize>,
    /// Replica counts to fuzz at.
    pub scales: Vec<usize>,
}

impl ChaosOptions {
    /// The CI `chaossmoke` profile: 25 schedules at n = 16.
    pub fn quick() -> Self {
        Self {
            schedules: 25,
            seed: 7,
            case: None,
            scales: vec![16],
        }
    }

    /// The full acceptance profile: 200 schedules at each of n ∈ {16, 32, 64}.
    pub fn full() -> Self {
        Self {
            schedules: 200,
            seed: 7,
            case: None,
            scales: vec![16, 32, 64],
        }
    }
}

/// CLI overrides for [`ChaosOptions`], parsed by the `experiments` binary and applied
/// on top of the profile the experiment id selects.
#[derive(Debug, Clone, Default)]
pub struct ChaosOverrides {
    /// Overrides [`ChaosOptions::schedules`].
    pub schedules: Option<usize>,
    /// Overrides [`ChaosOptions::seed`].
    pub seed: Option<u64>,
    /// Sets [`ChaosOptions::case`].
    pub case: Option<usize>,
}

impl ChaosOverrides {
    /// Applies the overrides to a profile.
    pub fn apply(&self, mut options: ChaosOptions) -> ChaosOptions {
        if let Some(schedules) = self.schedules {
            options.schedules = schedules;
        }
        if let Some(seed) = self.seed {
            options.seed = seed;
        }
        if self.case.is_some() {
            options.case = self.case;
        }
        options
    }
}

/// Column set of the chaos table. The `clean (1=ok)` column is the CI hook: it reads
/// `1` only when every schedule at that scale passed all four invariant families, so
/// `--require-nonzero clean` fails the build on any violation.
pub const CHAOS_HEADERS: &[&str] = &[
    "n",
    "schedules",
    "clean (1=ok)",
    "violations",
    "worst views",
    "worst views/disturbance",
    "min confirmed",
    "schedules/sec",
];

/// The `chaos` experiment: run every generated schedule through the unchecked runner
/// and the invariant checker, one row per scale. Any violating case is shrunk to a
/// 1-minimal schedule and printed with its one-line reproducer.
pub fn chaos_experiment(options: &ChaosOptions) -> Table {
    let mut table = Table::new(
        "Chaos — seeded fault-schedule fuzzing over the invariant checker",
        CHAOS_HEADERS,
    );
    for &n in &options.scales {
        let generator = FaultScheduleGenerator::new(n, options.seed);
        let cases: Vec<usize> = match options.case {
            Some(case) => vec![case],
            None => (0..options.schedules).collect(),
        };
        let started = Instant::now();
        let mut violating = 0usize;
        let mut worst_views = 0u64;
        let mut worst_views_per_disturbance = 0u64;
        let mut min_confirmed = u64::MAX;
        for &case in &cases {
            let schedule = generator.schedule(case);
            let report = run_schedule(&schedule);
            worst_views = worst_views.max(report.views_entered);
            worst_views_per_disturbance =
                worst_views_per_disturbance.max(report.max_views_per_disturbance);
            min_confirmed = min_confirmed.min(report.confirmed_requests);
            if !report.violations.is_empty() {
                violating += 1;
                report_violating_case(&schedule, &report);
            }
        }
        let elapsed = started.elapsed().as_secs_f64().max(1e-9);
        table.push_row(vec![
            n.to_string(),
            cases.len().to_string(),
            usize::from(violating == 0).to_string(),
            violating.to_string(),
            worst_views.to_string(),
            worst_views_per_disturbance.to_string(),
            if min_confirmed == u64::MAX {
                0
            } else {
                min_confirmed
            }
            .to_string(),
            format!("{:.2}", cases.len() as f64 / elapsed),
        ]);
    }
    table
}

/// Prints a violating case's verdicts, shrinks it to a 1-minimal schedule, and emits
/// the deterministic reproducer line.
fn report_violating_case(schedule: &ChaosSchedule, report: &ScenarioReport) {
    println!(
        "chaos: seed {} case {} (n = {}) VIOLATED invariants:",
        schedule.master_seed, schedule.case_index, schedule.n
    );
    for violation in &report.violations {
        println!("  - {violation}");
    }
    let minimal = shrink_schedule(schedule, |candidate| {
        !run_schedule(candidate).violations.is_empty()
    });
    println!(
        "chaos: shrunk from {} to {} fault(s); minimal {}",
        schedule.faults.len(),
        minimal.faults.len(),
        minimal.describe()
    );
    println!("chaos: reproduce with: {}", reproducer(schedule.master_seed, schedule.case_index));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every generated schedule keeps the corrupt + crashed budget within f and ends
    /// every fault by GST, across a spread of seeds, cases and scales.
    #[test]
    fn generated_schedules_are_valid() {
        for &n in &[4usize, 16, 32] {
            let f = (n - 1) / 3;
            for seed in 0..4u64 {
                let generator = FaultScheduleGenerator::new(n, seed);
                for case in 0..25 {
                    let schedule = generator.schedule(case);
                    assert!(
                        schedule.max_corrupt_and_crashed() <= f,
                        "seed {seed} case {case} n {n}: corrupt+crashed budget exceeded: {}",
                        schedule.describe()
                    );
                    assert!(
                        schedule.last_fault_end() <= ChaosSchedule::gst(),
                        "seed {seed} case {case} n {n}: fault past GST: {}",
                        schedule.describe()
                    );
                    // Byzantine and crash nodes are distinct and in range.
                    let mut seen = std::collections::HashSet::new();
                    for fault in &schedule.faults {
                        match fault {
                            ChaosFault::Byzantine { node, .. }
                            | ChaosFault::CrashRestart { node, .. } => {
                                assert!((node.0 as usize) < n);
                                assert!(seen.insert(node.0), "node {} drawn twice", node.0);
                            }
                            ChaosFault::Partition {
                                region_a, region_b, ..
                            } => {
                                assert!(schedule.wan, "partition without WAN topology");
                                assert!(region_a < region_b);
                                assert!(*region_b < FIG9GEO_REGIONS.len());
                            }
                            ChaosFault::Stragglers { count } => {
                                assert!((1..=2).contains(count));
                            }
                        }
                    }
                }
            }
        }
    }

    /// The same (n, seed, case) triple always regenerates the identical schedule —
    /// the property the one-line reproducer relies on.
    #[test]
    fn schedules_are_deterministic_per_seed_and_case() {
        let a = FaultScheduleGenerator::new(16, 7).schedule(13);
        let b = FaultScheduleGenerator::new(16, 7).schedule(13);
        assert_eq!(a, b);
        let other_seed = FaultScheduleGenerator::new(16, 8).schedule(13);
        let other_case = FaultScheduleGenerator::new(16, 7).schedule(14);
        assert!(a != other_seed || a != other_case, "stream should vary");
    }

    /// The schedule stream exercises the recovery-plane Byzantine roles: across a
    /// modest prefix of cases, all three PR 7 attacker variants show up.
    #[test]
    fn generator_draws_recovery_plane_attackers() {
        let generator = FaultScheduleGenerator::new(16, 7);
        let mut lying = false;
        let mut equivocating = false;
        let mut silent = false;
        for case in 0..200 {
            for fault in &generator.schedule(case).faults {
                if let ChaosFault::Byzantine { behaviour, .. } = fault {
                    lying |= behaviour.lies_in_state_transfer();
                    equivocating |= behaviour.equivocates_checkpoints();
                    silent |= behaviour.silent_in_state_transfer();
                }
            }
        }
        assert!(lying, "no LyingStateResponder drawn in 200 cases");
        assert!(equivocating, "no EquivocatingCheckpointer drawn in 200 cases");
        assert!(silent, "no SilentStateResponder drawn in 200 cases");
    }

    /// The schedule stream exercises the multi-proposer plane, including faulty
    /// replicas landing on the initial view's proposer slots.
    #[test]
    fn generator_draws_multi_proposer_schedules_with_faulty_proposers() {
        let generator = FaultScheduleGenerator::new(16, 7);
        let mut multi = 0usize;
        let mut faulty_proposer = false;
        for case in 0..200 {
            let schedule = generator.schedule(case);
            assert!(schedule.proposers >= 1 && schedule.proposers <= 16 / 4);
            if schedule.proposers > 1 {
                multi += 1;
                for fault in &schedule.faults {
                    if let ChaosFault::Byzantine { node, .. } | ChaosFault::CrashRestart { node, .. } =
                        fault
                    {
                        // Initial view's proposer slots are (1 + j) mod n, j < p.
                        let offset = (node.0 + 16 - 1) % 16;
                        faulty_proposer |= (offset as usize) < schedule.proposers;
                    }
                }
            }
        }
        assert!(multi >= 50, "only {multi}/200 schedules drew multiple proposers");
        assert!(faulty_proposer, "no Byzantine/crashed replica landed on a proposer slot in 200 cases");
    }

    /// `to_config` maps every fault onto the scenario builder and arms the liveness
    /// bound, thrash bound and progress-timeout override.
    #[test]
    fn to_config_expands_faults() {
        let schedule = ChaosSchedule {
            master_seed: 3,
            case_index: 0,
            n: 16,
            wan: true,
            proposers: 2,
            faults: vec![
                ChaosFault::Byzantine {
                    node: NodeId(5),
                    behaviour: ByzantineBehavior::LyingStateResponder,
                },
                ChaosFault::CrashRestart {
                    node: NodeId(6),
                    at: SimDuration::from_millis(500),
                    until: SimDuration::from_millis(900),
                },
                ChaosFault::Partition {
                    region_a: 0,
                    region_b: 2,
                    from: SimDuration::from_millis(700),
                    until: SimDuration::from_millis(1_000),
                },
                ChaosFault::Stragglers { count: 2 },
            ],
        };
        let config = schedule.to_config();
        assert_eq!(config.n, 16);
        assert_eq!(config.proposers, 2);
        assert_eq!(config.byzantine.len(), 1);
        assert_eq!(config.crash_restarts.len(), 1);
        assert_eq!(config.partitions.len(), 1);
        assert_eq!(config.straggler_count(), 2);
        assert!(config.topology.is_some());
        assert_eq!(config.liveness_bound, Some(ChaosSchedule::gst()));
        // WAN schedules get the 1 s timeout; the 400 ms setting is LAN-only.
        assert_eq!(config.progress_timeout, Some(SimDuration::from_millis(1_000)));
        assert_eq!(
            config.quiet_after(),
            SimTime::ZERO + SimDuration::from_millis(1_000)
        );
        // 1 byz + 1 crash + 1 partition window = 3 disturbances.
        assert_eq!(config.disturbance_count(), 3);
        assert_eq!(config.effective_view_thrash_bound(), 16);
    }

    /// The shrinker finds a 1-minimal schedule: with a failure predicate that needs
    /// both the crash and the partition (but not the other faults), exactly those two
    /// survive, in the original order.
    #[test]
    fn shrinker_reaches_one_minimal_schedule() {
        let schedule = ChaosSchedule {
            master_seed: 1,
            case_index: 2,
            n: 16,
            wan: true,
            proposers: 1,
            faults: vec![
                ChaosFault::Stragglers { count: 1 },
                ChaosFault::CrashRestart {
                    node: NodeId(3),
                    at: SimDuration::from_millis(500),
                    until: SimDuration::from_millis(900),
                },
                ChaosFault::Byzantine {
                    node: NodeId(4),
                    behaviour: ByzantineBehavior::SilentStateResponder,
                },
                ChaosFault::Partition {
                    region_a: 1,
                    region_b: 3,
                    from: SimDuration::from_millis(600),
                    until: SimDuration::from_millis(800),
                },
            ],
        };
        let mut runs = 0usize;
        let minimal = shrink_schedule(&schedule, |candidate| {
            runs += 1;
            let crash = candidate
                .faults
                .iter()
                .any(|fault| matches!(fault, ChaosFault::CrashRestart { .. }));
            let partition = candidate
                .faults
                .iter()
                .any(|fault| matches!(fault, ChaosFault::Partition { .. }));
            crash && partition
        });
        assert_eq!(minimal.faults.len(), 2);
        assert!(matches!(minimal.faults[0], ChaosFault::CrashRestart { .. }));
        assert!(matches!(minimal.faults[1], ChaosFault::Partition { .. }));
        assert!(runs > 0);
        // The seed pair survives shrinking, so the reproducer stays valid.
        assert_eq!(minimal.master_seed, 1);
        assert_eq!(minimal.case_index, 2);
    }

    /// The reproducer line round-trips the seed pair in the documented CLI syntax.
    #[test]
    fn reproducer_line_carries_seed_and_case() {
        let line = reproducer(7, 42);
        assert!(line.contains("chaos --chaos-seed 7 --chaos-case 42"), "{line}");
        assert!(line.starts_with("cargo run -p leopard-bench"), "{line}");
    }

    /// Overrides apply on top of a profile without clobbering unset fields.
    #[test]
    fn overrides_apply_on_top_of_profile() {
        let overrides = ChaosOverrides {
            schedules: Some(3),
            seed: None,
            case: Some(9),
        };
        let options = overrides.apply(ChaosOptions::quick());
        assert_eq!(options.schedules, 3);
        assert_eq!(options.seed, 7);
        assert_eq!(options.case, Some(9));
        assert_eq!(options.scales, vec![16]);
    }
}

