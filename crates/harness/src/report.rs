//! Plain-text table rendering and CSV output.
//!
//! Kept dependency-free on purpose (the approved crate set contains no serialisation
//! helper for CSV/JSON); the experiment binary writes these tables to stdout and to
//! `target/experiments/<id>.csv`.

use std::fmt::Write as _;
use std::path::Path;

/// A simple named table: one header row plus data rows of strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (e.g. `"Fig. 9 — throughput vs n"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row has exactly `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header length.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row length must match header length"
        );
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, width) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:width$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", render_row(&self.headers, &widths));
        let mut separator = String::from("|");
        for width in &widths {
            let _ = write!(separator, "{}|", "-".repeat(width + 2));
        }
        let _ = writeln!(out, "{separator}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `directory/<file_stem>.csv`, creating the directory
    /// if needed.
    ///
    /// # Errors
    ///
    /// Propagates IO errors from creating the directory or writing the file.
    pub fn write_csv(&self, directory: &Path, file_stem: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(directory)?;
        let path = directory.join(format!("{file_stem}.csv"));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Renders the table as a JSON object `{"title", "headers", "rows"}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"title\":{},\"headers\":[", json_string(&self.title));
        let _ = write!(
            out,
            "{}",
            self.headers.iter().map(|h| json_string(h)).collect::<Vec<_>>().join(",")
        );
        let _ = write!(out, "],\"rows\":[");
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                format!(
                    "[{}]",
                    row.iter().map(|c| json_string(c)).collect::<Vec<_>>().join(",")
                )
            })
            .collect();
        let _ = write!(out, "{}]}}", rows.join(","));
        out
    }
}

/// Escapes a string as a JSON string literal (dependency-free; the approved crate set
/// contains no JSON serialiser).
pub fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One entry of the machine-readable benchmark trajectory written by the `experiments`
/// binary's `--bench-json` flag.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Experiment id (e.g. `"fig9"`).
    pub id: String,
    /// Wall-clock seconds the experiment took to run.
    pub wall_clock_secs: f64,
    /// Simulation events executed per wall-clock second over this experiment — the
    /// engine-speed figure (as opposed to the protocol-throughput columns inside the
    /// table). `0.0` when the experiment ran no simulation (the analytical tables).
    pub events_per_sec: f64,
    /// The process's peak resident set (bytes) observed after this experiment. The
    /// kernel's high-water mark is monotone over the process lifetime, so this is
    /// "the largest the suite had grown by the end of this experiment", not a
    /// per-experiment delta.
    pub peak_memory_bytes: u64,
    /// The result table (throughput columns included).
    pub table: Table,
}

/// Renders a benchmark run (profile + per-experiment wall clock, engine events/sec,
/// peak RSS and tables) as the `BENCH_*.json` trajectory document
/// (schema `leopard-bench/v2`; v1 lacked the two engine-speed fields).
pub fn bench_records_to_json(profile: &str, records: &[BenchRecord]) -> String {
    let total: f64 = records.iter().map(|r| r.wall_clock_secs).sum();
    let entries: Vec<String> = records
        .iter()
        .map(|record| {
            format!(
                "    {{\"id\":{},\"wall_clock_secs\":{:.3},\"events_per_sec\":{:.0},\"peak_memory_bytes\":{},\"table\":{}}}",
                json_string(&record.id),
                record.wall_clock_secs,
                record.events_per_sec,
                record.peak_memory_bytes,
                record.table.to_json()
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"leopard-bench/v2\",\n  \"profile\": {},\n  \"total_wall_clock_secs\": {:.3},\n  \"experiments\": [\n{}\n  ]\n}}\n",
        json_string(profile),
        total,
        entries.join(",\n")
    )
}

/// The process's peak resident set size in bytes (`VmHWM` from `/proc/self/status`).
/// Monotone over the process lifetime. Returns 0 where procfs is unavailable
/// (non-Linux), so callers can gate on a zero rather than an `Option`.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Formats a requests-per-second figure the way the paper's plots label it (Kreqs/sec).
pub fn format_kreqs(rps: f64) -> String {
    format!("{:.1}", rps / 1_000.0)
}

/// Formats a bits-per-second figure in Mbps.
pub fn format_mbps(bps: f64) -> String {
    format!("{:.1}", bps / 1_000_000.0)
}

/// Formats a byte count in KB.
pub fn format_kb(bytes: f64) -> String {
    format!("{:.1}", bytes / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_text_and_csv() {
        let mut table = Table::new("demo", &["n", "throughput"]);
        table.push_row(vec!["4".into(), "100.0".into()]);
        table.push_row(vec!["16".into(), "99.5".into()]);
        let text = table.to_text();
        assert!(text.contains("## demo"));
        assert!(text.contains("| 4 "));
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("n,throughput"));
    }

    #[test]
    fn csv_escapes_special_characters() {
        let mut table = Table::new("t", &["a"]);
        table.push_row(vec!["x,y".into()]);
        table.push_row(vec!["say \"hi\"".into()]);
        let csv = table.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_length_panics() {
        let mut table = Table::new("t", &["a", "b"]);
        table.push_row(vec!["only one".into()]);
    }

    #[test]
    fn csv_writing_creates_file() {
        let dir = std::env::temp_dir().join("leopard-harness-test");
        let mut table = Table::new("t", &["a"]);
        table.push_row(vec!["1".into()]);
        let path = table.write_csv(&dir, "unit").unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn formatters() {
        assert_eq!(format_kreqs(125_000.0), "125.0");
        assert_eq!(format_mbps(20_000_000.0), "20.0");
        assert_eq!(format_kb(2048.0), "2.0");
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn bench_json_document_shape() {
        let mut table = Table::new("demo", &["n", "throughput"]);
        table.push_row(vec!["4".into(), "100.0".into()]);
        let records = vec![BenchRecord {
            id: "fig9".into(),
            wall_clock_secs: 1.25,
            events_per_sec: 1_234_567.8,
            peak_memory_bytes: 42 * 1024 * 1024,
            table,
        }];
        let json = bench_records_to_json("quick", &records);
        assert!(json.contains("\"schema\": \"leopard-bench/v2\""));
        assert!(json.contains("\"profile\": \"quick\""));
        assert!(json.contains("\"id\":\"fig9\""));
        assert!(json.contains("\"wall_clock_secs\":1.250"));
        assert!(json.contains("\"events_per_sec\":1234568"));
        assert!(json.contains("\"peak_memory_bytes\":44040192"));
        assert!(json.contains("\"rows\":[[\"4\",\"100.0\"]]"));
        assert!(json.contains("\"total_wall_clock_secs\": 1.250"));
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            // A running test process has at least a page resident.
            assert!(rss > 4096, "peak RSS {rss}");
        }
    }
}
