//! The always-on invariant checker: every Leopard scenario run ends with a pure
//! check over a snapshot of the replicas' states, and any violation fails the run.
//!
//! Four invariant families are checked (see `DESIGN.md` §8):
//!
//! * **Safety** — no two honest replicas hold conflicting BFTblocks at the same
//!   serial number, ever. A fork here would mean the quorum intersection argument
//!   of the protocol was broken (or the implementation equivocated its own log).
//! * **Liveness** — after the system has quiesced (the last scheduled fault has
//!   fired, every partition has healed), every honest live replica keeps
//!   confirming requests; none may stall longer than a configurable bound.
//! * **Retrieval completeness** — every datablock linked by a confirmed BFTblock
//!   above a replica's low watermark is either already in that replica's pool or
//!   still recoverable from the pools of at least `f + 1` honest live replicas
//!   (the erasure-coded retrieval plane needs `f + 1` honest chunks to rebuild).
//! * **View-change thrash** — the number of views honest replicas burn through is
//!   bounded by the number of scheduled disturbances: a recovery that consumes
//!   views far in excess of the faults that provoked them is a view-change
//!   livelock even if requests eventually confirm.
//!
//! The checker is deliberately split into a *snapshot* (extracted from a live
//! [`Simulation`]) and a *pure* [`SystemSnapshot::check`] over it, so the
//! mutation tests below can seed known-bad states (a forked log, a permanent
//! stall, an unretrievable datablock) and prove the checker flags each one.

use leopard_core::LeopardReplica;
use leopard_crypto::Digest;
use leopard_simnet::{SimDuration, SimTime, Simulation};
use leopard_types::{FastSet, NodeId};
use std::fmt;

/// One invariant violation found by [`SystemSnapshot::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two honest replicas confirmed conflicting BFTblocks at the same serial.
    SafetyFork {
        /// The serial number both replicas hold a block for.
        seq: u64,
        /// The first replica of the conflicting pair.
        node_a: NodeId,
        /// Digest of the block `node_a` holds at `seq`.
        digest_a: Digest,
        /// The second replica of the conflicting pair.
        node_b: NodeId,
        /// Digest of the block `node_b` holds at `seq`.
        digest_b: Digest,
    },
    /// An honest live replica stopped confirming requests for longer than the
    /// stall bound after the system quiesced.
    LivenessStall {
        /// The stalled replica.
        node: NodeId,
        /// Its last confirmation instant (or the quiesce instant if it never
        /// confirmed after the last fault).
        last_progress: SimTime,
        /// How long it had been stalled at the end of the run.
        stalled_for: SimDuration,
        /// The bound it exceeded.
        bound: SimDuration,
    },
    /// A datablock linked by a confirmed BFTblock is neither in the replica's own
    /// pool nor held by enough honest live replicas to be recoverable.
    UnretrievableDatablock {
        /// The replica that still needs the datablock.
        node: NodeId,
        /// Serial number of the BFTblock linking it.
        seq: u64,
        /// Digest of the missing datablock.
        link: Digest,
        /// How many honest live replicas hold it.
        holders: usize,
        /// How many are needed (`f + 1`).
        needed: usize,
    },
    /// Honest replicas consumed more views than the scheduled disturbances justify —
    /// a view-change livelock (thrash) rather than a recovery.
    ViewChangeThrash {
        /// The honest replica that reached the highest view.
        node: NodeId,
        /// Views it entered beyond the initial one.
        views_entered: u64,
        /// The bound it exceeded.
        bound: u64,
        /// The number of scheduled disturbances the bound was derived from.
        disturbances: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::SafetyFork {
                seq,
                node_a,
                digest_a,
                node_b,
                digest_b,
            } => write!(
                f,
                "safety fork at seq {seq}: node {} holds {digest_a}, node {} holds {digest_b}",
                node_a.0, node_b.0
            ),
            Violation::LivenessStall {
                node,
                last_progress,
                stalled_for,
                bound,
            } => write!(
                f,
                "liveness stall at node {}: no confirmation since {last_progress} \
                 ({stalled_for} > bound {bound})",
                node.0
            ),
            Violation::UnretrievableDatablock {
                node,
                seq,
                link,
                holders,
                needed,
            } => write!(
                f,
                "unretrievable datablock {link} (linked at seq {seq}): node {} lacks it and \
                 only {holders}/{needed} honest live replicas hold it",
                node.0
            ),
            Violation::ViewChangeThrash {
                node,
                views_entered,
                bound,
                disturbances,
            } => write!(
                f,
                "view-change thrash at node {}: {views_entered} views entered > bound {bound} \
                 for {disturbances} disturbance(s)",
                node.0
            ),
        }
    }
}

/// One replica's state distilled to what the invariants need.
#[derive(Debug, Clone)]
pub struct ReplicaSnapshot {
    /// The replica's identifier.
    pub node: NodeId,
    /// False for replicas configured with a Byzantine behaviour — their state is
    /// excluded from every invariant (a Byzantine log may say anything).
    pub honest: bool,
    /// False for replicas that are crashed at the end of the run.
    pub live: bool,
    /// The replica's stable checkpoint (entries at or below it may be pruned).
    pub low_watermark: u64,
    /// When the replica last confirmed requests, if ever.
    pub last_confirmation_at: Option<SimTime>,
    /// The view the replica ended the run in (views start at 1).
    pub view: u64,
    /// The confirmed log: `(seq, block digest, linked datablock digests)`.
    pub log: Vec<(u64, Digest, Vec<Digest>)>,
    /// Digests of the datablocks in the replica's pool.
    pub pool: FastSet<Digest>,
}

/// A checkable snapshot of the whole system at the end of a run.
#[derive(Debug, Clone)]
pub struct SystemSnapshot {
    /// Number of replicas.
    pub n: usize,
    /// The fault bound `f = ⌊(n − 1) / 3⌋`.
    pub f: usize,
    /// Simulated time at the end of the run.
    pub end_time: SimTime,
    /// The instant the last scheduled disturbance ended (crash instants, restart
    /// instants, partition heals). The liveness invariant only binds after this.
    pub quiet_after: SimTime,
    /// Longest tolerated confirmation stall after [`Self::quiet_after`].
    pub stall_bound: SimDuration,
    /// Number of scheduled disturbances (crash/restart windows, partition windows,
    /// Byzantine replicas, a leader crash) the run was configured with; recorded in
    /// any thrash violation so the bound is explicable.
    pub disturbances: usize,
    /// Most views honest replicas may enter beyond the initial one.
    pub view_thrash_bound: u64,
    /// Per-replica snapshots, indexed by node id.
    pub replicas: Vec<ReplicaSnapshot>,
}

impl SystemSnapshot {
    /// Extracts a snapshot from a finished (but not yet consumed) simulation.
    ///
    /// `quiet_after` should be the latest instant any scheduled fault acts (see
    /// [`crate::ScenarioConfig`]'s runner); `stall_bound` the longest tolerated
    /// post-quiesce confirmation gap.
    pub fn capture(
        sim: &Simulation<LeopardReplica>,
        n: usize,
        quiet_after: SimTime,
        stall_bound: SimDuration,
        disturbances: usize,
        view_thrash_bound: u64,
    ) -> Self {
        let end_time = sim.now();
        let f = (n - 1) / 3;
        let replicas = (0..n)
            .map(|i| {
                let node = NodeId(i as u32);
                let replica = sim.node(node);
                ReplicaSnapshot {
                    node,
                    honest: !replica.config().byzantine.is_byzantine(),
                    live: !sim.faults().is_crashed(node, end_time),
                    low_watermark: replica.low_watermark().0,
                    last_confirmation_at: replica.last_confirmation_at(),
                    view: replica.view().0,
                    log: replica
                        .log_entries()
                        .map(|(seq, block)| (seq.0, block.digest(), block.links.clone()))
                        .collect(),
                    pool: replica.pool().digests().copied().collect(),
                }
            })
            .collect();
        Self {
            n,
            f,
            end_time,
            quiet_after,
            stall_bound,
            disturbances,
            view_thrash_bound,
            replicas,
        }
    }

    /// Runs every invariant and returns the violations found (empty = all good).
    pub fn check(&self) -> Vec<Violation> {
        let mut violations = Vec::new();
        self.check_safety(&mut violations);
        self.check_liveness(&mut violations);
        self.check_retrieval(&mut violations);
        self.check_view_thrash(&mut violations);
        violations
    }

    fn honest_replicas(&self) -> impl Iterator<Item = &ReplicaSnapshot> + '_ {
        self.replicas.iter().filter(|r| r.honest)
    }

    /// Safety: for every serial number, all honest replicas that hold a confirmed
    /// block there committed the *same content* (the same linked datablocks).
    /// Crashed replicas are included — a crash must never un-confirm anything.
    fn check_safety(&self, violations: &mut Vec<Violation>) {
        use std::collections::HashMap;
        // seq -> first (node, digest, links) seen; every later holder must commit the
        // same *content* (linked datablocks). The block digest also covers the view
        // the block was proposed in, and a view change legitimately re-proposes the
        // surviving blocks under the new view — same links, different digest — so
        // comparing digests would flag every healthy re-proposal as a fork. Divergent
        // links (including a dummy block replacing a confirmed one) are the real
        // safety violation.
        let mut canonical: HashMap<u64, (NodeId, Digest, &[Digest])> = HashMap::new();
        let mut forked: FastSet<u64> = FastSet::default();
        for replica in self.honest_replicas() {
            for (seq, digest, links) in &replica.log {
                match canonical.get(seq) {
                    None => {
                        canonical.insert(*seq, (replica.node, *digest, links));
                    }
                    Some(&(node_a, digest_a, links_a)) => {
                        if links_a != links.as_slice() && forked.insert(*seq) {
                            violations.push(Violation::SafetyFork {
                                seq: *seq,
                                node_a,
                                digest_a,
                                node_b: replica.node,
                                digest_b: *digest,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Liveness: once the run outlasts `quiet_after` by more than the stall bound,
    /// every honest live replica's last confirmation must be within the bound of
    /// the end of the run.
    fn check_liveness(&self, violations: &mut Vec<Violation>) {
        if self.end_time.saturating_since(self.quiet_after) <= self.stall_bound {
            // The run ended too soon after the last disturbance to judge.
            return;
        }
        for replica in self.honest_replicas().filter(|r| r.live) {
            let last_progress = replica
                .last_confirmation_at
                .map_or(self.quiet_after, |at| at.max(self.quiet_after));
            let stalled_for = self.end_time.saturating_since(last_progress);
            if stalled_for > self.stall_bound {
                violations.push(Violation::LivenessStall {
                    node: replica.node,
                    last_progress,
                    stalled_for,
                    bound: self.stall_bound,
                });
            }
        }
    }

    /// Retrieval completeness: every datablock linked by a confirmed BFTblock above
    /// a replica's own low watermark (below it the link may be legitimately pruned)
    /// is in that replica's pool or held by ≥ `f + 1` honest live replicas.
    fn check_retrieval(&self, violations: &mut Vec<Violation>) {
        let needed = self.f + 1;
        for replica in self.honest_replicas().filter(|r| r.live) {
            for (seq, _, links) in &replica.log {
                if *seq <= replica.low_watermark {
                    continue;
                }
                for link in links {
                    if replica.pool.contains(link) {
                        continue;
                    }
                    let holders = self
                        .honest_replicas()
                        .filter(|r| r.live && r.pool.contains(link))
                        .count();
                    if holders < needed {
                        violations.push(Violation::UnretrievableDatablock {
                            node: replica.node,
                            seq: *seq,
                            link: *link,
                            holders,
                            needed,
                        });
                    }
                }
            }
        }
    }

    /// View-change thrash: no honest replica may end the run more than
    /// `view_thrash_bound` views past the initial one. Crashed honest replicas are
    /// included — their view is at most stale (too low), never spuriously high, so
    /// they can only under-report, not false-positive.
    fn check_view_thrash(&self, violations: &mut Vec<Violation>) {
        let Some(worst) = self.honest_replicas().max_by_key(|r| r.view) else {
            return;
        };
        let views_entered = worst.view.saturating_sub(1);
        if views_entered > self.view_thrash_bound {
            violations.push(Violation::ViewChangeThrash {
                node: worst.node,
                views_entered,
                bound: self.view_thrash_bound,
                disturbances: self.disturbances,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_crypto::hash_bytes;

    fn digest(tag: &str) -> Digest {
        hash_bytes(tag.as_bytes())
    }

    /// A healthy 4-replica system: identical logs, every link everywhere, fresh
    /// confirmations.
    fn healthy_snapshot() -> SystemSnapshot {
        let link_a = digest("link-a");
        let link_b = digest("link-b");
        let block_1 = digest("block-1");
        let block_2 = digest("block-2");
        let replicas = (0..4)
            .map(|i| ReplicaSnapshot {
                node: NodeId(i),
                honest: true,
                live: true,
                low_watermark: 0,
                last_confirmation_at: Some(SimTime(4_900_000_000)),
                view: 1,
                log: vec![(1, block_1, vec![link_a]), (2, block_2, vec![link_b])],
                pool: [link_a, link_b].into_iter().collect(),
            })
            .collect();
        SystemSnapshot {
            n: 4,
            f: 1,
            end_time: SimTime(5_000_000_000),
            quiet_after: SimTime(1_000_000_000),
            stall_bound: SimDuration::from_secs(2),
            disturbances: 1,
            view_thrash_bound: 8,
            replicas,
        }
    }

    #[test]
    fn healthy_snapshot_has_no_violations() {
        assert_eq!(healthy_snapshot().check(), Vec::new());
    }

    #[test]
    fn checker_flags_a_forked_log() {
        let mut snapshot = healthy_snapshot();
        // Mutation: replica 3 confirmed a different block at seq 2 — different
        // digest AND different committed content.
        snapshot.replicas[3].log[1].1 = digest("evil-block-2");
        snapshot.replicas[3].log[1].2 = vec![digest("evil-payload-2")];
        let violations = snapshot.check();
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::SafetyFork { seq: 2, node_b: NodeId(3), .. }
            )),
            "fork not flagged: {violations:?}"
        );
        // The same fork is reported once, not once per honest observer pair.
        let forks = violations
            .iter()
            .filter(|v| matches!(v, Violation::SafetyFork { .. }))
            .count();
        assert_eq!(forks, 1);
    }

    #[test]
    fn byzantine_logs_are_excluded_from_safety() {
        let mut snapshot = healthy_snapshot();
        snapshot.replicas[3].honest = false;
        snapshot.replicas[3].log[1].1 = digest("evil-block-2");
        assert_eq!(snapshot.check(), Vec::new());
    }

    #[test]
    fn checker_flags_a_permanent_stall() {
        let mut snapshot = healthy_snapshot();
        // Mutation: replica 2 stopped confirming right after the quiesce instant.
        snapshot.replicas[2].last_confirmation_at = Some(SimTime(1_100_000_000));
        let violations = snapshot.check();
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::LivenessStall { node: NodeId(2), .. }
            )),
            "stall not flagged: {violations:?}"
        );
    }

    #[test]
    fn never_confirming_after_quiesce_is_a_stall() {
        let mut snapshot = healthy_snapshot();
        snapshot.replicas[1].last_confirmation_at = None;
        let violations = snapshot.check();
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::LivenessStall { node: NodeId(1), .. })));
    }

    #[test]
    fn reproposed_blocks_with_identical_links_are_not_a_fork() {
        let mut snapshot = healthy_snapshot();
        // A view change re-proposed seq 2 under the new view at replica 3: the block
        // digest changes (it covers the view) but the committed content is identical.
        snapshot.replicas[3].log[1].1 = digest("block-2-view-2");
        assert_eq!(snapshot.check(), Vec::new());
    }

    #[test]
    fn liveness_is_not_judged_on_short_runs() {
        let mut snapshot = healthy_snapshot();
        snapshot.replicas[2].last_confirmation_at = None;
        // The run barely outlasts the last disturbance: no verdict.
        snapshot.quiet_after = SimTime(4_000_000_000);
        assert_eq!(snapshot.check(), Vec::new());
    }

    #[test]
    fn crashed_replicas_are_exempt_from_liveness_but_not_safety() {
        let mut snapshot = healthy_snapshot();
        snapshot.replicas[2].live = false;
        snapshot.replicas[2].last_confirmation_at = None;
        assert_eq!(snapshot.check(), Vec::new());
        // ... but its confirmed log still participates in the fork check.
        snapshot.replicas[2].log[0].1 = digest("evil-block-1");
        snapshot.replicas[2].log[0].2 = vec![digest("evil-payload-1")];
        assert!(snapshot
            .check()
            .iter()
            .any(|v| matches!(v, Violation::SafetyFork { seq: 1, .. })));
    }

    #[test]
    fn checker_flags_an_unretrievable_datablock() {
        let mut snapshot = healthy_snapshot();
        let lost = digest("link-b");
        // Mutation: the datablock behind seq 2 vanished from every pool.
        for replica in &mut snapshot.replicas {
            replica.pool.remove(&lost);
        }
        let violations = snapshot.check();
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::UnretrievableDatablock { seq: 2, holders: 0, needed: 2, .. }
            )),
            "lost datablock not flagged: {violations:?}"
        );
    }

    #[test]
    fn a_quorum_of_holders_keeps_a_missing_link_retrievable() {
        let mut snapshot = healthy_snapshot();
        let link = digest("link-b");
        // Replica 0 is missing the datablock, but f + 1 = 2 honest live peers hold it.
        snapshot.replicas[0].pool.remove(&link);
        snapshot.replicas[1].pool.remove(&link);
        assert_eq!(snapshot.check(), Vec::new());
        // One more loss drops the holder count below f + 1.
        snapshot.replicas[2].pool.remove(&link);
        assert!(!snapshot.check().is_empty());
    }

    #[test]
    fn pruned_entries_below_the_watermark_are_not_checked() {
        let mut snapshot = healthy_snapshot();
        let link = digest("link-a");
        for replica in &mut snapshot.replicas {
            replica.low_watermark = 1; // seq 1 checkpointed and pruned everywhere
            replica.pool.remove(&link);
        }
        assert_eq!(snapshot.check(), Vec::new());
    }

    #[test]
    fn checker_flags_view_change_thrash() {
        let mut snapshot = healthy_snapshot();
        // Mutation: replica 1 ended the run 42 views in — far more than the single
        // scheduled disturbance (bound 8) can explain.
        snapshot.replicas[1].view = 43;
        let violations = snapshot.check();
        assert!(
            violations.iter().any(|v| matches!(
                v,
                Violation::ViewChangeThrash {
                    node: NodeId(1),
                    views_entered: 42,
                    bound: 8,
                    disturbances: 1,
                }
            )),
            "thrash not flagged: {violations:?}"
        );
    }

    #[test]
    fn views_within_the_bound_are_not_thrash() {
        let mut snapshot = healthy_snapshot();
        for replica in &mut snapshot.replicas {
            replica.view = 9; // exactly bound views past the initial view
        }
        assert_eq!(snapshot.check(), Vec::new());
    }

    #[test]
    fn byzantine_views_are_excluded_from_thrash() {
        let mut snapshot = healthy_snapshot();
        snapshot.replicas[3].honest = false;
        snapshot.replicas[3].view = 1000; // a Byzantine replica may claim anything
        assert_eq!(snapshot.check(), Vec::new());
    }

    #[test]
    fn violations_render_readably() {
        let fork = Violation::SafetyFork {
            seq: 7,
            node_a: NodeId(0),
            digest_a: digest("a"),
            node_b: NodeId(1),
            digest_b: digest("b"),
        };
        assert!(fork.to_string().contains("safety fork at seq 7"));
        let stall = Violation::LivenessStall {
            node: NodeId(2),
            last_progress: SimTime(1_000_000_000),
            stalled_for: SimDuration::from_secs(3),
            bound: SimDuration::from_secs(2),
        };
        assert!(stall.to_string().contains("liveness stall at node 2"));
        let lost = Violation::UnretrievableDatablock {
            node: NodeId(3),
            seq: 9,
            link: digest("c"),
            holders: 1,
            needed: 2,
        };
        assert!(lost.to_string().contains("unretrievable datablock"));
        assert!(lost.to_string().contains("1/2"));
        let thrash = Violation::ViewChangeThrash {
            node: NodeId(1),
            views_entered: 40,
            bound: 8,
            disturbances: 1,
        };
        assert!(thrash.to_string().contains("view-change thrash at node 1"));
        assert!(thrash.to_string().contains("40 views entered > bound 8"));
    }
}
