//! The closed-form cost model of the paper: amortized communication complexity, scaling
//! factor and voting rounds (Table I), the scaling-factor formulas of §V-B, and the
//! per-region breakdown of geo-distributed runs.

use crate::report::Table;
use crate::scenario::ScenarioReport;
use leopard_types::ProtocolParams;

/// The protocols compared in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// PBFT (Castro & Liskov, 1999).
    Pbft,
    /// SBFT (Golan-Gueta et al., 2019).
    Sbft,
    /// HotStuff with pipelining (Yin et al., 2019).
    HotStuff,
    /// Leopard (this paper).
    Leopard,
}

impl Protocol {
    /// All protocols, in the order of the paper's Table I.
    pub fn all() -> [Protocol; 4] {
        [Protocol::Pbft, Protocol::Sbft, Protocol::HotStuff, Protocol::Leopard]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Pbft => "PBFT",
            Protocol::Sbft => "SBFT",
            Protocol::HotStuff => "HotStuff",
            Protocol::Leopard => "Leopard",
        }
    }
}

/// One row of Table I: amortized costs when the leader is honest and after GST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostRow {
    /// Which protocol.
    pub protocol: Protocol,
    /// Leader's amortized communication complexity (as a big-O string).
    pub leader_communication: &'static str,
    /// Non-leader replica's amortized communication complexity.
    pub non_leader_communication: &'static str,
    /// Scaling factor.
    pub scaling_factor: &'static str,
    /// Voting rounds in the optimistic case.
    pub voting_rounds_optimistic: u32,
    /// Voting rounds with `f` faulty non-leader replicas.
    pub voting_rounds_faulty: u32,
}

/// The rows of Table I.
pub fn table1_rows() -> Vec<CostRow> {
    vec![
        CostRow {
            protocol: Protocol::Pbft,
            leader_communication: "O(n)",
            non_leader_communication: "O(1)",
            scaling_factor: "O(n)",
            voting_rounds_optimistic: 2,
            voting_rounds_faulty: 2,
        },
        CostRow {
            protocol: Protocol::Sbft,
            leader_communication: "O(n)",
            non_leader_communication: "O(1)",
            scaling_factor: "O(n)",
            voting_rounds_optimistic: 1,
            voting_rounds_faulty: 2,
        },
        CostRow {
            protocol: Protocol::HotStuff,
            leader_communication: "O(n)",
            non_leader_communication: "O(1)",
            scaling_factor: "O(n)",
            voting_rounds_optimistic: 1,
            voting_rounds_faulty: 1,
        },
        CostRow {
            protocol: Protocol::Leopard,
            leader_communication: "O(1)",
            non_leader_communication: "O(1)",
            scaling_factor: "O(1)",
            voting_rounds_optimistic: 2,
            voting_rounds_faulty: 3,
        },
    ]
}

/// Renders Table I, appending the *numerical* scaling factor predicted by the closed
/// forms of §V-B for the given scale so the asymptotic claim can be eyeballed.
pub fn table1(n: usize) -> Table {
    let params = ProtocolParams::paper_defaults(n);
    let mut table = Table::new(
        format!("Table I — amortized cost when the leader is honest and after GST (numeric column computed for n = {n})"),
        &[
            "protocol",
            "leader comm.",
            "non-leader comm.",
            "scaling factor",
            "votes (optimistic)",
            "votes (faulty)",
            &format!("SF at n={n}"),
        ],
    );
    for row in table1_rows() {
        let numeric = match row.protocol {
            Protocol::Leopard => params.leopard_scaling_factor(),
            _ => params.leader_based_scaling_factor(),
        };
        table.push_row(vec![
            row.protocol.name().to_string(),
            row.leader_communication.to_string(),
            row.non_leader_communication.to_string(),
            row.scaling_factor.to_string(),
            row.voting_rounds_optimistic.to_string(),
            row.voting_rounds_faulty.to_string(),
            format!("{numeric:.2}"),
        ]);
    }
    table
}

/// Per-region throughput and latency of a geo-distributed run: one row per region of
/// the scenario's topology, plus a whole-system row. Empty-bodied (headers only) when
/// the report has no per-region stats (flat scenarios).
pub fn region_breakdown(report: &ScenarioReport) -> Table {
    let mut table = Table::new(
        format!(
            "Per-region breakdown — {} at n = {}",
            report.protocol, report.n
        ),
        &[
            "region",
            "replicas",
            "throughput (Kreqs/s)",
            "avg latency (ms)",
            "latency samples",
        ],
    );
    let fmt_latency = |secs: Option<f64>| {
        secs.map(|s| format!("{:.1}", s * 1000.0))
            .unwrap_or_else(|| "-".to_string())
    };
    for region in &report.regions {
        table.push_row(vec![
            region.name.clone(),
            region.nodes.to_string(),
            format!("{:.2}", region.throughput_kreqs()),
            fmt_latency(region.average_latency_secs),
            region.latency_samples.to_string(),
        ]);
    }
    if !report.regions.is_empty() {
        table.push_row(vec![
            "(system)".to_string(),
            report.n.to_string(),
            format!("{:.2}", report.throughput_kreqs()),
            fmt_latency(report.average_latency_secs),
            report.sim.metrics.latency_histogram.total().to_string(),
        ]);
    }
    table
}

/// Leader communication cost in bytes for confirming `requests` requests, following the
/// closed form (2) of §V-B.
pub fn leopard_leader_cost_bytes(params: &ProtocolParams, requests: u64) -> f64 {
    let beta = params.hash_size as f64;
    let kappa = params.vote_size as f64;
    let tau = params.bftblock_size as f64;
    let alpha = params.alpha_bytes() as f64;
    let n = params.n as f64;
    let payload = (requests * params.payload_size as u64) as f64;
    ((beta + 4.0 * kappa / tau) * (n - 1.0) / alpha + 1.0) * payload
}

/// Non-leader communication cost in bytes for confirming `requests` requests, following
/// the closed form (3) of §V-B.
pub fn leopard_replica_cost_bytes(params: &ProtocolParams, requests: u64) -> f64 {
    let beta = params.hash_size as f64;
    let kappa = params.vote_size as f64;
    let tau = params.bftblock_size as f64;
    let alpha = params.alpha_bytes() as f64;
    let payload = (requests * params.payload_size as u64) as f64;
    (2.0 + (beta + 4.0 * kappa / tau) / alpha) * payload
}

/// Leader communication cost in bytes in a leader-disseminates-payload protocol
/// (equation (1) of §I), for confirming `requests` requests.
pub fn leader_based_leader_cost_bytes(params: &ProtocolParams, requests: u64) -> f64 {
    let n = params.n as f64;
    let payload = (requests * params.payload_size as u64) as f64;
    payload * (n - 1.0)
}

/// Predicted throughput (requests/s) of Leopard under a per-replica capacity of
/// `capacity_bps` bits per second: `C / SF / payload`.
pub fn leopard_predicted_throughput(params: &ProtocolParams, capacity_bps: u64) -> f64 {
    capacity_bps as f64 / params.leopard_scaling_factor() / (params.payload_size as f64 * 8.0)
}

/// Predicted throughput (requests/s) of a leader-based protocol under a per-replica
/// capacity of `capacity_bps` bits per second.
pub fn leader_based_predicted_throughput(params: &ProtocolParams, capacity_bps: u64) -> f64 {
    capacity_bps as f64 / params.leader_based_scaling_factor() / (params.payload_size as f64 * 8.0)
}

/// The effectiveness-of-scaling-up ratio `Λ_b^Δ / C^Δ` of equation (4): how much of each
/// added bit per second of capacity turns into confirmed payload bits.
pub fn scaling_up_gamma(params: &ProtocolParams) -> f64 {
    1.0 / params.leopard_scaling_factor()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_the_paper_rows() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3].protocol, Protocol::Leopard);
        assert_eq!(rows[3].leader_communication, "O(1)");
        assert_eq!(rows[3].voting_rounds_faulty, 3);
        assert_eq!(rows[2].voting_rounds_optimistic, 1); // HotStuff pipelined
        let table = table1(300);
        assert_eq!(table.rows.len(), 4);
        assert_eq!(Protocol::all().len(), 4);
        assert_eq!(Protocol::Pbft.name(), "PBFT");
    }

    #[test]
    fn leader_cost_grows_linearly_only_for_leader_based() {
        let small = ProtocolParams::paper_defaults(32);
        let large = ProtocolParams::paper_defaults(320);
        let requests = 1_000_000;
        let leopard_growth = leopard_leader_cost_bytes(&large, requests)
            / leopard_leader_cost_bytes(&small, requests);
        let hotstuff_growth = leader_based_leader_cost_bytes(&large, requests)
            / leader_based_leader_cost_bytes(&small, requests);
        assert!(leopard_growth < 1.5, "leopard leader cost grew {leopard_growth}x");
        assert!(hotstuff_growth > 9.0, "hotstuff leader cost grew only {hotstuff_growth}x");
    }

    #[test]
    fn replica_cost_is_about_twice_the_payload() {
        let params = ProtocolParams::paper_defaults(300);
        let requests = 10_000;
        let payload = (requests * params.payload_size as u64) as f64;
        let cost = leopard_replica_cost_bytes(&params, requests);
        assert!(cost > 1.9 * payload && cost < 2.2 * payload);
    }

    #[test]
    fn predicted_throughput_matches_the_shape_of_fig9() {
        let capacity = 9_800_000_000u64;
        let leopard_small = leopard_predicted_throughput(&ProtocolParams::paper_defaults(32), capacity);
        let leopard_large = leopard_predicted_throughput(&ProtocolParams::paper_defaults(600), capacity);
        let hotstuff_small =
            leader_based_predicted_throughput(&ProtocolParams::paper_defaults(32), capacity);
        let hotstuff_large =
            leader_based_predicted_throughput(&ProtocolParams::paper_defaults(600), capacity);
        // Leopard barely moves; HotStuff collapses.
        assert!(leopard_large > 0.9 * leopard_small);
        assert!(hotstuff_large < 0.1 * hotstuff_small);
        // And at large scale Leopard wins by a wide margin.
        assert!(leopard_large > 5.0 * hotstuff_large);
    }

    #[test]
    fn gamma_approaches_one_half() {
        let gamma = scaling_up_gamma(&ProtocolParams::paper_defaults(600));
        assert!(gamma > 0.4 && gamma <= 0.55, "gamma = {gamma}");
    }

    #[test]
    fn region_breakdown_renders_one_row_per_region_plus_system() {
        use crate::scenario::{run_leopard_scenario, ScenarioConfig};
        use leopard_simnet::SimDuration;

        let config = ScenarioConfig::small(4)
            .with_wan_regions(&["us-east", "eu-west"])
            .with_duration(SimDuration::from_secs(3));
        let report = run_leopard_scenario(&config);
        let table = region_breakdown(&report);
        assert_eq!(table.rows.len(), 3); // us-east, eu-west, (system)
        assert_eq!(table.rows[0][0], "us-east");
        assert_eq!(table.rows[2][0], "(system)");

        // A flat run renders headers only.
        let flat = run_leopard_scenario(&ScenarioConfig::small(4));
        assert!(region_breakdown(&flat).rows.is_empty());
    }
}
