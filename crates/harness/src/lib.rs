//! Experiment harness: everything needed to regenerate the paper's tables and figures.
//!
//! * [`workload`] — workload descriptions shared by the two protocols;
//! * [`scenario`] — end-to-end scenario runners (`n` replicas, bandwidth, faults →
//!   throughput / latency / bandwidth report) for Leopard and HotStuff;
//! * [`invariants`] — the always-on invariant checker (safety, liveness, retrieval
//!   completeness, view-change thrash) every Leopard scenario run passes through;
//! * [`chaos`] — the chaos engine: a seeded generator of valid adversarial fault
//!   schedules, an auto-shrinker for violating seeds, and the `chaos` experiment
//!   that fuzzes the invariant checker with hundreds of schedules per scale;
//! * [`analysis`] — the closed-form cost model behind Table I and §V-B;
//! * [`report`] — plain-text table rendering and CSV output (no external dependencies);
//! * [`experiments`] — one function per table/figure of the evaluation section, each
//!   returning a [`report::Table`] whose rows mirror the paper's plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod chaos;
pub mod experiments;
pub mod invariants;
pub mod report;
pub mod scenario;
pub mod trajectory;
pub mod workload;

pub use chaos::{ChaosFault, ChaosOptions, ChaosSchedule, FaultScheduleGenerator};
pub use invariants::{SystemSnapshot, Violation};
pub use report::Table;
pub use scenario::{
    run_hotstuff_scenario, run_leopard_scenario, run_leopard_scenario_unchecked, ScenarioConfig,
    ScenarioReport,
};
pub use workload::WorkloadConfig;
