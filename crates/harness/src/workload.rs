//! Workload descriptions shared by the Leopard and HotStuff scenario runners.

/// An offered client workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Aggregate offered load in requests per second across the whole system.
    ///
    /// The paper stress-tests at a "saturated request rate"; in this reproduction the
    /// saturation point of the original Golang prototype (~1.3·10^5 requests/s, the peak
    /// of Fig. 9) is modelled as the offered load, so that Leopard's plateau sits at the
    /// same order of magnitude as the paper while HotStuff's bandwidth-bound collapse
    /// emerges from the simulated links. See `EXPERIMENTS.md` ("calibration").
    pub aggregate_rps: u64,
    /// Request payload size in bytes.
    pub payload_size: usize,
}

impl WorkloadConfig {
    /// The paper's default workload: 128-byte payloads at the measured saturation rate.
    pub fn paper_default() -> Self {
        Self {
            aggregate_rps: 130_000,
            payload_size: 128,
        }
    }

    /// The 1024-byte-payload variant used in Fig. 1.
    pub fn large_payload() -> Self {
        Self {
            aggregate_rps: 40_000,
            payload_size: 1024,
        }
    }

    /// A workload for quick tests.
    pub fn small() -> Self {
        Self {
            aggregate_rps: 2_000,
            payload_size: 128,
        }
    }

    /// Offered load expressed in payload bits per second.
    pub fn offered_bps(&self) -> u64 {
        self.aggregate_rps * self.payload_size as u64 * 8
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_bandwidth_math() {
        let workload = WorkloadConfig {
            aggregate_rps: 1_000,
            payload_size: 128,
        };
        assert_eq!(workload.offered_bps(), 1_024_000);
        assert_eq!(WorkloadConfig::default(), WorkloadConfig::paper_default());
        assert!(WorkloadConfig::large_payload().payload_size > WorkloadConfig::small().payload_size);
    }
}
