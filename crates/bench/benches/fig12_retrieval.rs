//! Bench for Fig. 12 / Table V: datablock retrieval cost under the selective attack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use leopard_bench::bench_scenario;
use leopard_harness::scenario::run_leopard_scenario;
use leopard_simnet::SimDuration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_retrieval");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for n in [4usize, 7] {
        group.bench_with_input(BenchmarkId::new("selective_attack", n), &n, |b, &n| {
            b.iter(|| {
                let config = bench_scenario(n)
                    .with_selective_attackers(1)
                    .with_duration(SimDuration::from_secs(2));
                run_leopard_scenario(&config).retrievals
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
