//! Bench for Fig. 7: Leopard throughput across BFTblock sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use leopard_bench::bench_scenario;
use leopard_harness::scenario::run_leopard_scenario;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_bftblock_size");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for bftblock in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("bftblock", bftblock), &bftblock, |b, &size| {
            b.iter(|| {
                run_leopard_scenario(&bench_scenario(8).with_batches(16, size)).confirmed_requests
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
