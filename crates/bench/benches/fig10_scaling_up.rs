//! Bench for Fig. 10: throughput under throttled per-replica bandwidth (scaling up).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use leopard_bench::bench_scenario;
use leopard_harness::scenario::{run_hotstuff_scenario, run_leopard_scenario};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_scaling_up");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for mbps in [20u64, 100] {
        group.bench_with_input(BenchmarkId::new("leopard", mbps), &mbps, |b, &mbps| {
            b.iter(|| {
                run_leopard_scenario(&bench_scenario(4).with_bandwidth_mbps(mbps)).confirmed_requests
            });
        });
        group.bench_with_input(BenchmarkId::new("hotstuff", mbps), &mbps, |b, &mbps| {
            b.iter(|| {
                run_hotstuff_scenario(&bench_scenario(4).with_bandwidth_mbps(mbps)).confirmed_requests
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
