//! Bench for Fig. 8: Leopard throughput across datablock sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use leopard_bench::bench_scenario;
use leopard_harness::scenario::run_leopard_scenario;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_datablock_size");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for datablock in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("datablock", datablock), &datablock, |b, &size| {
            b.iter(|| {
                run_leopard_scenario(&bench_scenario(8).with_batches(size, 8)).confirmed_requests
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
