//! Bench for Fig. 11: leader bandwidth usage in Leopard vs HotStuff.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use leopard_bench::bench_scenario;
use leopard_harness::scenario::{run_hotstuff_scenario, run_leopard_scenario};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_leader_bandwidth");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("leopard", n), &n, |b, &n| {
            b.iter(|| run_leopard_scenario(&bench_scenario(n)).leader_bandwidth_bps as u64);
        });
        group.bench_with_input(BenchmarkId::new("hotstuff", n), &n, |b, &n| {
            b.iter(|| run_hotstuff_scenario(&bench_scenario(n)).leader_bandwidth_bps as u64);
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
