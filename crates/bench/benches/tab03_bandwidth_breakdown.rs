//! Bench for Table III: per-category bandwidth utilisation breakdown of Leopard.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use leopard_bench::bench_scenario;
use leopard_harness::scenario::run_leopard_scenario;
use leopard_types::NodeId;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab03_bandwidth_breakdown");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("leader_datablock_receive_bytes", |b| {
        b.iter(|| {
            let report = run_leopard_scenario(&bench_scenario(8));
            report
                .sim
                .metrics
                .traffic
                .received_bytes_in(NodeId(1), "datablock")
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
