//! Bench for Fig. 2: HotStuff throughput and leader bandwidth as n grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use leopard_bench::bench_scenario;
use leopard_harness::scenario::run_hotstuff_scenario;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig02_leader_bottleneck");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("leader_bandwidth", n), &n, |b, &n| {
            b.iter(|| {
                let report = run_hotstuff_scenario(&bench_scenario(n));
                report.leader_bandwidth_bps as u64
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
