//! Bench for Fig. 13: view-change time and communication cost after a leader crash.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use leopard_bench::bench_scenario;
use leopard_harness::scenario::run_leopard_scenario;
use leopard_simnet::SimDuration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_view_change");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for n in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("leader_crash", n), &n, |b, &n| {
            b.iter(|| {
                let config = bench_scenario(n)
                    .with_leader_crash_at(SimDuration::from_millis(200))
                    .with_duration(SimDuration::from_secs(3));
                run_leopard_scenario(&config).view_changes
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
