//! Bench for Table IV: latency breakdown of Leopard across protocol stages.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use leopard_bench::bench_scenario;
use leopard_harness::scenario::run_leopard_scenario;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab04_latency_breakdown");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("stage_latency_samples", |b| {
        b.iter(|| {
            let report = run_leopard_scenario(&bench_scenario(8));
            (
                report.sim.metrics.custom_samples("latency_generation").len(),
                report.sim.metrics.custom_samples("latency_dissemination").len(),
                report.sim.metrics.custom_samples("latency_agreement").len(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
