//! Bench for Table I: the analytical cost model (scaling-factor closed forms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use leopard_harness::analysis;
use leopard_types::ProtocolParams;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab01_cost_model");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for n in [32usize, 300, 600] {
        group.bench_with_input(BenchmarkId::new("scaling_factors", n), &n, |b, &n| {
            b.iter(|| {
                let params = ProtocolParams::paper_defaults(n);
                (
                    params.leopard_scaling_factor(),
                    params.leader_based_scaling_factor(),
                    analysis::leopard_predicted_throughput(&params, 9_800_000_000),
                )
            });
        });
    }
    group.bench_function("table1_render", |b| b.iter(|| analysis::table1(300).to_text()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
