//! Bench for Fig. 1: HotStuff throughput at increasing scale (128 B vs 1024 B payloads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use leopard_bench::bench_hotstuff;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig01_prior_scalability");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("hotstuff", n), &n, |b, &n| {
            b.iter(|| bench_hotstuff(n));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
