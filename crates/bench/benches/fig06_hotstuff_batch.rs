//! Bench for Fig. 6: HotStuff throughput across batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use leopard_bench::bench_scenario;
use leopard_harness::scenario::run_hotstuff_scenario;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig06_hotstuff_batch");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.sample_size(10);
    for batch in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            b.iter(|| {
                run_hotstuff_scenario(&bench_scenario(8).with_hotstuff_batch(batch)).confirmed_requests
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
