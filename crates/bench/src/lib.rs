//! Shared helpers for the criterion benches and the `experiments` binary.
//!
//! Each bench under `benches/` corresponds to one table or figure of the paper and
//! exercises the same experiment code as `cargo run -p leopard-bench --bin experiments`,
//! just at bench-friendly (reduced) scales so `cargo bench --workspace` finishes in
//! minutes. The full-scale numbers reported in `EXPERIMENTS.md` come from the binary.

use leopard_harness::scenario::{run_hotstuff_scenario, run_leopard_scenario, ScenarioConfig};
use leopard_harness::workload::WorkloadConfig;
use leopard_simnet::SimDuration;

/// A bench-sized Leopard/HotStuff scenario: `n` replicas, a light workload and a short
/// virtual window, so one run takes milliseconds rather than seconds.
pub fn bench_scenario(n: usize) -> ScenarioConfig {
    ScenarioConfig::small(n)
        .with_duration(SimDuration::from_millis(500))
        .with_workload(WorkloadConfig {
            aggregate_rps: 4_000,
            payload_size: 128,
        })
}

/// Runs Leopard on a bench-sized scenario and returns confirmed requests (used as the
/// benched quantity so the optimiser cannot discard the run).
pub fn bench_leopard(n: usize) -> u64 {
    run_leopard_scenario(&bench_scenario(n)).confirmed_requests
}

/// Runs HotStuff on a bench-sized scenario and returns confirmed requests.
pub fn bench_hotstuff(n: usize) -> u64 {
    run_hotstuff_scenario(&bench_scenario(n)).confirmed_requests
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_helpers_confirm_requests() {
        assert!(bench_leopard(4) > 0);
        assert!(bench_hotstuff(4) > 0);
    }
}
