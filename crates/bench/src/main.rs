//! The `experiments` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p leopard-bench --release --bin experiments -- [--full] [<id>...]
//! ```
//!
//! With no ids every experiment runs. `--full` selects the paper-scale parameter sets
//! (slower); the default "quick" profile uses reduced scales suitable for a laptop.
//! Each table is printed to stdout and written to `target/experiments/<id>.csv`.

use leopard_harness::experiments::{run_experiment, EXPERIMENT_IDS};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let requested: Vec<String> = args.into_iter().filter(|a| a != "--full").collect();
    let ids: Vec<&str> = if requested.is_empty() {
        EXPERIMENT_IDS.to_vec()
    } else {
        requested.iter().map(String::as_str).collect()
    };

    let out_dir = PathBuf::from("target/experiments");
    let mut failures = 0usize;
    for id in ids {
        eprintln!("running experiment {id} ({}) ...", if full { "full" } else { "quick" });
        match run_experiment(id, !full) {
            Some(table) => {
                println!("{}", table.to_text());
                match table.write_csv(&out_dir, id) {
                    Ok(path) => eprintln!("  wrote {}", path.display()),
                    Err(error) => eprintln!("  could not write CSV: {error}"),
                }
            }
            None => {
                eprintln!("  unknown experiment id: {id}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
