//! The `experiments` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p leopard-bench --release --bin experiments -- \
//!     [--full] [--bench-json <path>] [<id>...]
//! ```
//!
//! With no ids every experiment runs. `--full` selects the paper-scale parameter sets
//! (slower); the default "quick" profile uses reduced scales suitable for a laptop.
//! Each table is printed to stdout and written to `target/experiments/<id>.csv`.
//!
//! `--bench-json <path>` additionally writes a machine-readable JSON document with the
//! wall-clock seconds and result table of every experiment run — the format of the
//! repo's `BENCH_*.json` performance trajectory (see `EXPERIMENTS.md`).
//!
//! `--require-nonzero <substr>` makes the binary exit non-zero if any cell in a column
//! whose header contains `<substr>` does not start with a positive number — the CI
//! guard that keeps the "Leopard confirms nothing at paper scale" collapse from
//! silently regressing (used with the `fig9smoke` experiment).
//!
//! `--schedules <N>`, `--chaos-seed <S>` and `--chaos-case <K>` tune the `chaos` /
//! `chaossmoke` experiments: schedule count and master seed of the fuzzed stream, or a
//! single case index — the one-line reproducer the chaos engine prints on a violation
//! (`chaos --chaos-seed S --chaos-case K`) uses the last two.
//!
//! `--max-wall-clock <secs>` makes the binary exit non-zero if the *total* wall clock
//! of the selected experiments exceeds the budget — the CI guard that keeps the quick
//! experiment suite inside its stated time budget (see `EXPERIMENTS.md`), so a
//! performance regression in the simulator or a protocol hot path fails the build
//! instead of quietly making every future benchmark run slower.
//!
//! `--parallel` runs every scenario on the parallel engine (same-instant event batches
//! on worker threads; see `DESIGN.md` §10). Results are bit-identical to the default
//! sequential engine — the flag is purely a wall-clock knob for large-`n` sweeps.

use leopard_harness::chaos::ChaosOverrides;
use leopard_harness::experiments::{run_experiment_with, EXPERIMENT_IDS};
use leopard_harness::report::{bench_records_to_json, peak_rss_bytes, BenchRecord};
use leopard_harness::scenario::set_default_parallel;
use leopard_simnet::global_events_processed;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let mut bench_json: Option<PathBuf> = None;
    let mut require_nonzero: Option<String> = None;
    let mut max_wall_clock: Option<f64> = None;
    let mut chaos = ChaosOverrides::default();
    let mut requested: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => {}
            "--parallel" => set_default_parallel(true),
            "--bench-json" => match iter.next() {
                Some(path) => bench_json = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--bench-json requires a path argument");
                    std::process::exit(2);
                }
            },
            "--require-nonzero" => match iter.next() {
                Some(substr) => require_nonzero = Some(substr),
                None => {
                    eprintln!("--require-nonzero requires a column-substring argument");
                    std::process::exit(2);
                }
            },
            "--max-wall-clock" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) => max_wall_clock = Some(secs),
                None => {
                    eprintln!("--max-wall-clock requires a seconds argument");
                    std::process::exit(2);
                }
            },
            "--schedules" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(count) => chaos.schedules = Some(count),
                None => {
                    eprintln!("--schedules requires a count argument");
                    std::process::exit(2);
                }
            },
            "--chaos-seed" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(seed) => chaos.seed = Some(seed),
                None => {
                    eprintln!("--chaos-seed requires a seed argument");
                    std::process::exit(2);
                }
            },
            "--chaos-case" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(case) => chaos.case = Some(case),
                None => {
                    eprintln!("--chaos-case requires a case-index argument");
                    std::process::exit(2);
                }
            },
            _ => requested.push(arg),
        }
    }
    let ids: Vec<&str> = if requested.is_empty() {
        EXPERIMENT_IDS.to_vec()
    } else {
        requested.iter().map(String::as_str).collect()
    };

    let out_dir = PathBuf::from("target/experiments");
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut failures = 0usize;
    for id in ids {
        eprintln!("running experiment {id} ({}) ...", if full { "full" } else { "quick" });
        let events_before = global_events_processed();
        let start = Instant::now();
        match run_experiment_with(id, !full, &chaos) {
            Some(table) => {
                let wall_clock_secs = start.elapsed().as_secs_f64();
                let events = global_events_processed() - events_before;
                let events_per_sec = if wall_clock_secs > 0.0 {
                    events as f64 / wall_clock_secs
                } else {
                    0.0
                };
                let peak_memory_bytes = peak_rss_bytes();
                println!("{}", table.to_text());
                if let Some(substr) = &require_nonzero {
                    failures += check_nonzero_columns(&table, substr);
                }
                match table.write_csv(&out_dir, id) {
                    Ok(path) => eprintln!("  wrote {}", path.display()),
                    Err(error) => eprintln!("  could not write CSV: {error}"),
                }
                eprintln!(
                    "  wall clock: {wall_clock_secs:.3}s ({:.2} Mev/s, peak RSS {} MB)",
                    events_per_sec / 1e6,
                    peak_memory_bytes / 1_000_000
                );
                records.push(BenchRecord {
                    id: id.to_string(),
                    wall_clock_secs,
                    events_per_sec,
                    peak_memory_bytes,
                    table,
                });
            }
            None => {
                eprintln!("  unknown experiment id: {id}");
                failures += 1;
            }
        }
    }
    let total_wall_clock: f64 = records.iter().map(|r| r.wall_clock_secs).sum();
    if let Some(budget) = max_wall_clock {
        if total_wall_clock > budget {
            eprintln!(
                "MAX-WALL-CLOCK FAILED: experiments took {total_wall_clock:.3}s, budget is {budget:.3}s"
            );
            failures += 1;
        } else {
            eprintln!("wall-clock budget ok: {total_wall_clock:.3}s <= {budget:.3}s");
        }
    }
    if let Some(path) = bench_json {
        let profile = if full { "full" } else { "quick" };
        let json = bench_records_to_json(profile, &records);
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote bench trajectory to {}", path.display()),
            Err(error) => {
                eprintln!("could not write bench JSON to {}: {error}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Counts cells that are not strictly positive in every column whose header contains
/// `substr`. Cells may carry a stall annotation (`"0.00 [AwaitingReady]"`); only the
/// leading number is parsed, so the diagnostics never hide a failure.
fn check_nonzero_columns(table: &leopard_harness::report::Table, substr: &str) -> usize {
    let mut failures = 0;
    for (column, header) in table.headers.iter().enumerate() {
        // Only numeric columns carry a unit in parentheses; this skips non-numeric
        // companions like "Leopard diagnostics" when matching on "Leopard".
        if !header.contains(substr) || !header.contains('(') {
            continue;
        }
        for row in &table.rows {
            let cell = &row[column];
            let value: f64 = cell
                .split_whitespace()
                .next()
                .and_then(|prefix| prefix.parse().ok())
                .unwrap_or(0.0);
            if value <= 0.0 {
                eprintln!("  REQUIRE-NONZERO FAILED: column {header:?} has cell {cell:?} (row n={})", row[0]);
                failures += 1;
            }
        }
    }
    failures
}
