//! The `experiments` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p leopard-bench --release --bin experiments -- \
//!     [--full] [--bench-json <path>] [<id>...]
//! ```
//!
//! With no ids every experiment runs. `--full` selects the paper-scale parameter sets
//! (slower); the default "quick" profile uses reduced scales suitable for a laptop.
//! Each table is printed to stdout and written to `target/experiments/<id>.csv`.
//!
//! `--bench-json <path>` additionally writes a machine-readable JSON document with the
//! wall-clock seconds and result table of every experiment run — the format of the
//! repo's `BENCH_*.json` performance trajectory (see `EXPERIMENTS.md`).
//!
//! `--require-nonzero <substr>` makes the binary exit non-zero if any cell in a column
//! whose header contains `<substr>` does not start with a positive number — the CI
//! guard that keeps the "Leopard confirms nothing at paper scale" collapse from
//! silently regressing (used with the `fig9smoke` experiment).
//!
//! `--schedules <N>`, `--chaos-seed <S>` and `--chaos-case <K>` tune the `chaos` /
//! `chaossmoke` experiments: schedule count and master seed of the fuzzed stream, or a
//! single case index — the one-line reproducer the chaos engine prints on a violation
//! (`chaos --chaos-seed S --chaos-case K`) uses the last two.
//!
//! `--max-wall-clock <secs>` makes the binary exit non-zero if the *total* wall clock
//! of the selected experiments exceeds the budget — the CI guard that keeps the quick
//! experiment suite inside its stated time budget (see `EXPERIMENTS.md`), so a
//! performance regression in the simulator or a protocol hot path fails the build
//! instead of quietly making every future benchmark run slower.
//!
//! `--parallel` runs every scenario on the parallel engine (shard-parallel rounds
//! under the conservative-lookahead horizon; see `DESIGN.md` §10). Results are
//! bit-identical to the default sequential engine — the flag is purely a wall-clock
//! knob for large-`n` sweeps on multi-core machines.
//!
//! `--ab-compare <N>` turns the run into a same-process A/B benchmark: each selected
//! experiment is run `N` times on the sequential engine and `N` times on the
//! parallel engine, **interleaved** (A B A B …) so slow drift in the machine's
//! background load lands on both sides equally, and the reported figure per side is
//! the *minimum* wall clock and minimum CPU time over its `N` runs — the standard
//! defence against scheduler noise (observed at ±13% on a busy 1-vCPU container;
//! see `EXPERIMENTS.md`). CPU time is read from `/proc/self/stat` (utime + stime
//! deltas around each run), so a parallel run that burns two cores to halve the
//! wall clock is visible as such. The tables and CSVs of the measured runs are not
//! written — `--ab-compare` prints one comparison table instead.
//!
//! `--min-events-per-sec <threshold>` makes the binary exit non-zero if any selected
//! experiment's engine events/sec figure lands below the threshold — the CI floor
//! that catches an engine-speed collapse (used with `fig9xlsmoke`; see the note in
//! `.github/workflows/ci.yml` for how the threshold was chosen). Use it only with
//! experiment ids that run a simulation: analytical tables report 0 events/sec and
//! would trip the floor by construction.
//!
//! `bench-trajectory` (a subcommand, not a flag) ignores every experiment id and
//! instead folds all `BENCH_PR*.json` documents in the current directory into
//! `BENCH_TRAJECTORY.md` — the per-PR table of quick-suite wall clock, engine
//! events/sec and peak RSS. Run it from the repo root after recording a new
//! `BENCH_PR*.json` (see `leopard_harness::trajectory`).

use leopard_harness::chaos::ChaosOverrides;
use leopard_harness::experiments::{run_experiment_with, EXPERIMENT_IDS};
use leopard_harness::report::{bench_records_to_json, peak_rss_bytes, BenchRecord};
use leopard_harness::scenario::set_default_parallel;
use leopard_harness::trajectory::{fold_document, render_trajectory};
use leopard_simnet::global_events_processed;
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let mut bench_json: Option<PathBuf> = None;
    let mut require_nonzero: Option<String> = None;
    let mut max_wall_clock: Option<f64> = None;
    let mut min_events_per_sec: Option<f64> = None;
    let mut ab_compare: Option<usize> = None;
    let mut chaos = ChaosOverrides::default();
    let mut requested: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => {}
            "--parallel" => set_default_parallel(true),
            "--bench-json" => match iter.next() {
                Some(path) => bench_json = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--bench-json requires a path argument");
                    std::process::exit(2);
                }
            },
            "--require-nonzero" => match iter.next() {
                Some(substr) => require_nonzero = Some(substr),
                None => {
                    eprintln!("--require-nonzero requires a column-substring argument");
                    std::process::exit(2);
                }
            },
            "--max-wall-clock" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(secs) => max_wall_clock = Some(secs),
                None => {
                    eprintln!("--max-wall-clock requires a seconds argument");
                    std::process::exit(2);
                }
            },
            "--min-events-per-sec" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(floor) => min_events_per_sec = Some(floor),
                None => {
                    eprintln!("--min-events-per-sec requires an events/sec argument");
                    std::process::exit(2);
                }
            },
            "--ab-compare" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(rounds) if rounds > 0 => ab_compare = Some(rounds),
                _ => {
                    eprintln!("--ab-compare requires a positive round-count argument");
                    std::process::exit(2);
                }
            },
            "--schedules" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(count) => chaos.schedules = Some(count),
                None => {
                    eprintln!("--schedules requires a count argument");
                    std::process::exit(2);
                }
            },
            "--chaos-seed" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(seed) => chaos.seed = Some(seed),
                None => {
                    eprintln!("--chaos-seed requires a seed argument");
                    std::process::exit(2);
                }
            },
            "--chaos-case" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(case) => chaos.case = Some(case),
                None => {
                    eprintln!("--chaos-case requires a case-index argument");
                    std::process::exit(2);
                }
            },
            _ => requested.push(arg),
        }
    }
    if requested.iter().any(|id| id == "bench-trajectory") {
        std::process::exit(write_bench_trajectory());
    }
    let ids: Vec<&str> = if requested.is_empty() {
        EXPERIMENT_IDS.to_vec()
    } else {
        requested.iter().map(String::as_str).collect()
    };
    if let Some(rounds) = ab_compare {
        std::process::exit(run_ab_compare(&ids, rounds, full, &chaos));
    }

    let out_dir = PathBuf::from("target/experiments");
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut failures = 0usize;
    for id in ids {
        eprintln!("running experiment {id} ({}) ...", if full { "full" } else { "quick" });
        let events_before = global_events_processed();
        let start = Instant::now();
        match run_experiment_with(id, !full, &chaos) {
            Some(table) => {
                let wall_clock_secs = start.elapsed().as_secs_f64();
                let events = global_events_processed() - events_before;
                let events_per_sec = if wall_clock_secs > 0.0 {
                    events as f64 / wall_clock_secs
                } else {
                    0.0
                };
                let peak_memory_bytes = peak_rss_bytes();
                println!("{}", table.to_text());
                if let Some(substr) = &require_nonzero {
                    failures += check_nonzero_columns(&table, substr);
                }
                match table.write_csv(&out_dir, id) {
                    Ok(path) => eprintln!("  wrote {}", path.display()),
                    Err(error) => eprintln!("  could not write CSV: {error}"),
                }
                eprintln!(
                    "  wall clock: {wall_clock_secs:.3}s ({:.2} Mev/s, peak RSS {} MB)",
                    events_per_sec / 1e6,
                    peak_memory_bytes / 1_000_000
                );
                if let Some(floor) = min_events_per_sec {
                    if events_per_sec < floor {
                        eprintln!(
                            "MIN-EVENTS-PER-SEC FAILED: {id} ran at {:.0} events/sec, floor is {:.0}",
                            events_per_sec, floor
                        );
                        failures += 1;
                    } else {
                        eprintln!(
                            "  events/sec floor ok: {:.0} >= {:.0}",
                            events_per_sec, floor
                        );
                    }
                }
                records.push(BenchRecord {
                    id: id.to_string(),
                    wall_clock_secs,
                    events_per_sec,
                    peak_memory_bytes,
                    table,
                });
            }
            None => {
                eprintln!("  unknown experiment id: {id}");
                failures += 1;
            }
        }
    }
    let total_wall_clock: f64 = records.iter().map(|r| r.wall_clock_secs).sum();
    if let Some(budget) = max_wall_clock {
        if total_wall_clock > budget {
            eprintln!(
                "MAX-WALL-CLOCK FAILED: experiments took {total_wall_clock:.3}s, budget is {budget:.3}s"
            );
            failures += 1;
        } else {
            eprintln!("wall-clock budget ok: {total_wall_clock:.3}s <= {budget:.3}s");
        }
    }
    if let Some(path) = bench_json {
        let profile = if full { "full" } else { "quick" };
        let json = bench_records_to_json(profile, &records);
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote bench trajectory to {}", path.display()),
            Err(error) => {
                eprintln!("could not write bench JSON to {}: {error}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Counts cells that are not strictly positive in every column whose header contains
/// `substr`. Cells may carry a stall annotation (`"0.00 [AwaitingReady]"`); only the
/// leading number is parsed, so the diagnostics never hide a failure.
fn check_nonzero_columns(table: &leopard_harness::report::Table, substr: &str) -> usize {
    let mut failures = 0;
    for (column, header) in table.headers.iter().enumerate() {
        // Only numeric columns carry a unit in parentheses; this skips non-numeric
        // companions like "Leopard diagnostics" when matching on "Leopard".
        if !header.contains(substr) || !header.contains('(') {
            continue;
        }
        for row in &table.rows {
            let cell = &row[column];
            let value: f64 = cell
                .split_whitespace()
                .next()
                .and_then(|prefix| prefix.parse().ok())
                .unwrap_or(0.0);
            if value <= 0.0 {
                eprintln!("  REQUIRE-NONZERO FAILED: column {header:?} has cell {cell:?} (row n={})", row[0]);
                failures += 1;
            }
        }
    }
    failures
}

/// Process CPU seconds so far (utime + stime from `/proc/self/stat`, at the
/// kernel's 100 Hz USER_HZ). Returns 0.0 where procfs is unavailable, which turns
/// the A/B CPU columns into zeros instead of failing the run.
fn cpu_seconds() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0.0;
    };
    // The comm field (2) is parenthesised and may itself contain spaces or parens;
    // everything after the *last* ')' is fields 3..=52, whitespace-separated, so
    // utime (field 14) and stime (15) are at post-paren indices 11 and 12.
    let Some((_, rest)) = stat.rsplit_once(')') else {
        return 0.0;
    };
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let ticks = |index: usize| fields.get(index).and_then(|f| f.parse::<u64>().ok()).unwrap_or(0);
    (ticks(11) + ticks(12)) as f64 / 100.0
}

/// `--ab-compare <rounds>`: interleaved sequential-vs-parallel engine benchmark over
/// the selected experiments (see the module docs). Returns the process exit code.
fn run_ab_compare(ids: &[&str], rounds: usize, full: bool, chaos: &ChaosOverrides) -> i32 {
    /// Per-side minima over the interleaved rounds.
    struct Side {
        label: &'static str,
        parallel: bool,
        min_wall: f64,
        min_cpu: f64,
        events: u64,
    }
    let mut failures = 0;
    let mut table = leopard_harness::report::Table::new(
        format!(
            "A/B engine comparison — min over {rounds} interleaved round(s) per side ({} profile)",
            if full { "full" } else { "quick" }
        ),
        &["experiment", "engine", "min wall (s)", "min CPU (s)", "events", "engine (Mev/s)", "wall speedup"],
    );
    for id in ids {
        let mut sides = [
            Side { label: "sequential", parallel: false, min_wall: f64::INFINITY, min_cpu: f64::INFINITY, events: 0 },
            Side { label: "parallel", parallel: true, min_wall: f64::INFINITY, min_cpu: f64::INFINITY, events: 0 },
        ];
        eprintln!("ab-compare {id}: {rounds} interleaved round(s) per engine ...");
        for round in 0..rounds {
            for side in sides.iter_mut() {
                set_default_parallel(side.parallel);
                let events_before = global_events_processed();
                let cpu_before = cpu_seconds();
                let start = Instant::now();
                let ran = run_experiment_with(id, !full, chaos).is_some();
                let wall = start.elapsed().as_secs_f64();
                let cpu = cpu_seconds() - cpu_before;
                let events = global_events_processed() - events_before;
                if !ran {
                    eprintln!("  unknown experiment id: {id}");
                    failures += 1;
                    break;
                }
                side.min_wall = side.min_wall.min(wall);
                side.min_cpu = side.min_cpu.min(cpu);
                side.events = events;
                eprintln!(
                    "  round {}/{} {}: wall {wall:.3}s cpu {cpu:.3}s ({} events)",
                    round + 1, rounds, side.label, events
                );
            }
        }
        set_default_parallel(false);
        if sides.iter().any(|s| s.min_wall.is_infinite()) {
            continue; // unknown id, already counted
        }
        if sides[0].events != sides[1].events {
            eprintln!(
                "AB-COMPARE FAILED: {id} event counts diverged ({} sequential vs {} parallel) — engines are not equivalent",
                sides[0].events, sides[1].events
            );
            failures += 1;
        }
        let sequential_wall = sides[0].min_wall;
        for side in &sides {
            table.push_row(vec![
                id.to_string(),
                side.label.to_string(),
                format!("{:.3}", side.min_wall),
                format!("{:.3}", side.min_cpu),
                side.events.to_string(),
                format!("{:.2}", side.events as f64 / side.min_wall / 1e6),
                format!("{:.2}x", sequential_wall / side.min_wall),
            ]);
        }
    }
    println!("{}", table.to_text());
    if failures > 0 {
        1
    } else {
        0
    }
}

/// The `bench-trajectory` subcommand: folds every `BENCH_PR*.json` in the current
/// directory into `BENCH_TRAJECTORY.md`. Returns the process exit code.
fn write_bench_trajectory() -> i32 {
    let mut rows = Vec::new();
    let mut failures = 0;
    let mut names: Vec<String> = match std::fs::read_dir(".") {
        Ok(entries) => entries
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| entry.file_name().into_string().ok())
            .filter(|name| name.starts_with("BENCH_PR") && name.ends_with(".json"))
            .collect(),
        Err(error) => {
            eprintln!("could not scan the current directory: {error}");
            return 1;
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!("no BENCH_PR*.json files here — run from the repo root");
        return 1;
    }
    for name in &names {
        match std::fs::read_to_string(name).map_err(|e| e.to_string()).and_then(|content| fold_document(name, &content)) {
            Ok(row) => rows.push(row),
            Err(error) => {
                eprintln!("skipping {name}: {error}");
                failures += 1;
            }
        }
    }
    let folded = rows.len();
    let markdown = render_trajectory(rows);
    match std::fs::write("BENCH_TRAJECTORY.md", &markdown) {
        Ok(()) => eprintln!("wrote BENCH_TRAJECTORY.md ({folded} documents folded)"),
        Err(error) => {
            eprintln!("could not write BENCH_TRAJECTORY.md: {error}");
            failures += 1;
        }
    }
    if failures > 0 {
        1
    } else {
        0
    }
}
