//! The `experiments` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p leopard-bench --release --bin experiments -- \
//!     [--full] [--bench-json <path>] [<id>...]
//! ```
//!
//! With no ids every experiment runs. `--full` selects the paper-scale parameter sets
//! (slower); the default "quick" profile uses reduced scales suitable for a laptop.
//! Each table is printed to stdout and written to `target/experiments/<id>.csv`.
//!
//! `--bench-json <path>` additionally writes a machine-readable JSON document with the
//! wall-clock seconds and result table of every experiment run — the format of the
//! repo's `BENCH_*.json` performance trajectory (see `EXPERIMENTS.md`).
//!
//! `--require-nonzero <substr>` makes the binary exit non-zero if any cell in a column
//! whose header contains `<substr>` does not start with a positive number — the CI
//! guard that keeps the "Leopard confirms nothing at paper scale" collapse from
//! silently regressing (used with the `fig9smoke` experiment).

use leopard_harness::experiments::{run_experiment, EXPERIMENT_IDS};
use leopard_harness::report::{bench_records_to_json, BenchRecord};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let mut bench_json: Option<PathBuf> = None;
    let mut require_nonzero: Option<String> = None;
    let mut requested: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => {}
            "--bench-json" => match iter.next() {
                Some(path) => bench_json = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--bench-json requires a path argument");
                    std::process::exit(2);
                }
            },
            "--require-nonzero" => match iter.next() {
                Some(substr) => require_nonzero = Some(substr),
                None => {
                    eprintln!("--require-nonzero requires a column-substring argument");
                    std::process::exit(2);
                }
            },
            _ => requested.push(arg),
        }
    }
    let ids: Vec<&str> = if requested.is_empty() {
        EXPERIMENT_IDS.to_vec()
    } else {
        requested.iter().map(String::as_str).collect()
    };

    let out_dir = PathBuf::from("target/experiments");
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut failures = 0usize;
    for id in ids {
        eprintln!("running experiment {id} ({}) ...", if full { "full" } else { "quick" });
        let start = Instant::now();
        match run_experiment(id, !full) {
            Some(table) => {
                let wall_clock_secs = start.elapsed().as_secs_f64();
                println!("{}", table.to_text());
                if let Some(substr) = &require_nonzero {
                    failures += check_nonzero_columns(&table, substr);
                }
                match table.write_csv(&out_dir, id) {
                    Ok(path) => eprintln!("  wrote {}", path.display()),
                    Err(error) => eprintln!("  could not write CSV: {error}"),
                }
                eprintln!("  wall clock: {wall_clock_secs:.3}s");
                records.push(BenchRecord {
                    id: id.to_string(),
                    wall_clock_secs,
                    table,
                });
            }
            None => {
                eprintln!("  unknown experiment id: {id}");
                failures += 1;
            }
        }
    }
    if let Some(path) = bench_json {
        let profile = if full { "full" } else { "quick" };
        let json = bench_records_to_json(profile, &records);
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote bench trajectory to {}", path.display()),
            Err(error) => {
                eprintln!("could not write bench JSON to {}: {error}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Counts cells that are not strictly positive in every column whose header contains
/// `substr`. Cells may carry a stall annotation (`"0.00 [AwaitingReady]"`); only the
/// leading number is parsed, so the diagnostics never hide a failure.
fn check_nonzero_columns(table: &leopard_harness::report::Table, substr: &str) -> usize {
    let mut failures = 0;
    for (column, header) in table.headers.iter().enumerate() {
        // Only numeric columns carry a unit in parentheses; this skips non-numeric
        // companions like "Leopard diagnostics" when matching on "Leopard".
        if !header.contains(substr) || !header.contains('(') {
            continue;
        }
        for row in &table.rows {
            let cell = &row[column];
            let value: f64 = cell
                .split_whitespace()
                .next()
                .and_then(|prefix| prefix.parse().ok())
                .unwrap_or(0.0);
            if value <= 0.0 {
                eprintln!("  REQUIRE-NONZERO FAILED: column {header:?} has cell {cell:?} (row n={})", row[0]);
                failures += 1;
            }
        }
    }
    failures
}
