//! A `(t, n)` threshold signature scheme based on Shamir secret sharing over
//! GF(2^61 − 1).
//!
//! The paper instantiates its vote aggregation with threshold BLS (48-byte signatures).
//! Re-implementing pairing-based BLS from scratch is out of scope for this reproduction,
//! so this module provides a scheme with the same *shape*:
//!
//! * a trusted dealer ([`ThresholdScheme::trusted_setup`]) splits a master secret `s`
//!   into `n` Shamir shares `s_i` (a degree `t−1` polynomial evaluated at `i`);
//! * a **signature share** on message `m` by replica `i` is `σ_i = s_i · h(m)` where
//!   `h(m)` maps the SHA-256 digest of `m` into the field;
//! * any `t` valid shares combine by Lagrange interpolation at zero into the **combined
//!   signature** `σ = s · h(m)`;
//! * verification of shares and combined signatures is done against per-replica and
//!   master *verification values* derived during setup.
//!
//! The threshold semantics are real (fewer than `t` shares give no information about
//! `σ`, and combination genuinely performs polynomial interpolation), but because
//! verification values reveal the shares the scheme is **not unforgeable** against an
//! adversary outside the simulation. See the crate-level documentation and `DESIGN.md`
//! §3 for why this substitution is sound for this repository.
//!
//! Wire sizes are configurable so the communication-cost accounting matches the paper's
//! `κ = 48` bytes per vote.

use crate::field::{lagrange_coefficients, poly_eval, Fp};
use crate::hash::Digest;
use rand::Rng;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Default serialized size of a signature share / combined signature in bytes, matching
/// the 48-byte BLS signatures used by the paper (`κ = 48`).
pub const DEFAULT_SIGNATURE_WIRE_BYTES: usize = 48;

/// Errors returned by the threshold scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThresholdError {
    /// The share's signer index is outside `1..=n`.
    SignerOutOfRange {
        /// The offending signer index.
        signer: usize,
        /// Number of participants in the scheme.
        n: usize,
    },
    /// Not enough shares were provided to reach the threshold.
    NotEnoughShares {
        /// Number of shares provided.
        got: usize,
        /// Threshold required.
        need: usize,
    },
    /// Two shares from the same signer were provided.
    DuplicateSigner(usize),
    /// A share failed verification.
    InvalidShare(usize),
}

impl fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThresholdError::SignerOutOfRange { signer, n } => {
                write!(f, "signer index {signer} out of range for n={n}")
            }
            ThresholdError::NotEnoughShares { got, need } => {
                write!(f, "not enough signature shares: got {got}, need {need}")
            }
            ThresholdError::DuplicateSigner(signer) => {
                write!(f, "duplicate signature share from signer {signer}")
            }
            ThresholdError::InvalidShare(signer) => {
                write!(f, "invalid signature share from signer {signer}")
            }
        }
    }
}

impl std::error::Error for ThresholdError {}

/// A signature share produced by a single replica (`TSig` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignatureShare {
    /// 1-based index of the signer (the Shamir evaluation point).
    pub signer: usize,
    /// The share value `s_i · h(m)`.
    pub value: Fp,
}

impl SignatureShare {
    /// Serialized size in bytes used for communication accounting.
    pub fn wire_size(&self) -> usize {
        DEFAULT_SIGNATURE_WIRE_BYTES
    }
}

/// A combined (threshold) signature (`TSR` output in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CombinedSignature {
    /// The combined value `s · h(m)`.
    pub value: Fp,
}

impl CombinedSignature {
    /// Serialized size in bytes used for communication accounting.
    pub fn wire_size(&self) -> usize {
        DEFAULT_SIGNATURE_WIRE_BYTES
    }
}

/// Per-replica key material.
#[derive(Debug, Clone)]
pub struct ThresholdKeyPair {
    /// 1-based index of this replica.
    pub index: usize,
    /// The Shamir share of the master secret (the signing key `tsk_i`).
    pub secret_share: Fp,
}

/// Public parameters plus verification values of the scheme.
///
/// One `ThresholdScheme` value is shared by all replicas of one simulated system; it
/// plays the role of the public keys `{tpk_i}` and `mpk`.
#[derive(Debug, Clone)]
pub struct ThresholdScheme {
    n: usize,
    threshold: usize,
    /// Per-replica verification values (equal to the shares — see module docs).
    verification: Vec<Fp>,
    /// Master verification value (the secret `s`).
    master: Fp,
    /// Lagrange coefficients at zero, keyed by the signer sequence they were computed
    /// for. Checkpoint and vote quorums repeat the same `2f+1` signer sets constantly,
    /// so [`Self::combine`] usually skips interpolation entirely. Shared by all clones
    /// of the scheme (clones describe the same committee, so the coefficients agree).
    lambda_cache: Arc<Mutex<HashMap<Vec<u32>, Arc<[Fp]>>>>,
}

/// Entry cap for the combine cache; distinct signer sets beyond this flush the cache
/// (quorum sets repeat heavily in practice, so this is a memory backstop, not a policy).
const LAMBDA_CACHE_CAP: usize = 4096;

impl ThresholdScheme {
    /// Runs the trusted-dealer setup for an `(threshold, n)` scheme.
    ///
    /// Returns the public scheme plus one key pair per replica (index `1..=n`).
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`, `n == 0` or `threshold > n` — these are configuration
    /// errors that cannot arise from valid protocol parameters (`n = 3f+1`,
    /// `threshold = 2f+1`).
    pub fn trusted_setup<R: Rng + ?Sized>(
        threshold: usize,
        n: usize,
        rng: &mut R,
    ) -> (Self, Vec<ThresholdKeyPair>) {
        assert!(threshold > 0, "threshold must be positive");
        assert!(n > 0, "n must be positive");
        assert!(threshold <= n, "threshold cannot exceed n");

        // Random polynomial of degree threshold-1; the constant term is the secret.
        let coefficients: Vec<Fp> = (0..threshold)
            .map(|_| Fp::new(rng.gen_range(0..crate::field::MODULUS)))
            .collect();
        let master = coefficients[0];

        let mut shares = Vec::with_capacity(n);
        let mut verification = Vec::with_capacity(n);
        for i in 1..=n {
            let share = poly_eval(&coefficients, Fp::new(i as u64));
            verification.push(share);
            shares.push(ThresholdKeyPair {
                index: i,
                secret_share: share,
            });
        }

        (
            Self {
                n,
                threshold,
                verification,
                master,
                lambda_cache: Arc::new(Mutex::new(HashMap::new())),
            },
            shares,
        )
    }

    /// Number of participants `n`.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// The combination threshold `t` (the paper uses `2f + 1`).
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Maps a message digest into the field. Zero is avoided so a signature can never be
    /// trivially valid for every key.
    fn message_point(message: &Digest) -> Fp {
        let v = Fp::new(message.to_u64());
        if v.is_zero() {
            Fp::one()
        } else {
            v
        }
    }

    /// The field point a message maps to (exposed for the provider's batched
    /// verification, which needs `h(m)` once per batch instead of once per share).
    pub(crate) fn message_point_of(message: &Digest) -> Fp {
        Self::message_point(message)
    }

    /// Replica `signer`'s public verification value (1-based index; must be in range).
    pub(crate) fn verification_value(&self, signer: usize) -> Fp {
        self.verification[signer - 1]
    }

    /// The combined signature the scheme is algebraically forced to produce on
    /// `message`: `s · h(m)`. Interpolating any valid quorum yields exactly this value,
    /// so the metered provider can return it without performing the Lagrange sum.
    pub(crate) fn master_signature(&self, message: &Digest) -> CombinedSignature {
        CombinedSignature {
            value: self.master * Self::message_point(message),
        }
    }

    /// The structural half of [`Self::combine`]: threshold count, signer range and
    /// duplicate checks over the first `threshold` shares, without verifying share
    /// values.
    pub(crate) fn check_combine_structure(
        &self,
        shares: &[SignatureShare],
    ) -> Result<(), ThresholdError> {
        if shares.len() < self.threshold {
            return Err(ThresholdError::NotEnoughShares {
                got: shares.len(),
                need: self.threshold,
            });
        }
        let mut seen = vec![false; self.n + 1];
        for share in &shares[..self.threshold] {
            if share.signer == 0 || share.signer > self.n {
                return Err(ThresholdError::SignerOutOfRange {
                    signer: share.signer,
                    n: self.n,
                });
            }
            if seen[share.signer] {
                return Err(ThresholdError::DuplicateSigner(share.signer));
            }
            seen[share.signer] = true;
        }
        Ok(())
    }

    /// `TSR` over shares the caller has already verified: performs the structural
    /// checks and the Lagrange combination, but not the per-share verification that
    /// [`Self::combine`] repeats. Votes are verified when they arrive (individually or
    /// in a batch), so re-verifying the whole quorum inside the combine doubled the
    /// leader's share-verification work for nothing.
    ///
    /// # Errors
    ///
    /// The structural [`ThresholdError`]s only ([`ThresholdError::InvalidShare`] cannot
    /// be returned — validity is the caller's contract).
    pub fn combine_preverified(
        &self,
        shares: &[SignatureShare],
        _message: &Digest,
    ) -> Result<CombinedSignature, ThresholdError> {
        self.check_combine_structure(shares)?;
        let selected = &shares[..self.threshold];
        let lambdas = self.lambdas_for(selected);
        let mut value = Fp::zero();
        for (lambda, share) in lambdas.iter().zip(selected) {
            value = value + *lambda * share.value;
        }
        Ok(CombinedSignature { value })
    }

    /// `TSig`: produces replica `keypair.index`'s signature share on `message`.
    pub fn sign_share(&self, keypair: &ThresholdKeyPair, message: &Digest) -> SignatureShare {
        SignatureShare {
            signer: keypair.index,
            value: keypair.secret_share * Self::message_point(message),
        }
    }

    /// `TVrf` on shares: checks that `share` is a valid signature share on `message`.
    pub fn verify_share(&self, share: &SignatureShare, message: &Digest) -> bool {
        if share.signer == 0 || share.signer > self.n {
            return false;
        }
        let expected = self.verification[share.signer - 1] * Self::message_point(message);
        expected == share.value
    }

    /// `TSR`: combines at least [`Self::threshold`] distinct valid shares into a
    /// combined signature.
    ///
    /// # Errors
    ///
    /// Returns an error if there are fewer than `threshold` shares, a duplicate or
    /// out-of-range signer, or a share that fails verification.
    pub fn combine(
        &self,
        shares: &[SignatureShare],
        message: &Digest,
    ) -> Result<CombinedSignature, ThresholdError> {
        self.check_combine_structure(shares)?;
        let selected = &shares[..self.threshold];
        for share in selected {
            if !self.verify_share(share, message) {
                return Err(ThresholdError::InvalidShare(share.signer));
            }
        }
        self.combine_preverified(shares, message)
    }

    /// The Lagrange coefficients at zero for the given (already validated, distinct)
    /// signer sequence, from the cache when the same quorum combined before.
    fn lambdas_for(&self, selected: &[SignatureShare]) -> Arc<[Fp]> {
        let key: Vec<u32> = selected.iter().map(|s| s.signer as u32).collect();
        if let Some(cached) = self.lambda_cache.lock().expect("combine cache poisoned").get(&key) {
            return Arc::clone(cached);
        }
        let xs: Vec<Fp> = selected.iter().map(|s| Fp::new(s.signer as u64)).collect();
        let lambdas: Arc<[Fp]> = lagrange_coefficients(&xs, Fp::zero())
            .expect("signer indices are distinct, interpolation cannot fail")
            .into();
        let mut cache = self.lambda_cache.lock().expect("combine cache poisoned");
        if cache.len() >= LAMBDA_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Arc::clone(&lambdas));
        lambdas
    }

    /// `TVrf` on combined signatures: checks a combined signature on `message` against
    /// the master verification value.
    pub fn verify_combined(&self, signature: &CombinedSignature, message: &Digest) -> bool {
        signature.value == self.master * Self::message_point(message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_bytes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(threshold: usize, n: usize) -> (ThresholdScheme, Vec<ThresholdKeyPair>) {
        let mut rng = StdRng::seed_from_u64(42);
        ThresholdScheme::trusted_setup(threshold, n, &mut rng)
    }

    #[test]
    fn quorum_combines_and_verifies() {
        let (scheme, keys) = setup(3, 4);
        let msg = hash_bytes(b"BFTblock #1");
        let shares: Vec<_> = keys.iter().map(|k| scheme.sign_share(k, &msg)).collect();
        for share in &shares {
            assert!(scheme.verify_share(share, &msg));
        }
        let combined = scheme.combine(&shares[..3], &msg).unwrap();
        assert!(scheme.verify_combined(&combined, &msg));
        // Any quorum yields the same signature.
        let other = scheme.combine(&shares[1..4], &msg).unwrap();
        assert_eq!(combined, other);
    }

    #[test]
    fn sub_threshold_fails() {
        let (scheme, keys) = setup(3, 4);
        let msg = hash_bytes(b"msg");
        let shares: Vec<_> = keys.iter().map(|k| scheme.sign_share(k, &msg)).collect();
        assert_eq!(
            scheme.combine(&shares[..2], &msg),
            Err(ThresholdError::NotEnoughShares { got: 2, need: 3 })
        );
    }

    #[test]
    fn duplicate_signer_is_rejected() {
        let (scheme, keys) = setup(3, 4);
        let msg = hash_bytes(b"msg");
        let s0 = scheme.sign_share(&keys[0], &msg);
        let s1 = scheme.sign_share(&keys[1], &msg);
        assert_eq!(
            scheme.combine(&[s0, s1, s0], &msg),
            Err(ThresholdError::DuplicateSigner(1))
        );
    }

    #[test]
    fn tampered_share_is_rejected() {
        let (scheme, keys) = setup(3, 4);
        let msg = hash_bytes(b"msg");
        let mut shares: Vec<_> = keys.iter().map(|k| scheme.sign_share(k, &msg)).collect();
        shares[1].value = shares[1].value + Fp::one();
        assert!(!scheme.verify_share(&shares[1], &msg));
        assert_eq!(
            scheme.combine(&shares[..3], &msg),
            Err(ThresholdError::InvalidShare(2))
        );
    }

    #[test]
    fn signature_does_not_verify_for_other_message() {
        let (scheme, keys) = setup(3, 4);
        let msg = hash_bytes(b"msg");
        let other = hash_bytes(b"other");
        let shares: Vec<_> = keys.iter().map(|k| scheme.sign_share(k, &msg)).collect();
        let combined = scheme.combine(&shares[..3], &msg).unwrap();
        assert!(!scheme.verify_combined(&combined, &other));
        assert!(!scheme.verify_share(&shares[0], &other));
    }

    #[test]
    fn out_of_range_signer_is_rejected() {
        let (scheme, keys) = setup(3, 4);
        let msg = hash_bytes(b"msg");
        let mut share = scheme.sign_share(&keys[0], &msg);
        share.signer = 9;
        assert!(!scheme.verify_share(&share, &msg));
        let good: Vec<_> = keys.iter().map(|k| scheme.sign_share(k, &msg)).collect();
        let result = scheme.combine(&[share, good[1], good[2]], &msg);
        assert_eq!(
            result,
            Err(ThresholdError::SignerOutOfRange { signer: 9, n: 4 })
        );
    }

    #[test]
    fn wire_sizes_match_paper_kappa() {
        let (scheme, keys) = setup(3, 4);
        let msg = hash_bytes(b"msg");
        let share = scheme.sign_share(&keys[0], &msg);
        assert_eq!(share.wire_size(), 48);
        let shares: Vec<_> = keys.iter().map(|k| scheme.sign_share(k, &msg)).collect();
        let combined = scheme.combine(&shares[..3], &msg).unwrap();
        assert_eq!(combined.wire_size(), 48);
    }

    #[test]
    fn larger_committee_2f_plus_1_of_3f_plus_1() {
        for f in 1..6usize {
            let n = 3 * f + 1;
            let t = 2 * f + 1;
            let (scheme, keys) = setup(t, n);
            let msg = hash_bytes(format!("view change f={f}").as_bytes());
            let shares: Vec<_> = keys.iter().map(|k| scheme.sign_share(k, &msg)).collect();
            let combined = scheme.combine(&shares[f..f + t], &msg).unwrap();
            assert!(scheme.verify_combined(&combined, &msg));
        }
    }

    #[test]
    #[should_panic(expected = "threshold cannot exceed n")]
    fn setup_rejects_threshold_above_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = ThresholdScheme::trusted_setup(5, 4, &mut rng);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn any_quorum_of_any_scheme_combines(
                f in 1usize..5,
                seed in any::<u64>(),
                msg_bytes in proptest::collection::vec(any::<u8>(), 1..64),
                quorum_seed in any::<u64>(),
            ) {
                let n = 3 * f + 1;
                let t = 2 * f + 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let (scheme, keys) = ThresholdScheme::trusted_setup(t, n, &mut rng);
                let msg = hash_bytes(&msg_bytes);

                // Pick a pseudo-random quorum of exactly t distinct signers.
                let mut order: Vec<usize> = (0..n).collect();
                let mut qrng = StdRng::seed_from_u64(quorum_seed);
                for i in (1..order.len()).rev() {
                    let j = rand::Rng::gen_range(&mut qrng, 0..=i);
                    order.swap(i, j);
                }
                let shares: Vec<_> = order[..t]
                    .iter()
                    .map(|&i| scheme.sign_share(&keys[i], &msg))
                    .collect();
                let combined = scheme.combine(&shares, &msg).unwrap();
                prop_assert!(scheme.verify_combined(&combined, &msg));
            }

            /// Cached-vs-fresh agreement: combining the same random signer set twice on
            /// the same scheme (second combine hits the lambda cache) must equal a
            /// combine on a freshly cloned scheme with an empty cache path, for any
            /// message.
            #[test]
            fn cached_combine_matches_fresh_combine(
                f in 1usize..5,
                seed in any::<u64>(),
                quorum_seed in any::<u64>(),
                msg_a in proptest::collection::vec(any::<u8>(), 1..64),
                msg_b in proptest::collection::vec(any::<u8>(), 1..64),
            ) {
                let n = 3 * f + 1;
                let t = 2 * f + 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let (scheme, keys) = ThresholdScheme::trusted_setup(t, n, &mut rng);

                let mut order: Vec<usize> = (0..n).collect();
                let mut qrng = StdRng::seed_from_u64(quorum_seed);
                for i in (1..order.len()).rev() {
                    let j = rand::Rng::gen_range(&mut qrng, 0..=i);
                    order.swap(i, j);
                }
                let quorum = &order[..t];

                let fresh = ThresholdScheme {
                    lambda_cache: Arc::new(Mutex::new(HashMap::new())),
                    ..scheme.clone()
                };
                for msg_bytes in [&msg_a, &msg_b] {
                    let msg = hash_bytes(msg_bytes);
                    let shares: Vec<_> = quorum
                        .iter()
                        .map(|&i| scheme.sign_share(&keys[i], &msg))
                        .collect();
                    // First call populates the cache, second call must hit it.
                    let warm = scheme.combine(&shares, &msg).unwrap();
                    let cached = scheme.combine(&shares, &msg).unwrap();
                    let uncached = fresh.combine(&shares, &msg).unwrap();
                    prop_assert_eq!(warm, cached);
                    prop_assert_eq!(cached, uncached);
                    prop_assert!(scheme.verify_combined(&cached, &msg));
                }
            }
        }
    }
}
