//! A 32-byte digest type and hashing helpers used across the workspace.

use crate::sha256::Sha256;
use std::fmt;

/// Length in bytes of a [`Digest`]; matches the paper's `β = 32` bytes (SHA-256).
pub const DIGEST_LEN: usize = 32;

/// A 32-byte SHA-256 digest.
///
/// `Digest` is used as the identifier of datablocks, BFTblocks and requests throughout
/// the protocol crates, and as node labels in [`crate::merkle::MerkleTree`].
///
/// ```
/// use leopard_crypto::{hash_bytes, Digest};
///
/// let d: Digest = hash_bytes(b"hello");
/// assert_ne!(d, Digest::zero());
/// assert_eq!(d, hash_bytes(b"hello"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The all-zero digest; used as a placeholder (e.g. the parent of a genesis block).
    pub fn zero() -> Self {
        Digest([0u8; DIGEST_LEN])
    }

    /// Returns true if every byte of the digest is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// Borrows the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Creates a digest from a 32-byte array.
    pub fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }

    /// Parses a digest from a slice.
    ///
    /// Returns `None` if the slice is not exactly [`DIGEST_LEN`] bytes.
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != DIGEST_LEN {
            return None;
        }
        let mut out = [0u8; DIGEST_LEN];
        out.copy_from_slice(bytes);
        Some(Digest(out))
    }

    /// Hex representation, mostly for logs and debugging.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// A short prefix of the hex representation, for compact log lines.
    pub fn short_hex(&self) -> String {
        self.to_hex()[..8].to_string()
    }

    /// Interprets the first 8 bytes as a big-endian integer.
    ///
    /// Used by the threshold scheme to map a digest into the field, and by tests that
    /// need a deterministic pseudo-random value derived from a digest.
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has at least 8 bytes"))
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", self.short_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.short_hex())
    }
}

/// Hashes a byte slice with SHA-256.
pub fn hash_bytes(data: &[u8]) -> Digest {
    Digest(Sha256::digest(data))
}

/// Hashes the concatenation of two digests; used for Merkle tree interior nodes.
pub fn hash_pair(left: &Digest, right: &Digest) -> Digest {
    let mut hasher = Sha256::new();
    hasher.update(left.as_bytes());
    hasher.update(right.as_bytes());
    Digest(hasher.finalize())
}

/// Hashes an iterator of byte slices as if they were concatenated.
pub fn hash_parts<'a>(parts: impl IntoIterator<Item = &'a [u8]>) -> Digest {
    let mut hasher = Sha256::new();
    for part in parts {
        hasher.update(part);
    }
    Digest(hasher.finalize())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_roundtrip_and_accessors() {
        let d = hash_bytes(b"leopard");
        assert_eq!(Digest::from_slice(d.as_bytes()), Some(d));
        assert_eq!(Digest::from_bytes(d.0), d);
        assert_eq!(d.to_hex().len(), 64);
        assert_eq!(d.short_hex().len(), 8);
        assert!(!d.is_zero());
        assert!(Digest::zero().is_zero());
    }

    #[test]
    fn from_slice_rejects_wrong_length() {
        assert!(Digest::from_slice(&[0u8; 31]).is_none());
        assert!(Digest::from_slice(&[0u8; 33]).is_none());
        assert!(Digest::from_slice(&[]).is_none());
    }

    #[test]
    fn hash_pair_is_order_sensitive() {
        let a = hash_bytes(b"a");
        let b = hash_bytes(b"b");
        assert_ne!(hash_pair(&a, &b), hash_pair(&b, &a));
    }

    #[test]
    fn hash_parts_equals_concatenation() {
        let concatenated = hash_bytes(b"hello world");
        let parts = hash_parts([b"hello".as_slice(), b" ".as_slice(), b"world".as_slice()]);
        assert_eq!(concatenated, parts);
    }

    #[test]
    fn to_u64_uses_leading_bytes() {
        let mut bytes = [0u8; DIGEST_LEN];
        bytes[7] = 1;
        assert_eq!(Digest::from_bytes(bytes).to_u64(), 1);
        bytes[0] = 0x80;
        assert!(Digest::from_bytes(bytes).to_u64() > u64::MAX / 2);
    }
}
