//! Cryptographic substrate for the Leopard BFT reproduction.
//!
//! The paper relies on three cryptographic building blocks:
//!
//! * a collision-resistant hash function `H(·)` (SHA-256 in the original prototype) —
//!   implemented from scratch in [`sha256`] and wrapped by [`hash::Digest`];
//! * Merkle trees over erasure-coded chunks for the datablock retrieval mechanism —
//!   implemented in [`merkle`];
//! * a `(2f+1, n)` threshold signature scheme `TS = (TSig, TVrf, TSR)` (threshold BLS in
//!   the original prototype) — implemented in [`threshold`] as a Shamir-secret-sharing
//!   based scheme over the prime field GF(2^61 − 1).
//!
//! # Security note on the threshold scheme
//!
//! The threshold scheme reproduces the *interface*, the *threshold semantics* (any
//! `2f+1` of `n` shares combine into a valid signature, any smaller set does not) and
//! the *wire sizes* of threshold BLS, but it is **not** unforgeable against a real
//! network adversary: verification keys are derived from the same dealer secret that
//! produces signatures. This is an intentional, documented substitution (see
//! `DESIGN.md` §3): the adversary in this repository is always simulated by our own
//! fault-injection code, never by an untrusted peer, so unforgeability is not load
//! bearing while the combination algebra (Lagrange interpolation over a quorum) is
//! exercised for real.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod hash;
pub mod merkle;
pub mod provider;
pub mod sha256;
pub mod threshold;

pub use hash::{hash_bytes, hash_pair, hash_parts, Digest, DIGEST_LEN};
pub use merkle::{MerkleProof, MerkleTree};
pub use provider::{BatchOutcome, ComputeCost, CryptoCostModel, CryptoMode, CryptoProvider};
pub use threshold::{
    CombinedSignature, SignatureShare, ThresholdError, ThresholdKeyPair, ThresholdScheme,
    DEFAULT_SIGNATURE_WIRE_BYTES,
};
