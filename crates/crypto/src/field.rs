//! Arithmetic in the prime field GF(p) with p = 2^61 − 1 (a Mersenne prime).
//!
//! The threshold signature scheme in [`crate::threshold`] performs Shamir secret
//! sharing and Lagrange interpolation over this field. A 61-bit Mersenne prime keeps
//! multiplication within `u128` intermediates and makes reduction a couple of shifts,
//! which is plenty for the simulator workloads while remaining an honest finite-field
//! implementation (with inversion via Fermat's little theorem and full test coverage of
//! the field axioms).

/// The field modulus, `2^61 − 1`.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// An element of GF(2^61 − 1), kept in canonical reduced form `0 <= value < MODULUS`.
///
/// ```
/// use leopard_crypto::field::Fp;
///
/// let a = Fp::new(7);
/// let b = Fp::new(11);
/// assert_eq!((a + b).value(), 18);
/// assert_eq!((a * b).value(), 77);
/// assert_eq!((a - b) + b, a);
/// assert_eq!(a * a.inverse().unwrap(), Fp::one());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Fp(u64);

impl Fp {
    /// Creates a field element, reducing the input modulo p.
    pub fn new(value: u64) -> Self {
        Fp(reduce_u64(value))
    }

    /// The additive identity.
    pub fn zero() -> Self {
        Fp(0)
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        Fp(1)
    }

    /// Returns the canonical representative in `[0, p)`.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Returns true if this is the additive identity.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }

    /// Raises the element to the power `exp` by square-and-multiply.
    pub fn pow(&self, mut exp: u64) -> Self {
        let mut base = *self;
        let mut acc = Fp::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            exp >>= 1;
        }
        acc
    }

    /// The multiplicative inverse, or `None` for zero.
    ///
    /// Uses Fermat's little theorem: `a^(p-2) = a^(-1) (mod p)`.
    pub fn inverse(&self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(self.pow(MODULUS - 2))
        }
    }

    /// Additive inverse.
    pub fn neg(&self) -> Self {
        if self.0 == 0 {
            Fp(0)
        } else {
            Fp(MODULUS - self.0)
        }
    }
}

impl From<u64> for Fp {
    fn from(value: u64) -> Self {
        Fp::new(value)
    }
}

/// Reduces an arbitrary `u64` modulo `2^61 − 1`.
fn reduce_u64(x: u64) -> u64 {
    // x = hi * 2^61 + lo  =>  x ≡ hi + lo (mod 2^61 − 1)
    let mut r = (x >> 61) + (x & MODULUS);
    if r >= MODULUS {
        r -= MODULUS;
    }
    r
}

/// Reduces a `u128` product modulo `2^61 − 1`.
fn reduce_u128(x: u128) -> u64 {
    // Split into 61-bit limbs: x = a * 2^122 + b * 2^61 + c ≡ a + b + c (mod p).
    let c = (x & (MODULUS as u128)) as u64;
    let b = ((x >> 61) & (MODULUS as u128)) as u64;
    let a = (x >> 122) as u64;
    let mut r = a as u128 + b as u128 + c as u128;
    // r < 3 * 2^61, two conditional subtractions suffice.
    if r >= MODULUS as u128 {
        r -= MODULUS as u128;
    }
    if r >= MODULUS as u128 {
        r -= MODULUS as u128;
    }
    r as u64
}

impl std::ops::Add for Fp {
    type Output = Fp;
    fn add(self, rhs: Fp) -> Fp {
        let mut sum = self.0 + rhs.0;
        if sum >= MODULUS {
            sum -= MODULUS;
        }
        Fp(sum)
    }
}

impl std::ops::Sub for Fp {
    type Output = Fp;
    fn sub(self, rhs: Fp) -> Fp {
        if self.0 >= rhs.0 {
            Fp(self.0 - rhs.0)
        } else {
            Fp(self.0 + MODULUS - rhs.0)
        }
    }
}

impl std::ops::Mul for Fp {
    type Output = Fp;
    fn mul(self, rhs: Fp) -> Fp {
        Fp(reduce_u128(self.0 as u128 * rhs.0 as u128))
    }
}

impl std::ops::AddAssign for Fp {
    fn add_assign(&mut self, rhs: Fp) {
        *self = *self + rhs;
    }
}

impl std::ops::SubAssign for Fp {
    fn sub_assign(&mut self, rhs: Fp) {
        *self = *self - rhs;
    }
}

impl std::ops::MulAssign for Fp {
    fn mul_assign(&mut self, rhs: Fp) {
        *self = *self * rhs;
    }
}

impl std::fmt::Display for Fp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Evaluates the polynomial with the given coefficients (constant term first) at `x`,
/// using Horner's rule.
pub fn poly_eval(coefficients: &[Fp], x: Fp) -> Fp {
    let mut acc = Fp::zero();
    for &coeff in coefficients.iter().rev() {
        acc = acc * x + coeff;
    }
    acc
}

/// Computes the Lagrange coefficient `λ_j(at)` for interpolation point `x_j` among the
/// evaluation points `xs`, i.e. `Π_{m != j} (at - x_m) / (x_j - x_m)`.
///
/// Returns `None` if two evaluation points coincide (division by zero).
pub fn lagrange_coefficient(xs: &[Fp], j: usize, at: Fp) -> Option<Fp> {
    let xj = xs[j];
    let mut numerator = Fp::one();
    let mut denominator = Fp::one();
    for (m, &xm) in xs.iter().enumerate() {
        if m == j {
            continue;
        }
        numerator = numerator * (at - xm);
        denominator = denominator * (xj - xm);
    }
    denominator.inverse().map(|inv| numerator * inv)
}

/// Computes all Lagrange coefficients `λ_j(at)` for the evaluation points `xs` at once.
///
/// Equivalent to calling [`lagrange_coefficient`] for every `j`, but shares the
/// numerator products through prefix/suffix arrays and inverts all denominators with a
/// single field inversion (Montgomery's batch-inversion trick), so the whole vector
/// costs one `pow` instead of `xs.len()` of them.
///
/// Returns `None` if two evaluation points coincide (division by zero).
pub fn lagrange_coefficients(xs: &[Fp], at: Fp) -> Option<Vec<Fp>> {
    let t = xs.len();
    if t == 0 {
        return Some(Vec::new());
    }
    // numerator_j = Π_{m != j} (at - x_m) = prefix[j] * suffix[j].
    let mut prefix = vec![Fp::one(); t];
    for j in 1..t {
        prefix[j] = prefix[j - 1] * (at - xs[j - 1]);
    }
    let mut suffix = vec![Fp::one(); t];
    for j in (0..t - 1).rev() {
        suffix[j] = suffix[j + 1] * (at - xs[j + 1]);
    }
    // denominator_j = Π_{m != j} (x_j - x_m).
    let mut denominators = Vec::with_capacity(t);
    for (j, &xj) in xs.iter().enumerate() {
        let mut denominator = Fp::one();
        for (m, &xm) in xs.iter().enumerate() {
            if m != j {
                denominator = denominator * (xj - xm);
            }
        }
        if denominator.is_zero() {
            return None;
        }
        denominators.push(denominator);
    }
    // Batch inversion: running[j] = d_0 * ... * d_{j-1}; invert the full product once,
    // then peel the individual inverses off the back.
    let mut running = Vec::with_capacity(t);
    let mut acc = Fp::one();
    for &d in &denominators {
        running.push(acc);
        acc = acc * d;
    }
    let mut inv_acc = acc.inverse()?;
    let mut inverses = vec![Fp::zero(); t];
    for j in (0..t).rev() {
        inverses[j] = inv_acc * running[j];
        inv_acc = inv_acc * denominators[j];
    }
    Some(
        (0..t)
            .map(|j| prefix[j] * suffix[j] * inverses[j])
            .collect(),
    )
}

/// Interpolates the polynomial defined by points `(xs[i], ys[i])` and evaluates it at
/// `at`.
///
/// Returns `None` if the evaluation points are not pairwise distinct.
pub fn lagrange_interpolate(xs: &[Fp], ys: &[Fp], at: Fp) -> Option<Fp> {
    debug_assert_eq!(xs.len(), ys.len());
    let lambdas = lagrange_coefficients(xs, at)?;
    let mut acc = Fp::zero();
    for (lambda, &y) in lambdas.into_iter().zip(ys) {
        acc = acc + lambda * y;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reduction_of_modulus_is_zero() {
        assert_eq!(Fp::new(MODULUS), Fp::zero());
        assert_eq!(Fp::new(MODULUS + 5), Fp::new(5));
        assert_eq!(Fp::new(u64::MAX).value() < MODULUS, true);
    }

    #[test]
    fn additive_and_multiplicative_identities() {
        let a = Fp::new(123456789);
        assert_eq!(a + Fp::zero(), a);
        assert_eq!(a * Fp::one(), a);
        assert_eq!(a * Fp::zero(), Fp::zero());
        assert_eq!(a - a, Fp::zero());
        assert_eq!(a + a.neg(), Fp::zero());
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert!(Fp::zero().inverse().is_none());
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let a = Fp::new(3);
        let mut expected = Fp::one();
        for e in 0..20u64 {
            assert_eq!(a.pow(e), expected);
            expected = expected * a;
        }
    }

    #[test]
    fn poly_eval_constant_and_linear() {
        assert_eq!(poly_eval(&[Fp::new(42)], Fp::new(1000)), Fp::new(42));
        // 5 + 3x at x=7 = 26
        assert_eq!(poly_eval(&[Fp::new(5), Fp::new(3)], Fp::new(7)), Fp::new(26));
        assert_eq!(poly_eval(&[], Fp::new(7)), Fp::zero());
    }

    #[test]
    fn lagrange_recovers_secret() {
        // Polynomial of degree 2 with secret 99 at x=0.
        let coeffs = [Fp::new(99), Fp::new(17), Fp::new(23)];
        let xs: Vec<Fp> = [1u64, 2, 3].iter().map(|&x| Fp::new(x)).collect();
        let ys: Vec<Fp> = xs.iter().map(|&x| poly_eval(&coeffs, x)).collect();
        assert_eq!(
            lagrange_interpolate(&xs, &ys, Fp::zero()),
            Some(Fp::new(99))
        );
    }

    #[test]
    fn lagrange_with_duplicate_points_is_none() {
        let xs = [Fp::new(1), Fp::new(1)];
        let ys = [Fp::new(2), Fp::new(3)];
        assert_eq!(lagrange_interpolate(&xs, &ys, Fp::zero()), None);
        assert_eq!(lagrange_coefficients(&xs, Fp::zero()), None);
    }

    #[test]
    fn batch_coefficients_match_single_coefficients() {
        let xs: Vec<Fp> = [2u64, 5, 9, 11, 40].iter().map(|&x| Fp::new(x)).collect();
        for at in [Fp::zero(), Fp::new(7), Fp::new(1_000_003)] {
            let batch = lagrange_coefficients(&xs, at).unwrap();
            for j in 0..xs.len() {
                assert_eq!(batch[j], lagrange_coefficient(&xs, j, at).unwrap());
            }
        }
        assert_eq!(lagrange_coefficients(&[], Fp::zero()), Some(Vec::new()));
    }

    fn arb_fp() -> impl Strategy<Value = Fp> {
        (0u64..MODULUS).prop_map(Fp::new)
    }

    proptest! {
        #[test]
        fn addition_commutes(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn multiplication_commutes_and_associates(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn distributivity(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn subtraction_inverts_addition(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!((a + b) - b, a);
        }

        #[test]
        fn nonzero_elements_have_inverses(a in (1u64..MODULUS).prop_map(Fp::new)) {
            let inv = a.inverse().unwrap();
            prop_assert_eq!(a * inv, Fp::one());
        }

        #[test]
        fn interpolation_recovers_random_polynomials(
            coeffs in proptest::collection::vec(0u64..MODULUS, 1..6),
            at in 0u64..MODULUS,
        ) {
            let coeffs: Vec<Fp> = coeffs.into_iter().map(Fp::new).collect();
            let degree = coeffs.len() - 1;
            let xs: Vec<Fp> = (1..=degree as u64 + 1).map(Fp::new).collect();
            let ys: Vec<Fp> = xs.iter().map(|&x| poly_eval(&coeffs, x)).collect();
            let expected = poly_eval(&coeffs, Fp::new(at));
            prop_assert_eq!(lagrange_interpolate(&xs, &ys, Fp::new(at)), Some(expected));
        }
    }
}
