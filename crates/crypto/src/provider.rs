//! The crypto-provider layer: every cryptographic operation the protocols perform goes
//! through a [`CryptoProvider`], which (a) supports **batched share verification**
//! (randomized linear combination, amortising field work across a whole quorum) and
//! (b) reports a modeled [`ComputeCost`] per operation, so the simulator can charge
//! replica CPU as a scheduled resource alongside link bandwidth.
//!
//! # The two modes
//!
//! * [`CryptoMode::Real`] executes every field operation for real (Lagrange
//!   interpolation, share verification, erasure coding, Merkle hashing).
//! * [`CryptoMode::Metered`] makes **identical accept/reject decisions** and produces
//!   **bit-identical combined signatures**, but skips the expensive real work where the
//!   result is algebraically forced: a combine over verified shares must interpolate to
//!   `s · h(m)`, which the provider computes directly from the master verification
//!   value in one field multiplication instead of a `t`-term Lagrange sum. The modeled
//!   [`ComputeCost`] charged is the same in both modes, so a metered run follows the
//!   same simulated-time schedule as a real run while costing far less wall-clock.
//!   (The retrieval path applies the same idea to erasure coding and Merkle proofs —
//!   see `leopard-core`'s `retrieval` module.)
//!
//! Cost constants are supplied by [`CryptoCostModel`]; the calibrated values live in
//! `leopard_types::params` next to the rest of the paper's cost-model parameters.

use crate::field::Fp;
use crate::hash::Digest;
use crate::threshold::{
    CombinedSignature, SignatureShare, ThresholdError, ThresholdKeyPair, ThresholdScheme,
};

/// Modeled CPU time of one operation, in nanoseconds of replica compute.
///
/// Costs are *modeled*, not measured per call: they are computed from the operation's
/// input sizes and the calibrated per-byte / per-share constants of a
/// [`CryptoCostModel`], so a run charges the same simulated time whether the real work
/// was executed ([`CryptoMode::Real`]) or skipped ([`CryptoMode::Metered`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct ComputeCost {
    nanos: u64,
}

impl ComputeCost {
    /// Zero cost.
    pub const ZERO: ComputeCost = ComputeCost { nanos: 0 };

    /// A cost of `nanos` nanoseconds of replica CPU.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self { nanos }
    }

    /// The modeled CPU time in nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.nanos
    }

    /// True for a zero cost.
    pub const fn is_zero(&self) -> bool {
        self.nanos == 0
    }
}

impl std::ops::Add for ComputeCost {
    type Output = ComputeCost;
    fn add(self, rhs: ComputeCost) -> ComputeCost {
        ComputeCost {
            nanos: self.nanos.saturating_add(rhs.nanos),
        }
    }
}

impl std::ops::AddAssign for ComputeCost {
    fn add_assign(&mut self, rhs: ComputeCost) {
        *self = *self + rhs;
    }
}

impl std::fmt::Display for ComputeCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}ns", self.nanos)
    }
}

/// Whether crypto operations execute their field work for real or only charge it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CryptoMode {
    /// Execute every operation for real (the default; required when Byzantine tests
    /// inject tampered shares or chunks).
    #[default]
    Real,
    /// Make identical decisions and produce identical outputs, but skip the expensive
    /// real work whose result is forced (Lagrange combine, erasure coding, Merkle
    /// hashing in the retrieval path) while charging identical modeled time.
    Metered,
}

/// Per-operation cost constants of the compute-resource model.
///
/// All constants are modeled replica-CPU time. Two calibrations ship with the
/// repository (see `leopard_types::params`): `calibrated_crypto_costs()`, measured from
/// the real in-process implementations with `examples/calibrate_costs.rs`, and
/// `bls_paper_crypto_costs()`, which substitutes published BLS12-381 threshold-signature
/// timings to model the paper's actual crypto stack (used by the CPU-bound scaling
/// experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CryptoCostModel {
    /// Producing one signature share.
    pub sign_share_nanos: u64,
    /// Verifying one signature share on its own.
    pub verify_share_nanos: u64,
    /// Fixed cost of one batched share verification.
    pub batch_verify_base_nanos: u64,
    /// Additional cost per share in a batched verification.
    pub batch_verify_per_share_nanos: u64,
    /// Fixed cost of combining a quorum of shares.
    pub combine_base_nanos: u64,
    /// Additional cost per combined share.
    pub combine_per_share_nanos: u64,
    /// Verifying a combined signature.
    pub verify_combined_nanos: u64,
    /// Fixed cost of one hash invocation.
    pub hash_base_nanos: u64,
    /// Hashing cost per byte, in picoseconds.
    pub hash_per_byte_picos: u64,
    /// Erasure-coding kernel cost per processed byte (one GF(2^8) multiply-accumulate),
    /// in picoseconds.
    pub erasure_per_byte_picos: u64,
    /// Per-leaf overhead of building or verifying a Merkle tree, beyond the hashing of
    /// the leaf bytes themselves.
    pub merkle_per_leaf_nanos: u64,
}

impl CryptoCostModel {
    /// A model that charges nothing (compute stays free, as before this layer existed).
    pub const fn free() -> Self {
        Self {
            sign_share_nanos: 0,
            verify_share_nanos: 0,
            batch_verify_base_nanos: 0,
            batch_verify_per_share_nanos: 0,
            combine_base_nanos: 0,
            combine_per_share_nanos: 0,
            verify_combined_nanos: 0,
            hash_base_nanos: 0,
            hash_per_byte_picos: 0,
            erasure_per_byte_picos: 0,
            merkle_per_leaf_nanos: 0,
        }
    }

    /// Cost of hashing `bytes` bytes.
    pub fn hash(&self, bytes: usize) -> ComputeCost {
        ComputeCost::from_nanos(
            self.hash_base_nanos + (bytes as u64).saturating_mul(self.hash_per_byte_picos) / 1000,
        )
    }

    /// Cost of one signature share.
    pub fn sign_share(&self) -> ComputeCost {
        ComputeCost::from_nanos(self.sign_share_nanos)
    }

    /// Cost of verifying one share on its own.
    pub fn verify_share(&self) -> ComputeCost {
        ComputeCost::from_nanos(self.verify_share_nanos)
    }

    /// Cost of verifying `count` shares in one batch.
    pub fn batch_verify(&self, count: usize) -> ComputeCost {
        ComputeCost::from_nanos(
            self.batch_verify_base_nanos
                + (count as u64).saturating_mul(self.batch_verify_per_share_nanos),
        )
    }

    /// Cost of combining `count` shares.
    pub fn combine(&self, count: usize) -> ComputeCost {
        ComputeCost::from_nanos(
            self.combine_base_nanos + (count as u64).saturating_mul(self.combine_per_share_nanos),
        )
    }

    /// Cost of verifying a combined signature.
    pub fn verify_combined(&self) -> ComputeCost {
        ComputeCost::from_nanos(self.verify_combined_nanos)
    }

    /// Cost of erasure-encoding a payload into a `(data_shards, total_shards)` shard
    /// set: the parity rows perform one GF(2^8) multiply-accumulate per data byte each.
    pub fn erasure_encode(
        &self,
        payload_len: usize,
        data_shards: usize,
        total_shards: usize,
    ) -> ComputeCost {
        let shard_len = payload_len.div_ceil(data_shards.max(1)).max(1) as u64;
        let parity = total_shards.saturating_sub(data_shards) as u64;
        let byte_ops = shard_len
            .saturating_mul(data_shards as u64)
            .saturating_mul(parity);
        ComputeCost::from_nanos(byte_ops.saturating_mul(self.erasure_per_byte_picos) / 1000)
    }

    /// Cost of reconstructing the data shards from `data_shards` surviving shards.
    pub fn erasure_decode(&self, payload_len: usize, data_shards: usize) -> ComputeCost {
        let shard_len = payload_len.div_ceil(data_shards.max(1)).max(1) as u64;
        let byte_ops = shard_len
            .saturating_mul(data_shards as u64)
            .saturating_mul(data_shards as u64);
        ComputeCost::from_nanos(byte_ops.saturating_mul(self.erasure_per_byte_picos) / 1000)
    }

    /// Cost of building a Merkle tree over `leaves` leaves of `leaf_len` bytes each
    /// (leaf hashing plus interior-node hashing).
    pub fn merkle_tree(&self, leaf_len: usize, leaves: usize) -> ComputeCost {
        // Leaf hashing: one hash over the leaf bytes per leaf; interior nodes cost
        // about one 65-byte hash per leaf in total, folded into the per-leaf constant.
        let per_leaf = self.hash(leaf_len + 1).as_nanos() + self.merkle_per_leaf_nanos;
        ComputeCost::from_nanos((leaves as u64).saturating_mul(per_leaf))
    }

    /// Cost of verifying one Merkle inclusion proof for a tree of `leaves` leaves with
    /// `leaf_len`-byte leaves (one leaf hash plus `log2(leaves)` node hashes).
    pub fn merkle_verify(&self, leaf_len: usize, leaves: usize) -> ComputeCost {
        let depth = (usize::BITS - leaves.max(1).leading_zeros()) as u64;
        ComputeCost::from_nanos(
            self.hash(leaf_len + 1).as_nanos() + depth.saturating_mul(self.hash(65).as_nanos()),
        )
    }
}

impl Default for CryptoCostModel {
    fn default() -> Self {
        Self::free()
    }
}

/// Outcome of a batched share verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutcome {
    /// Every share in the batch is a valid signature share on the message.
    AllValid,
    /// At least one share is invalid; the signer indices of every invalid share are
    /// listed (the batch is never silently accepted).
    Invalid(Vec<usize>),
}

impl BatchOutcome {
    /// True if the whole batch verified.
    pub fn is_valid(&self) -> bool {
        matches!(self, BatchOutcome::AllValid)
    }
}

/// The crypto-provider: a [`ThresholdScheme`] plus a mode and a cost model.
///
/// One provider is shared by all replicas of a simulated system (it is part of the
/// shared key material); every operation returns the result together with its modeled
/// [`ComputeCost`], which the caller charges to its replica's compute queue.
#[derive(Debug, Clone)]
pub struct CryptoProvider {
    scheme: ThresholdScheme,
    mode: CryptoMode,
    model: CryptoCostModel,
}

/// `splitmix64` — a tiny, fast mixer used to derive batch coefficients
/// deterministically from the message and the shares (Fiat–Shamir style). The
/// coefficients must be outside the signers' control *before they fix their shares*;
/// deriving them from a hash of the batch contents achieves that without consuming
/// simulation randomness (so Real and Metered runs draw identical RNG streams).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl CryptoProvider {
    /// Wraps a threshold scheme in the given mode and cost model.
    pub fn new(scheme: ThresholdScheme, mode: CryptoMode, model: CryptoCostModel) -> Self {
        Self {
            scheme,
            mode,
            model,
        }
    }

    /// The underlying threshold scheme (public verification values).
    pub fn scheme(&self) -> &ThresholdScheme {
        &self.scheme
    }

    /// The provider's mode.
    pub fn mode(&self) -> CryptoMode {
        self.mode
    }

    /// True when the provider skips real field/erasure work (charging identical time).
    pub fn is_metered(&self) -> bool {
        self.mode == CryptoMode::Metered
    }

    /// The cost model used for charging.
    pub fn model(&self) -> &CryptoCostModel {
        &self.model
    }

    /// `TSig`: produces a signature share. One field multiplication; executed for real
    /// in both modes.
    pub fn sign_share(
        &self,
        keypair: &ThresholdKeyPair,
        message: &Digest,
    ) -> (SignatureShare, ComputeCost) {
        (
            self.scheme.sign_share(keypair, message),
            self.model.sign_share(),
        )
    }

    /// `TVrf` on a single share. Executed for real in both modes (the check is one
    /// field multiplication, and Byzantine tests rely on tampered shares being caught).
    pub fn verify_share(&self, share: &SignatureShare, message: &Digest) -> (bool, ComputeCost) {
        (
            self.scheme.verify_share(share, message),
            self.model.verify_share(),
        )
    }

    /// `TVrf` on a combined signature. Executed for real in both modes.
    pub fn verify_combined(
        &self,
        signature: &CombinedSignature,
        message: &Digest,
    ) -> (bool, ComputeCost) {
        (
            self.scheme.verify_combined(signature, message),
            self.model.verify_combined(),
        )
    }

    /// Batched share verification by randomized linear combination: checks
    /// `Σ rᵢ·σᵢ == (Σ rᵢ·vᵢ)·h(m)` for coefficients `rᵢ` derived from the batch
    /// contents, so a whole quorum verifies with two inner products instead of one
    /// scheme verification per share. On mismatch the batch is re-checked share by
    /// share and the invalid signers are reported — a batch containing a corrupted
    /// share is **never accepted**.
    ///
    /// Shares with out-of-range signer indices are reported as invalid.
    pub fn verify_shares_batch(
        &self,
        shares: &[SignatureShare],
        message: &Digest,
    ) -> (BatchOutcome, ComputeCost) {
        let cost = self.model.batch_verify(shares.len());
        // The localisation fallback really verifies every share individually, so the
        // failure path is charged batch + per-share work — a forged vote costs the
        // verifier real serial CPU, it is not free in the model.
        let fallback_cost = ComputeCost::from_nanos(
            cost.as_nanos()
                + (shares.len() as u64).saturating_mul(self.model.verify_share_nanos),
        );
        let n = self.scheme.participants();
        if shares.iter().any(|s| s.signer == 0 || s.signer > n) {
            return (self.locate_invalid(shares, message), fallback_cost);
        }
        let seed = splitmix64(message.to_u64());
        let mut lhs = Fp::zero();
        let mut keys = Fp::zero();
        for share in shares {
            let r = Fp::new(splitmix64(
                seed ^ (share.signer as u64).wrapping_mul(0xA24BAED4963EE407)
                    ^ share.value.value(),
            ));
            lhs = lhs + r * share.value;
            keys = keys + r * self.scheme.verification_value(share.signer);
        }
        let rhs = keys * ThresholdScheme::message_point_of(message);
        if lhs == rhs {
            (BatchOutcome::AllValid, cost)
        } else {
            (self.locate_invalid(shares, message), fallback_cost)
        }
    }

    /// Fallback localisation: per-share verification of a batch that failed (or that
    /// contained malformed signer indices).
    fn locate_invalid(&self, shares: &[SignatureShare], message: &Digest) -> BatchOutcome {
        let invalid: Vec<usize> = shares
            .iter()
            .filter(|share| !self.scheme.verify_share(share, message))
            .map(|share| share.signer)
            .collect();
        if invalid.is_empty() {
            // The linear combination can only fail if some share is invalid, but keep
            // the defensive branch: report the batch as all-valid when the per-share
            // pass clears everything.
            BatchOutcome::AllValid
        } else {
            BatchOutcome::Invalid(invalid)
        }
    }

    /// `TSR` over shares the caller has **already verified** (individually or with
    /// [`Self::verify_shares_batch`]): skips the redundant per-share re-verification
    /// that `ThresholdScheme::combine` performs.
    ///
    /// Structural checks (threshold count, signer range, duplicates) still run in both
    /// modes. In [`CryptoMode::Real`] the combination interpolates for real; in
    /// [`CryptoMode::Metered`] the provider returns the algebraically forced result
    /// `s · h(m)` directly — bit-identical output, one multiplication instead of a
    /// `t`-term Lagrange sum.
    ///
    /// # Errors
    ///
    /// The same structural [`ThresholdError`]s as `ThresholdScheme::combine`.
    pub fn combine_preverified(
        &self,
        shares: &[SignatureShare],
        message: &Digest,
    ) -> (Result<CombinedSignature, ThresholdError>, ComputeCost) {
        let threshold = self.scheme.threshold();
        let cost = self.model.combine(threshold.min(shares.len()));
        let result = match self.mode {
            CryptoMode::Real => self.scheme.combine_preverified(shares, message),
            CryptoMode::Metered => self
                .scheme
                .check_combine_structure(shares)
                .map(|()| self.scheme.master_signature(message)),
        };
        (result, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::hash_bytes;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn provider(mode: CryptoMode) -> (CryptoProvider, Vec<ThresholdKeyPair>) {
        let mut rng = StdRng::seed_from_u64(7);
        let (scheme, keys) = ThresholdScheme::trusted_setup(5, 7, &mut rng);
        (
            CryptoProvider::new(scheme, mode, CryptoCostModel::free()),
            keys,
        )
    }

    #[test]
    fn batch_accepts_valid_quorum() {
        let (provider, keys) = provider(CryptoMode::Real);
        let msg = hash_bytes(b"batch");
        let shares: Vec<_> = keys
            .iter()
            .map(|k| provider.sign_share(k, &msg).0)
            .collect();
        let (outcome, _) = provider.verify_shares_batch(&shares, &msg);
        assert_eq!(outcome, BatchOutcome::AllValid);
    }

    #[test]
    fn batch_locates_corrupted_share() {
        let (provider, keys) = provider(CryptoMode::Real);
        let msg = hash_bytes(b"batch");
        let mut shares: Vec<_> = keys
            .iter()
            .map(|k| provider.sign_share(k, &msg).0)
            .collect();
        shares[3].value = shares[3].value + Fp::one();
        let (outcome, _) = provider.verify_shares_batch(&shares, &msg);
        assert_eq!(outcome, BatchOutcome::Invalid(vec![4])); // signer indices are 1-based
    }

    #[test]
    fn batch_rejects_out_of_range_signer() {
        let (provider, keys) = provider(CryptoMode::Real);
        let msg = hash_bytes(b"batch");
        let mut shares: Vec<_> = keys
            .iter()
            .map(|k| provider.sign_share(k, &msg).0)
            .collect();
        shares[0].signer = 99;
        let (outcome, _) = provider.verify_shares_batch(&shares, &msg);
        assert_eq!(outcome, BatchOutcome::Invalid(vec![99]));
    }

    #[test]
    fn metered_combine_matches_real_combine() {
        let (real, keys) = provider(CryptoMode::Real);
        let (metered, _) = provider(CryptoMode::Metered);
        let msg = hash_bytes(b"combine");
        let shares: Vec<_> = keys.iter().map(|k| real.sign_share(k, &msg).0).collect();
        let (a, _) = real.combine_preverified(&shares[..5], &msg);
        let (b, _) = metered.combine_preverified(&shares[..5], &msg);
        let a = a.unwrap();
        assert_eq!(a, b.unwrap());
        assert!(real.verify_combined(&a, &msg).0);
    }

    #[test]
    fn metered_combine_reports_structural_errors() {
        let (metered, keys) = provider(CryptoMode::Metered);
        let msg = hash_bytes(b"errors");
        let shares: Vec<_> = keys.iter().map(|k| metered.sign_share(k, &msg).0).collect();
        let (short, _) = metered.combine_preverified(&shares[..2], &msg);
        assert_eq!(short, Err(ThresholdError::NotEnoughShares { got: 2, need: 5 }));
        let dup = [shares[0], shares[0], shares[1], shares[2], shares[3]];
        let (dup_result, _) = metered.combine_preverified(&dup, &msg);
        assert_eq!(dup_result, Err(ThresholdError::DuplicateSigner(1)));
    }

    #[test]
    fn costs_follow_the_model() {
        let model = CryptoCostModel {
            sign_share_nanos: 10,
            verify_share_nanos: 20,
            batch_verify_base_nanos: 100,
            batch_verify_per_share_nanos: 3,
            combine_base_nanos: 50,
            combine_per_share_nanos: 2,
            verify_combined_nanos: 7,
            hash_base_nanos: 5,
            hash_per_byte_picos: 2000,
            erasure_per_byte_picos: 500,
            merkle_per_leaf_nanos: 11,
        };
        assert_eq!(model.sign_share().as_nanos(), 10);
        assert_eq!(model.batch_verify(10).as_nanos(), 130);
        assert_eq!(model.combine(5).as_nanos(), 60);
        assert_eq!(model.hash(1000).as_nanos(), 5 + 2000);
        // (1000/4=250-byte shards) x 4 data x 6 parity = 6000 byte ops at 0.5 ns.
        assert_eq!(model.erasure_encode(1000, 4, 10).as_nanos(), 3000);
        assert!(model.erasure_decode(1000, 4).as_nanos() > 0);
        assert!(model.merkle_tree(256, 8).as_nanos() > 0);
        assert!(model.merkle_verify(256, 8).as_nanos() > 0);
        assert_eq!(CryptoCostModel::free().hash(1 << 20), ComputeCost::ZERO);
        let sum = ComputeCost::from_nanos(1) + ComputeCost::from_nanos(2);
        assert_eq!(sum.as_nanos(), 3);
        assert!(!sum.is_zero());
        assert_eq!(format!("{sum}"), "3ns");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Batched verification accepts iff per-share verification accepts, for any
            /// scheme, quorum and message.
            #[test]
            fn batch_agrees_with_per_share(
                f in 1usize..5,
                seed in any::<u64>(),
                msg_bytes in proptest::collection::vec(any::<u8>(), 1..64),
            ) {
                let n = 3 * f + 1;
                let t = 2 * f + 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let (scheme, keys) = ThresholdScheme::trusted_setup(t, n, &mut rng);
                let provider = CryptoProvider::new(scheme, CryptoMode::Real, CryptoCostModel::free());
                let msg = hash_bytes(&msg_bytes);
                let shares: Vec<_> = keys
                    .iter()
                    .map(|k| provider.sign_share(k, &msg).0)
                    .collect();
                let per_share_ok = shares.iter().all(|s| provider.verify_share(s, &msg).0);
                let (outcome, _) = provider.verify_shares_batch(&shares, &msg);
                prop_assert_eq!(outcome.is_valid(), per_share_ok);
                prop_assert!(outcome.is_valid());
            }

            /// A single corrupted share in an otherwise-valid batch is located (or the
            /// batch rejected) — never silently accepted.
            #[test]
            fn corrupted_share_is_never_accepted(
                f in 1usize..5,
                seed in any::<u64>(),
                victim in any::<usize>(),
                delta in 1u64..1_000_000,
                msg_bytes in proptest::collection::vec(any::<u8>(), 1..64),
            ) {
                let n = 3 * f + 1;
                let t = 2 * f + 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let (scheme, keys) = ThresholdScheme::trusted_setup(t, n, &mut rng);
                let provider = CryptoProvider::new(scheme, CryptoMode::Real, CryptoCostModel::free());
                let msg = hash_bytes(&msg_bytes);
                let mut shares: Vec<_> = keys
                    .iter()
                    .map(|k| provider.sign_share(k, &msg).0)
                    .collect();
                let victim = victim % shares.len();
                shares[victim].value = shares[victim].value + Fp::new(delta);
                let corrupted_signer = shares[victim].signer;
                let (outcome, _) = provider.verify_shares_batch(&shares, &msg);
                match outcome {
                    BatchOutcome::AllValid => prop_assert!(false, "corrupted batch accepted"),
                    BatchOutcome::Invalid(signers) => {
                        prop_assert_eq!(signers, vec![corrupted_signer]);
                    }
                }
            }

            /// Metered and real combines agree bit-for-bit over any valid quorum.
            #[test]
            fn metered_real_combine_agree(
                f in 1usize..5,
                seed in any::<u64>(),
                msg_bytes in proptest::collection::vec(any::<u8>(), 1..64),
            ) {
                let n = 3 * f + 1;
                let t = 2 * f + 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let (scheme, keys) = ThresholdScheme::trusted_setup(t, n, &mut rng);
                let real = CryptoProvider::new(scheme.clone(), CryptoMode::Real, CryptoCostModel::free());
                let metered = CryptoProvider::new(scheme, CryptoMode::Metered, CryptoCostModel::free());
                let msg = hash_bytes(&msg_bytes);
                let shares: Vec<_> = keys
                    .iter()
                    .map(|k| real.sign_share(k, &msg).0)
                    .collect();
                let (a, cost_a) = real.combine_preverified(&shares[..t], &msg);
                let (b, cost_b) = metered.combine_preverified(&shares[..t], &msg);
                prop_assert_eq!(a.unwrap(), b.unwrap());
                prop_assert_eq!(cost_a, cost_b);
            }
        }
    }
}
