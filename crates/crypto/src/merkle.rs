//! Merkle trees over arbitrary leaves, with inclusion proofs.
//!
//! The datablock retrieval mechanism (paper, Algorithm 3) erasure-codes a datablock into
//! `n` chunks, builds a Merkle tree over the chunks, and ships each chunk together with
//! its Merkle proof so the querier can validate chunks individually before decoding.

use crate::hash::{hash_bytes, hash_pair, Digest};

/// Domain separation prefixes so that a leaf hash can never collide with an interior
/// node hash (second-preimage hardening, as in RFC 6962).
const LEAF_PREFIX: &[u8] = &[0x00];
const NODE_PREFIX: &[u8] = &[0x01];

fn hash_leaf(data: &[u8]) -> Digest {
    let mut bytes = Vec::with_capacity(1 + data.len());
    bytes.extend_from_slice(LEAF_PREFIX);
    bytes.extend_from_slice(data);
    hash_bytes(&bytes)
}

fn hash_node(left: &Digest, right: &Digest) -> Digest {
    let mut bytes = Vec::with_capacity(1 + 64);
    bytes.extend_from_slice(NODE_PREFIX);
    bytes.extend_from_slice(left.as_bytes());
    bytes.extend_from_slice(right.as_bytes());
    hash_bytes(&bytes)
}

/// A full Merkle tree, retaining every level so proofs can be generated for any leaf.
///
/// ```
/// use leopard_crypto::MerkleTree;
///
/// let leaves: Vec<Vec<u8>> = (0u8..7).map(|i| vec![i; 16]).collect();
/// let tree = MerkleTree::from_leaves(leaves.iter().map(|l| l.as_slice()));
/// let proof = tree.prove(3).unwrap();
/// assert!(proof.verify(tree.root(), &leaves[3]));
/// assert!(!proof.verify(tree.root(), &leaves[4]));
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` are the leaf hashes; the last level contains the single root.
    levels: Vec<Vec<Digest>>,
    leaf_count: usize,
}

impl MerkleTree {
    /// Builds a tree over the given leaves.
    ///
    /// An empty iterator yields a tree whose root is [`Digest::zero`]. Odd levels are
    /// handled by promoting the last node unchanged (Bitcoin-style duplication is avoided
    /// to keep proofs unambiguous).
    pub fn from_leaves<'a>(leaves: impl IntoIterator<Item = &'a [u8]>) -> Self {
        let leaf_hashes: Vec<Digest> = leaves.into_iter().map(hash_leaf).collect();
        let leaf_count = leaf_hashes.len();
        if leaf_count == 0 {
            return Self {
                levels: vec![vec![Digest::zero()]],
                leaf_count: 0,
            };
        }
        let mut levels = vec![leaf_hashes];
        while levels.last().expect("at least one level").len() > 1 {
            let prev = levels.last().expect("at least one level");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(hash_node(&pair[0], &pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            levels.push(next);
        }
        Self { levels, leaf_count }
    }

    /// The Merkle root.
    pub fn root(&self) -> Digest {
        self.levels
            .last()
            .and_then(|level| level.first())
            .copied()
            .unwrap_or_else(Digest::zero)
    }

    /// Number of leaves the tree was built over.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Generates the inclusion proof for the leaf at `index`, or `None` if out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count {
            return None;
        }
        let mut siblings = Vec::new();
        let mut position = index;
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sibling_index = position ^ 1;
            if sibling_index < level.len() {
                siblings.push(Some(level[sibling_index]));
            } else {
                // Last node of an odd level was promoted unchanged.
                siblings.push(None);
            }
            position /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            siblings,
        })
    }
}

/// An inclusion proof for a single leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    leaf_index: usize,
    /// Sibling hash at each level from the leaves towards the root; `None` where the
    /// node was promoted without a sibling.
    siblings: Vec<Option<Digest>>,
}

impl MerkleProof {
    /// Index of the leaf this proof is about.
    pub fn leaf_index(&self) -> usize {
        self.leaf_index
    }

    /// Number of sibling hashes carried by the proof.
    pub fn len(&self) -> usize {
        self.siblings.len()
    }

    /// Returns true if the proof carries no siblings (single-leaf tree).
    pub fn is_empty(&self) -> bool {
        self.siblings.is_empty()
    }

    /// Size of the proof in bytes when serialised: one digest per present sibling plus a
    /// small header. Used for communication-cost accounting in the simulator.
    pub fn wire_size(&self) -> usize {
        8 + self
            .siblings
            .iter()
            .map(|s| if s.is_some() { 33 } else { 1 })
            .sum::<usize>()
    }

    /// The wire size a proof for leaf `index` of a `leaf_count`-leaf tree *would* have,
    /// computed without building the tree. Walks the level sizes arithmetically:
    /// a level of `len` nodes has a present sibling for `position` iff `position ^ 1`
    /// is still inside the level (the last node of an odd level is promoted without a
    /// sibling and contributes only the 1-byte `None` marker).
    ///
    /// The metered retrieval path uses this so a fabricated response is charged exactly
    /// the bytes a real erasure-coded response would occupy. Returns `None` if `index`
    /// is out of range.
    pub fn wire_size_for(leaf_count: usize, index: usize) -> Option<usize> {
        if index >= leaf_count {
            return None;
        }
        let mut size = 8;
        let mut len = leaf_count;
        let mut position = index;
        while len > 1 {
            let sibling = position ^ 1;
            size += if sibling < len { 33 } else { 1 };
            position /= 2;
            len = len.div_ceil(2);
        }
        Some(size)
    }

    /// Verifies that `leaf_data` is the leaf at [`Self::leaf_index`] of the tree with the
    /// given `root`.
    pub fn verify(&self, root: Digest, leaf_data: &[u8]) -> bool {
        let mut acc = hash_leaf(leaf_data);
        let mut position = self.leaf_index;
        for sibling in &self.siblings {
            match sibling {
                Some(sib) => {
                    acc = if position % 2 == 0 {
                        hash_node(&acc, sib)
                    } else {
                        hash_node(sib, &acc)
                    };
                }
                None => {
                    // Promoted node: hash passes through unchanged.
                }
            }
            position /= 2;
        }
        acc == root
    }
}

/// Convenience helper combining [`hash_pair`] for callers that only need a two-leaf
/// commitment (e.g. chaining block hashes).
pub fn commit_pair(left: &Digest, right: &Digest) -> Digest {
    hash_pair(left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_has_zero_root() {
        let tree = MerkleTree::from_leaves(std::iter::empty());
        assert_eq!(tree.root(), Digest::zero());
        assert_eq!(tree.leaf_count(), 0);
        assert!(tree.prove(0).is_none());
    }

    #[test]
    fn single_leaf_tree() {
        let data = leaves(1);
        let tree = MerkleTree::from_leaves(data.iter().map(|l| l.as_slice()));
        let proof = tree.prove(0).unwrap();
        assert!(proof.is_empty());
        assert!(proof.verify(tree.root(), &data[0]));
        assert!(!proof.verify(tree.root(), b"other"));
    }

    #[test]
    fn all_leaves_provable_for_various_sizes() {
        for n in 1..=33 {
            let data = leaves(n);
            let tree = MerkleTree::from_leaves(data.iter().map(|l| l.as_slice()));
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(tree.root(), leaf), "n={n} leaf={i}");
            }
            assert!(tree.prove(n).is_none());
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf_or_root() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaves(data.iter().map(|l| l.as_slice()));
        let proof = tree.prove(2).unwrap();
        assert!(!proof.verify(tree.root(), &data[3]));
        let other = MerkleTree::from_leaves(leaves(9).iter().map(|l| l.as_slice()));
        assert!(!proof.verify(other.root(), &data[2]));
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A single leaf equal to the concatenation of two hashed children must not
        // produce the same root as the two-leaf tree.
        let a = leaves(2);
        let two = MerkleTree::from_leaves(a.iter().map(|l| l.as_slice()));
        let forged: Vec<u8> = {
            let l0 = hash_leaf(&a[0]);
            let l1 = hash_leaf(&a[1]);
            let mut v = Vec::new();
            v.extend_from_slice(l0.as_bytes());
            v.extend_from_slice(l1.as_bytes());
            v
        };
        let one = MerkleTree::from_leaves([forged.as_slice()]);
        assert_ne!(two.root(), one.root());
    }

    #[test]
    fn wire_size_for_matches_real_proofs() {
        for n in 1..=66usize {
            let data = leaves(n);
            let tree = MerkleTree::from_leaves(data.iter().map(|l| l.as_slice()));
            for index in 0..n {
                let real = tree.prove(index).unwrap().wire_size();
                assert_eq!(
                    MerkleProof::wire_size_for(n, index),
                    Some(real),
                    "n={n} index={index}"
                );
            }
            assert_eq!(MerkleProof::wire_size_for(n, n), None);
        }
    }

    #[test]
    fn wire_size_is_positive_and_grows_with_depth() {
        let small = MerkleTree::from_leaves(leaves(2).iter().map(|l| l.as_slice()));
        let large = MerkleTree::from_leaves(leaves(64).iter().map(|l| l.as_slice()));
        let ps = small.prove(0).unwrap().wire_size();
        let pl = large.prove(0).unwrap().wire_size();
        assert!(ps > 0);
        assert!(pl > ps);
    }

    proptest! {
        #[test]
        fn random_trees_verify_and_reject(
            leaf_payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..40),
            tweak_index in any::<usize>(),
        ) {
            let tree = MerkleTree::from_leaves(leaf_payloads.iter().map(|l| l.as_slice()));
            for (i, leaf) in leaf_payloads.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                prop_assert!(proof.verify(tree.root(), leaf));
                // A tampered leaf must not verify under the same proof.
                let mut tampered = leaf.clone();
                if tampered.is_empty() {
                    tampered.push(1);
                } else {
                    let idx = tweak_index % tampered.len();
                    tampered[idx] ^= 0xff;
                }
                prop_assert!(!proof.verify(tree.root(), &tampered));
            }
        }
    }
}
