//! Simulated time, in nanoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in nanoseconds since the start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the start of the simulation.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Converts to microseconds (truncating).
    pub fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// Converts to milliseconds (truncating).
    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Converts to seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference between two instants.
    pub fn saturating_since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    pub fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Builds a duration from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be non-negative");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The transmission time of `bytes` over a link of `bits_per_second` capacity.
    ///
    /// An unlimited link (`bits_per_second == 0`, by convention) transmits instantly.
    pub fn transmission(bytes: usize, bits_per_second: u64) -> Self {
        if bits_per_second == 0 {
            return SimDuration::ZERO;
        }
        let bits = bytes as u128 * 8;
        let nanos = bits * 1_000_000_000u128 / bits_per_second as u128;
        SimDuration(nanos as u64)
    }

    /// Duration in nanoseconds.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Duration in microseconds (truncating).
    pub fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// Duration in milliseconds (truncating).
    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration in seconds as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the duration by an integer factor.
    pub fn saturating_mul(&self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let t = SimTime(1_500_000_000);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t.as_millis(), 1_500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);

        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis(), 250);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime(100) + SimDuration(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t - SimTime(100), SimDuration(50));
        assert_eq!(SimTime(10) - SimTime(100), SimDuration(0));
        assert_eq!(SimTime(150).saturating_since(SimTime(100)), SimDuration(50));
        assert_eq!(SimDuration(5) + SimDuration(7), SimDuration(12));
        assert_eq!(SimDuration(5).saturating_mul(3), SimDuration(15));
    }

    #[test]
    fn transmission_time_matches_bandwidth() {
        // 1250 bytes = 10_000 bits over 10 Mbps = 1 ms.
        let d = SimDuration::transmission(1250, 10_000_000);
        assert_eq!(d.as_micros(), 1_000);
        // Unlimited link.
        assert_eq!(SimDuration::transmission(1_000_000, 0), SimDuration::ZERO);
        // 9.8 Gbps, 128 bytes: about 104 ns.
        let d = SimDuration::transmission(128, 9_800_000_000);
        assert!(d.as_nanos() >= 100 && d.as_nanos() <= 110, "{d:?}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
