//! Fault injection: message filters, crash/restart schedules and region partitions.
//!
//! The paper's Byzantine experiments need three kinds of interference below the
//! protocol level: *selective dissemination* (a faulty replica sends its datablocks
//! only to a subset of replicas — §IV "Datablock Retrieval"), *crashes* (the leader is
//! stopped to trigger a view-change — §VI-D, optionally restarting later to exercise
//! the state-transfer catch-up path), and *region partitions* (a whole region of a
//! [`crate::network::Topology`] is cut off for a time window and healed, the classic
//! partial-synchrony disruption). Protocol-level misbehaviour (equivocation, vote
//! withholding) is implemented inside the protocol crates; this module only interferes
//! with message delivery.

use crate::time::{SimDuration, SimTime};
use leopard_types::NodeId;

/// The severed windows of a flapping partition: `cycles` repetitions of
/// `period`, each severed for the first `duty` fraction and healed for the rest.
/// Cycle `k` is severed over `[start + k·period, start + k·period + duty·period)`.
/// Shared by [`FaultPlan::with_flapping_partition`] and the harness scenario builder
/// so both validate identically.
///
/// # Panics
///
/// Panics if `cycles` is zero, `period` is zero, or `duty` is outside `(0, 1)`
/// (a full-duty cycle would fuse adjacent windows into one long partition and a
/// zero-duty cycle would sever nothing — both are almost certainly configuration
/// mistakes).
pub fn flapping_windows(
    start: SimTime,
    period: SimDuration,
    duty: f64,
    cycles: usize,
) -> Vec<(SimTime, SimTime)> {
    assert!(cycles > 0, "flapping_windows: need at least one cycle");
    assert!(period.as_nanos() > 0, "flapping_windows: period must be positive");
    assert!(
        duty > 0.0 && duty < 1.0,
        "flapping_windows: duty fraction {duty} must lie strictly between 0 and 1"
    );
    let severed = (period.as_nanos() as f64 * duty) as u64;
    assert!(
        severed > 0 && severed < period.as_nanos(),
        "flapping_windows: duty fraction {duty} of period {period:?} leaves no whole \
         nanosecond severed or healed"
    );
    (0..cycles)
        .map(|k| {
            let at = start + SimDuration::from_nanos(k as u64 * period.as_nanos());
            (at, at + SimDuration::from_nanos(severed))
        })
        .collect()
}

/// The fate of a message decided by a [`FaultPlan`] filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Deliver normally.
    Deliver,
    /// Silently drop the message. The sender still pays the uplink cost (it did send the
    /// bytes); the receiver never sees it.
    Drop,
}

/// One crash window: the node is down from `at` until `until` (or forever when
/// `until` is `None`). While down it neither sends nor receives messages and its
/// timers do not fire; a finite window ends with a restart callback
/// ([`crate::Protocol::on_restart`]) at exactly `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed node.
    pub node: NodeId,
    /// Crash instant (inclusive: the node is already down at `at`).
    pub at: SimTime,
    /// Restart instant (exclusive: the node is back up at `until`), or `None` for a
    /// permanent crash.
    pub until: Option<SimTime>,
}

impl CrashWindow {
    /// True if this window has `node` down at `now`. The single source of truth for
    /// crash coverage: [`FaultPlan::is_crashed`] and the simulator's parallel batch
    /// workers (which only see the plain crash-window slice, never the full plan)
    /// both go through it.
    pub fn covers(&self, node: NodeId, now: SimTime) -> bool {
        self.node == node && now >= self.at && self.until.map_or(true, |until| now < until)
    }
}

/// One region-level partition window: all traffic between `region_a` and `region_b`
/// is dropped for `at <= now < until` (symmetric, both directions). Senders still pay
/// the uplink cost for the lost bytes, like any other [`MessageFate::Drop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First region of the severed pair.
    pub region_a: usize,
    /// Second region of the severed pair.
    pub region_b: usize,
    /// Start of the partition (inclusive).
    pub at: SimTime,
    /// Heal instant (exclusive: traffic flows again at `until`).
    pub until: SimTime,
}

impl PartitionWindow {
    /// True if this window severs the (unordered) region pair at `now`.
    fn severs(&self, now: SimTime, a: usize, b: usize) -> bool {
        let pair_matches = (self.region_a == a && self.region_b == b)
            || (self.region_a == b && self.region_b == a);
        pair_matches && now >= self.at && now < self.until
    }
}

/// A plan describing which messages to drop, which nodes crash (and restart) when,
/// and which region pairs are partitioned over which windows.
///
/// The filter closure receives `(now, from, to, category, wire_size)` so that selective
/// attacks can discriminate by message category without depending on the concrete
/// protocol message type.
pub struct FaultPlan {
    #[allow(clippy::type_complexity)]
    filter: Option<Box<dyn FnMut(SimTime, NodeId, NodeId, &'static str, usize) -> MessageFate + Send>>,
    crashes: Vec<CrashWindow>,
    partitions: Vec<PartitionWindow>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("has_filter", &self.filter.is_some())
            .field("crashes", &self.crashes)
            .field("partitions", &self.partitions)
            .finish()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// No faults: every message is delivered, no node crashes, no partitions.
    pub fn none() -> Self {
        Self {
            filter: None,
            crashes: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Installs a message filter.
    pub fn with_filter<F>(mut self, filter: F) -> Self
    where
        F: FnMut(SimTime, NodeId, NodeId, &'static str, usize) -> MessageFate + Send + 'static,
    {
        self.filter = Some(Box::new(filter));
        self
    }

    /// Schedules `node` to crash permanently at `at`: from that instant it neither
    /// sends nor receives messages and its timers stop firing.
    ///
    /// Node-range validation happens in [`crate::Simulation::new`], where `n` is known.
    pub fn with_crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.crashes.push(CrashWindow { node, at, until: None });
        self
    }

    /// Schedules `node` to crash at `at` and restart at `until`: the window behaves
    /// like [`Self::with_crash`] while it lasts, then the engine calls
    /// [`crate::Protocol::on_restart`] on the node at `until` and delivery resumes.
    /// Timers set before the crash never fire after the restart (the process died);
    /// the restart callback must re-arm whatever it needs.
    ///
    /// # Panics
    ///
    /// Panics if the window is inverted (`until <= at`). Node-range validation happens
    /// in [`crate::Simulation::new`], where `n` is known.
    pub fn with_crash_restart(mut self, node: NodeId, at: SimTime, until: SimTime) -> Self {
        assert!(
            until > at,
            "with_crash_restart: restart instant {until} must lie after the crash instant {at}"
        );
        self.crashes.push(CrashWindow {
            node,
            at,
            until: Some(until),
        });
        self
    }

    /// Severs all traffic between `region_a` and `region_b` (symmetric) for
    /// `from <= now < until` — a full region partition healed at `until`. To isolate a
    /// region of a `k`-region topology entirely, add the `k - 1` pairwise windows.
    ///
    /// # Panics
    ///
    /// Panics if the window is inverted (`until <= from`) or the two regions are the
    /// same. Region-range validation happens in [`crate::Simulation::new`], where the
    /// topology is known.
    pub fn with_partition(
        mut self,
        region_a: usize,
        region_b: usize,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        assert!(
            until > from,
            "with_partition: heal instant {until} must lie after the partition instant {from}"
        );
        assert!(
            region_a != region_b,
            "with_partition: cannot partition region {region_a} from itself"
        );
        self.partitions.push(PartitionWindow {
            region_a,
            region_b,
            at: from,
            until,
        });
        self
    }

    /// A flapping link: `cycles` repeated partition/heal windows between `region_a`
    /// and `region_b`, starting at `start`, one per `period`, each severed for the
    /// first `duty` fraction of its period (see [`flapping_windows`]). Repeated
    /// partition/heal cycles stress the state-sync cooldown far harder than one long
    /// partition healed once.
    ///
    /// # Panics
    ///
    /// Panics under the [`flapping_windows`] validity rules, plus the usual
    /// [`Self::with_partition`] rules for each generated window (distinct regions;
    /// region-range validation happens in [`crate::Simulation::new`]).
    pub fn with_flapping_partition(
        mut self,
        region_a: usize,
        region_b: usize,
        start: SimTime,
        period: SimDuration,
        duty: f64,
        cycles: usize,
    ) -> Self {
        for (at, until) in flapping_windows(start, period, duty, cycles) {
            self = self.with_partition(region_a, region_b, at, until);
        }
        self
    }

    /// The selective attack of the paper: every faulty replica (the first `f` non-leader
    /// replicas by convention of the experiments) sends messages of the given category
    /// only to the `keep` lowest-numbered replicas (which include the leader), and drops
    /// that category entirely when it is inbound from honest replicas.
    pub fn selective_attack(
        faulty: Vec<NodeId>,
        category: &'static str,
        keep: usize,
    ) -> Self {
        Self::none().with_filter(move |_now, from, to, cat, _size| {
            if cat != category {
                return MessageFate::Deliver;
            }
            let from_faulty = faulty.contains(&from);
            let to_faulty = faulty.contains(&to);
            if from_faulty && to.as_index() >= keep {
                // Faulty producer only serves a small subset.
                MessageFate::Drop
            } else if to_faulty && !from_faulty {
                // Faulty replicas pretend not to receive honest datablocks.
                MessageFate::Drop
            } else {
                MessageFate::Deliver
            }
        })
    }

    /// Decides the fate of one message.
    pub fn judge(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        category: &'static str,
        wire_size: usize,
    ) -> MessageFate {
        if self.is_crashed(from, now) || self.is_crashed(to, now) {
            return MessageFate::Drop;
        }
        match &mut self.filter {
            Some(filter) => filter(now, from, to, category, wire_size),
            None => MessageFate::Deliver,
        }
    }

    /// True if `node` is down at `now` (inside any crash window; a restarting window
    /// is half-open, so the node is back up exactly at its restart instant).
    pub fn is_crashed(&self, node: NodeId, now: SimTime) -> bool {
        self.crashes.iter().any(|window| window.covers(node, now))
    }

    /// True if the (unordered) region pair `(a, b)` is severed at `now`.
    pub fn is_partitioned(&self, now: SimTime, a: usize, b: usize) -> bool {
        self.partitions.iter().any(|window| window.severs(now, a, b))
    }

    /// True if any partition window is configured (lets the engine skip the region
    /// lookup entirely on partition-free runs).
    pub fn has_partitions(&self) -> bool {
        !self.partitions.is_empty()
    }

    /// The configured crash windows, in insertion order.
    pub fn crash_windows(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// The configured partition windows, in insertion order.
    pub fn partitions(&self) -> &[PartitionWindow] {
        &self.partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_delivers_everything() {
        let mut plan = FaultPlan::none();
        assert_eq!(
            plan.judge(SimTime(0), NodeId(0), NodeId(1), "datablock", 100),
            MessageFate::Deliver
        );
        assert!(!plan.is_crashed(NodeId(0), SimTime(1_000_000)));
        assert!(!plan.is_partitioned(SimTime(0), 0, 1));
        assert!(!plan.has_partitions());
    }

    #[test]
    fn crash_drops_messages_after_the_crash_instant() {
        let mut plan = FaultPlan::none().with_crash(NodeId(2), SimTime(1000));
        assert_eq!(
            plan.judge(SimTime(999), NodeId(2), NodeId(0), "vote", 10),
            MessageFate::Deliver
        );
        assert_eq!(
            plan.judge(SimTime(1000), NodeId(2), NodeId(0), "vote", 10),
            MessageFate::Drop
        );
        assert_eq!(
            plan.judge(SimTime(2000), NodeId(0), NodeId(2), "vote", 10),
            MessageFate::Drop
        );
        assert!(plan.is_crashed(NodeId(2), SimTime(1500)));
        assert_eq!(
            plan.crash_windows(),
            &[CrashWindow {
                node: NodeId(2),
                at: SimTime(1000),
                until: None,
            }]
        );
    }

    #[test]
    fn crash_restart_window_is_half_open() {
        let plan = FaultPlan::none().with_crash_restart(NodeId(1), SimTime(1000), SimTime(5000));
        assert!(!plan.is_crashed(NodeId(1), SimTime(999)));
        assert!(plan.is_crashed(NodeId(1), SimTime(1000)));
        assert!(plan.is_crashed(NodeId(1), SimTime(4999)));
        // Back up exactly at the restart instant.
        assert!(!plan.is_crashed(NodeId(1), SimTime(5000)));
        assert_eq!(plan.crash_windows().len(), 1);
        assert_eq!(plan.crash_windows()[0].until, Some(SimTime(5000)));
    }

    #[test]
    #[should_panic(expected = "with_crash_restart: restart instant")]
    fn inverted_crash_restart_window_panics() {
        let _ = FaultPlan::none().with_crash_restart(NodeId(0), SimTime(5000), SimTime(1000));
    }

    #[test]
    fn partition_windows_sever_symmetrically_and_heal() {
        let mut plan = FaultPlan::none().with_partition(0, 2, SimTime(100), SimTime(200));
        assert!(plan.has_partitions());
        assert!(!plan.is_partitioned(SimTime(99), 0, 2));
        assert!(plan.is_partitioned(SimTime(100), 0, 2));
        // Symmetric: the reversed pair is severed too.
        assert!(plan.is_partitioned(SimTime(150), 2, 0));
        // Other pairs are unaffected.
        assert!(!plan.is_partitioned(SimTime(150), 0, 1));
        assert!(!plan.is_partitioned(SimTime(150), 1, 2));
        // Healed exactly at `until`.
        assert!(!plan.is_partitioned(SimTime(200), 0, 2));
        // The partition check is orthogonal to the message filter.
        assert_eq!(
            plan.judge(SimTime(150), NodeId(0), NodeId(2), "vote", 10),
            MessageFate::Deliver
        );
        assert_eq!(plan.partitions().len(), 1);
    }

    #[test]
    #[should_panic(expected = "with_partition: heal instant")]
    fn inverted_partition_window_panics() {
        let _ = FaultPlan::none().with_partition(0, 1, SimTime(200), SimTime(100));
    }

    #[test]
    #[should_panic(expected = "with_partition: cannot partition region 1 from itself")]
    fn self_partition_panics() {
        let _ = FaultPlan::none().with_partition(1, 1, SimTime(0), SimTime(100));
    }

    #[test]
    fn flapping_partition_severs_and_heals_each_cycle() {
        // 3 cycles of 1000 ns, severed for the first 400 ns of each.
        let plan = FaultPlan::none().with_flapping_partition(
            0,
            1,
            SimTime(2000),
            SimDuration::from_nanos(1000),
            0.4,
            3,
        );
        assert_eq!(plan.partitions().len(), 3);
        for k in 0..3u64 {
            let base = 2000 + k * 1000;
            assert!(!plan.is_partitioned(SimTime(base - 1), 0, 1), "cycle {k} starts early");
            assert!(plan.is_partitioned(SimTime(base), 0, 1), "cycle {k} not severed");
            assert!(plan.is_partitioned(SimTime(base + 399), 0, 1), "cycle {k} healed early");
            assert!(!plan.is_partitioned(SimTime(base + 400), 0, 1), "cycle {k} healed late");
            assert!(!plan.is_partitioned(SimTime(base + 999), 0, 1), "cycle {k} gap severed");
        }
        // Nothing flaps after the last cycle.
        assert!(!plan.is_partitioned(SimTime(5000), 0, 1));
    }

    #[test]
    fn flapping_windows_are_disjoint_and_ordered() {
        // Adjacent windows must never touch: each cycle keeps a healed gap, so the
        // state-sync path genuinely observes a heal edge between severed spans.
        let windows =
            flapping_windows(SimTime(0), SimDuration::from_nanos(10), 0.9, 5);
        assert_eq!(windows.len(), 5);
        for pair in windows.windows(2) {
            assert!(pair[0].1 < pair[1].0, "windows {pair:?} overlap or touch");
        }
        // Duty 0.9 of 10 ns severs 9 ns and heals 1 ns.
        assert_eq!(windows[0], (SimTime(0), SimTime(9)));
        assert_eq!(windows[4], (SimTime(40), SimTime(49)));
    }

    #[test]
    #[should_panic(expected = "flapping_windows: duty fraction")]
    fn full_duty_flapping_panics() {
        let _ = flapping_windows(SimTime(0), SimDuration::from_nanos(1000), 1.0, 2);
    }

    #[test]
    #[should_panic(expected = "flapping_windows: duty fraction")]
    fn zero_duty_flapping_panics() {
        let _ = flapping_windows(SimTime(0), SimDuration::from_nanos(1000), 0.0, 2);
    }

    #[test]
    #[should_panic(expected = "flapping_windows: need at least one cycle")]
    fn zero_cycle_flapping_panics() {
        let _ = flapping_windows(SimTime(0), SimDuration::from_nanos(1000), 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "with_partition: cannot partition region 2 from itself")]
    fn self_region_flapping_panics() {
        let _ = FaultPlan::none().with_flapping_partition(
            2,
            2,
            SimTime(0),
            SimDuration::from_nanos(1000),
            0.5,
            2,
        );
    }

    #[test]
    fn selective_attack_filters_only_the_target_category() {
        let faulty = vec![NodeId(3)];
        let mut plan = FaultPlan::selective_attack(faulty, "datablock", 2);
        // Faulty producer -> low-numbered replica: delivered.
        assert_eq!(
            plan.judge(SimTime(0), NodeId(3), NodeId(0), "datablock", 100),
            MessageFate::Deliver
        );
        // Faulty producer -> high-numbered replica: dropped.
        assert_eq!(
            plan.judge(SimTime(0), NodeId(3), NodeId(2), "datablock", 100),
            MessageFate::Drop
        );
        // Honest producer -> faulty replica: dropped (pretends not to receive).
        assert_eq!(
            plan.judge(SimTime(0), NodeId(1), NodeId(3), "datablock", 100),
            MessageFate::Drop
        );
        // Other categories unaffected.
        assert_eq!(
            plan.judge(SimTime(0), NodeId(3), NodeId(2), "vote", 48),
            MessageFate::Deliver
        );
        // Honest to honest unaffected.
        assert_eq!(
            plan.judge(SimTime(0), NodeId(0), NodeId(2), "datablock", 100),
            MessageFate::Deliver
        );
    }

    #[test]
    fn custom_filter_sees_all_fields() {
        let mut plan = FaultPlan::none().with_filter(|now, from, to, category, size| {
            if now >= SimTime(500) && from == NodeId(0) && to == NodeId(1) && category == "x" && size > 10 {
                MessageFate::Drop
            } else {
                MessageFate::Deliver
            }
        });
        assert_eq!(
            plan.judge(SimTime(600), NodeId(0), NodeId(1), "x", 11),
            MessageFate::Drop
        );
        assert_eq!(
            plan.judge(SimTime(600), NodeId(0), NodeId(1), "x", 5),
            MessageFate::Deliver
        );
        assert_eq!(
            plan.judge(SimTime(400), NodeId(0), NodeId(1), "x", 11),
            MessageFate::Deliver
        );
    }
}
