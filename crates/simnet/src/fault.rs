//! Fault injection: message filters and crash schedules.
//!
//! The paper's Byzantine experiments need two kinds of interference below the protocol
//! level: *selective dissemination* (a faulty replica sends its datablocks only to a
//! subset of replicas — §IV "Datablock Retrieval") and *crashes* (the leader is stopped
//! to trigger a view-change — §VI-D). Protocol-level misbehaviour (equivocation, vote
//! withholding) is implemented inside the protocol crates; this module only interferes
//! with message delivery.

use crate::time::SimTime;
use leopard_types::NodeId;

/// The fate of a message decided by a [`FaultPlan`] filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Deliver normally.
    Deliver,
    /// Silently drop the message. The sender still pays the uplink cost (it did send the
    /// bytes); the receiver never sees it.
    Drop,
}

/// A plan describing which messages to drop and which nodes crash when.
///
/// The filter closure receives `(now, from, to, category, wire_size)` so that selective
/// attacks can discriminate by message category without depending on the concrete
/// protocol message type.
pub struct FaultPlan {
    #[allow(clippy::type_complexity)]
    filter: Option<Box<dyn FnMut(SimTime, NodeId, NodeId, &'static str, usize) -> MessageFate + Send>>,
    crashes: Vec<(NodeId, SimTime)>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("has_filter", &self.filter.is_some())
            .field("crashes", &self.crashes)
            .finish()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// No faults: every message is delivered, no node crashes.
    pub fn none() -> Self {
        Self {
            filter: None,
            crashes: Vec::new(),
        }
    }

    /// Installs a message filter.
    pub fn with_filter<F>(mut self, filter: F) -> Self
    where
        F: FnMut(SimTime, NodeId, NodeId, &'static str, usize) -> MessageFate + Send + 'static,
    {
        self.filter = Some(Box::new(filter));
        self
    }

    /// Schedules `node` to crash at `at`: from that instant it neither sends nor
    /// receives messages and its timers stop firing.
    pub fn with_crash(mut self, node: NodeId, at: SimTime) -> Self {
        self.crashes.push((node, at));
        self
    }

    /// The selective attack of the paper: every faulty replica (the first `f` non-leader
    /// replicas by convention of the experiments) sends messages of the given category
    /// only to the `keep` lowest-numbered replicas (which include the leader), and drops
    /// that category entirely when it is inbound from honest replicas.
    pub fn selective_attack(
        faulty: Vec<NodeId>,
        category: &'static str,
        keep: usize,
    ) -> Self {
        Self::none().with_filter(move |_now, from, to, cat, _size| {
            if cat != category {
                return MessageFate::Deliver;
            }
            let from_faulty = faulty.contains(&from);
            let to_faulty = faulty.contains(&to);
            if from_faulty && to.as_index() >= keep {
                // Faulty producer only serves a small subset.
                MessageFate::Drop
            } else if to_faulty && !from_faulty {
                // Faulty replicas pretend not to receive honest datablocks.
                MessageFate::Drop
            } else {
                MessageFate::Deliver
            }
        })
    }

    /// Decides the fate of one message.
    pub fn judge(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        category: &'static str,
        wire_size: usize,
    ) -> MessageFate {
        if self.is_crashed(from, now) || self.is_crashed(to, now) {
            return MessageFate::Drop;
        }
        match &mut self.filter {
            Some(filter) => filter(now, from, to, category, wire_size),
            None => MessageFate::Deliver,
        }
    }

    /// True if `node` has crashed by time `now`.
    pub fn is_crashed(&self, node: NodeId, now: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|&(crashed, at)| crashed == node && now >= at)
    }

    /// The configured crash schedule.
    pub fn crashes(&self) -> &[(NodeId, SimTime)] {
        &self.crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_delivers_everything() {
        let mut plan = FaultPlan::none();
        assert_eq!(
            plan.judge(SimTime(0), NodeId(0), NodeId(1), "datablock", 100),
            MessageFate::Deliver
        );
        assert!(!plan.is_crashed(NodeId(0), SimTime(1_000_000)));
    }

    #[test]
    fn crash_drops_messages_after_the_crash_instant() {
        let mut plan = FaultPlan::none().with_crash(NodeId(2), SimTime(1000));
        assert_eq!(
            plan.judge(SimTime(999), NodeId(2), NodeId(0), "vote", 10),
            MessageFate::Deliver
        );
        assert_eq!(
            plan.judge(SimTime(1000), NodeId(2), NodeId(0), "vote", 10),
            MessageFate::Drop
        );
        assert_eq!(
            plan.judge(SimTime(2000), NodeId(0), NodeId(2), "vote", 10),
            MessageFate::Drop
        );
        assert!(plan.is_crashed(NodeId(2), SimTime(1500)));
        assert_eq!(plan.crashes(), &[(NodeId(2), SimTime(1000))]);
    }

    #[test]
    fn selective_attack_filters_only_the_target_category() {
        let faulty = vec![NodeId(3)];
        let mut plan = FaultPlan::selective_attack(faulty, "datablock", 2);
        // Faulty producer -> low-numbered replica: delivered.
        assert_eq!(
            plan.judge(SimTime(0), NodeId(3), NodeId(0), "datablock", 100),
            MessageFate::Deliver
        );
        // Faulty producer -> high-numbered replica: dropped.
        assert_eq!(
            plan.judge(SimTime(0), NodeId(3), NodeId(2), "datablock", 100),
            MessageFate::Drop
        );
        // Honest producer -> faulty replica: dropped (pretends not to receive).
        assert_eq!(
            plan.judge(SimTime(0), NodeId(1), NodeId(3), "datablock", 100),
            MessageFate::Drop
        );
        // Other categories unaffected.
        assert_eq!(
            plan.judge(SimTime(0), NodeId(3), NodeId(2), "vote", 48),
            MessageFate::Deliver
        );
        // Honest to honest unaffected.
        assert_eq!(
            plan.judge(SimTime(0), NodeId(0), NodeId(2), "datablock", 100),
            MessageFate::Deliver
        );
    }

    #[test]
    fn custom_filter_sees_all_fields() {
        let mut plan = FaultPlan::none().with_filter(|now, from, to, category, size| {
            if now >= SimTime(500) && from == NodeId(0) && to == NodeId(1) && category == "x" && size > 10 {
                MessageFate::Drop
            } else {
                MessageFate::Deliver
            }
        });
        assert_eq!(
            plan.judge(SimTime(600), NodeId(0), NodeId(1), "x", 11),
            MessageFate::Drop
        );
        assert_eq!(
            plan.judge(SimTime(600), NodeId(0), NodeId(1), "x", 5),
            MessageFate::Deliver
        );
        assert_eq!(
            plan.judge(SimTime(400), NodeId(0), NodeId(1), "x", 11),
            MessageFate::Deliver
        );
    }
}
