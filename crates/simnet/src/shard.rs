//! Sharded event queues with a deterministic merge.
//!
//! The single global `BinaryHeap` of the old engine made every push and pop pay
//! `O(log N)` sifts over the *whole* in-flight event population — at n ≥ 600 that is
//! hundreds of thousands of 48-byte entries being moved on every operation. This
//! module partitions events by **owning node** — the node whose state the event will
//! touch when it fires (`to` for arrivals and deliveries, the timer's node, the
//! started/restarted node) — into one small per-shard heap each, and merges the shard
//! heads through a flat **winner tree** (tournament tree) that preserves the engine's
//! exact `(time, seq)` total order.
//!
//! # Merge order
//!
//! Every queued event carries the globally unique, monotonically increasing `seq`
//! assigned at push time, exactly as in the single-heap engine. Each shard's current
//! head key is packed into a `u128` (`time << 64 | seq`, empty = `u128::MAX`) and the
//! winner tree holds, per internal node, the shard index with the smaller key of its
//! subtree; `tree[1]` is the shard owning the globally minimal event — the same event
//! the single heap would pop, because `(time, seq)` keys are unique. Updating one
//! shard's head replays only its leaf-to-root path: `log2(shards)` integer compares
//! on a flat 8 KB array, with none of the sift-down element movement or stale-entry
//! bookkeeping a candidate heap would need.
//!
//! # Conservative lookahead (rounds, not runs)
//!
//! The classical conservative-lookahead argument — a cross-shard event created at
//! `t` cannot land before `t + minimum cross-shard latency`, and any event created
//! at exactly that instant carries a larger `seq` and sorts after everything already
//! queued — is applied at *round* granularity by the parallel engine (`crate::sim`):
//! every shard whose head lies inside the horizon is drained concurrently. The
//! sequential engine deliberately does **not** exploit it per shard: a run-based API
//! that drained one shard without consulting the merge tree was measured at 1.1–1.3
//! events per run on the fig9xl scales (saturated shards interleave at nearly
//! identical instants, so the cross-shard bound kills a run immediately) and its
//! park/restore leaf repairs cost more than the plain merge pop they replaced — see
//! [`ShardedQueue::pop_min`].

use crate::sim::{EventKind, QueuedEvent};
use crate::time::SimTime;
use leopard_types::NodeId;
use std::collections::VecDeque;

/// The `(time, seq)` key that totally orders events; `seq` is globally unique.
pub(crate) type EventKey = (SimTime, u64);

/// Packs an event key into a single integer preserving `(time, seq)` order.
#[inline]
pub(crate) fn pack(at: SimTime, seq: u64) -> u128 {
    (u128::from(at.as_nanos()) << 64) | u128::from(seq)
}

/// Unpacks a [`pack`]ed key.
#[inline]
pub(crate) fn unpack(key: u128) -> EventKey {
    (SimTime((key >> 64) as u64), key as u64)
}

/// The packed key of an empty shard; no real event reaches it (`seq` would have to
/// be `u64::MAX` at time `u64::MAX`).
const EMPTY: u128 = u128::MAX;

/// A 4-ary min-heap with the comparison keys split from the event payloads.
///
/// Three layout decisions, all for the cache: a node's four children share one
/// 64-byte line of the `keys` array, so a sift-down touches one line per level and
/// half as many levels as a binary heap; the 16-byte packed keys live apart from the
/// `EventKind` payloads, so the search path reads only `keys`; and both sifts find
/// the moving entry's final position by **walking the key array alone** before any
/// payload is touched — the key chain is then shifted with plain stores and the
/// payloads rotated along the same (already cache-hot) path. Combined with the
/// PR 10 fan-out compression (queue-resident `Arrive`/`Deliver` payloads shrank to a
/// `{fanout: u32, to}` handle into a side table — see `crate::fanout` — making
/// `EventKind` a 24-byte `Copy` value with no `Arc` refcounts and no drop glue), this
/// trims the remaining DRAM-bound payload traffic the PR 8 profile showed: at
/// n ≥ 1000 a shard heap holds several hundred in-flight arrivals and this sift walk
/// is the hottest data movement in the engine. (An arena/slab indirection that never
/// moves payloads at all was measured and rejected: with per-shard heaps this
/// shallow, the extra random-access load per pop costs more than the rotation it
/// saves.)
pub(crate) struct QuadHeap {
    keys: Vec<u128>,
    kinds: Vec<EventKind>,
}

impl QuadHeap {
    const fn new() -> Self {
        Self {
            keys: Vec::new(),
            kinds: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn peek_key(&self) -> Option<u128> {
        self.keys.first().copied()
    }

    fn push(&mut self, key: u128, kind: EventKind) {
        // Grow by 25% instead of Vec's doubling: a saturated large-n run keeps
        // thousands of shard heaps at their high-water mark, and the halved
        // overallocation is worth far more than the extra (amortized, memcpy-only)
        // reallocations it costs — see the RSS notes in DESIGN.md §10.
        if self.keys.len() == self.keys.capacity() {
            let grow = (self.keys.len() / 4).max(32);
            self.keys.reserve_exact(grow);
            self.kinds.reserve_exact(grow);
        }
        // Hole-based sift-up: append a hole, shift ancestors down into it, write the
        // new entry once at its final slot. `kinds` grows with a placeholder read
        // from the hole's final position, so no `unsafe` and no `Option` tax.
        self.keys.push(key);
        self.kinds.push(kind);
        let mut i = self.keys.len() - 1;
        let mut hole = i;
        while hole > 0 {
            let parent = (hole - 1) / 4;
            if self.keys[parent] <= key {
                break;
            }
            hole = parent;
        }
        if hole < i {
            // Rotate the displaced ancestors down in one pass: the path
            // root-ward from `i` to `hole` is exactly the ancestor chain.
            while i > hole {
                let parent = (i - 1) / 4;
                self.keys[i] = self.keys[parent];
                self.kinds.swap(i, parent);
                i = parent;
            }
            self.keys[hole] = key;
        }
    }

    pub(crate) fn pop(&mut self) -> Option<(u128, EventKind)> {
        let len = self.keys.len();
        if len == 0 {
            return None;
        }
        self.keys.swap(0, len - 1);
        self.kinds.swap(0, len - 1);
        let key = self.keys.pop().expect("nonempty");
        let kind = self.kinds.pop().expect("nonempty");
        let len = len - 1;
        if len > 0 {
            // Hole-based sift-down of the former tail: find its final position by
            // walking keys only, then shift the winning children up the path.
            let tail_key = self.keys[0];
            let mut path = [0usize; 32];
            let mut depth = 0;
            let mut i = 0;
            loop {
                let first = 4 * i + 1;
                if first >= len {
                    break;
                }
                let fence = (first + 4).min(len);
                let mut min = first;
                for child in first + 1..fence {
                    if self.keys[child] < self.keys[min] {
                        min = child;
                    }
                }
                if tail_key <= self.keys[min] {
                    break;
                }
                path[depth] = min;
                depth += 1;
                i = min;
            }
            let mut hole = 0;
            for &next in &path[..depth] {
                self.keys[hole] = self.keys[next];
                self.kinds.swap(hole, next);
                hole = next;
            }
            self.keys[hole] = tail_key;
        }
        Some((key, kind))
    }
}

/// One shard's event store: a [`QuadHeap`] for arbitrarily-ordered events plus a
/// FIFO for the **downlink delivery stream**, which needs no heap at all.
///
/// Every `Arrive` dispatch reserves the receiver's downlink FIFO
/// (`delivery = max(arrival, downlink_free) + tx`, then `downlink_free = delivery`)
/// and `Arrive` events of one shard fire in `(time, seq)` order — so the matured
/// `Deliver` events of a shard are *created* with nondecreasing `(time, seq)` keys.
/// Pushing them into the heap just to pop them in insertion order paid two key
/// sifts for nothing; they are ≈ 46% of all queued events in a saturated large-`n`
/// run. The FIFO stores them as split key/fanout streams (`to` is the shard
/// itself), and the shard's head is the smaller of the heap head and the FIFO
/// front. Self-deliveries (whose completion instants are *not* monotone — compute
/// lanes can reorder them) and everything else stay in the heap.
pub(crate) struct Shard {
    heap: QuadHeap,
    /// Packed `(time, seq)` keys of the deliver FIFO, nondecreasing.
    fifo_keys: VecDeque<u128>,
    /// The matching fan-out table handles (`crate::fanout`), in lockstep.
    fifo_fanouts: VecDeque<u32>,
    /// The owning node: the `to` of every FIFO delivery.
    node: u32,
}

impl Shard {
    fn new(node: u32) -> Self {
        Self {
            heap: QuadHeap::new(),
            fifo_keys: VecDeque::new(),
            fifo_fanouts: VecDeque::new(),
            node,
        }
    }

    /// The shard's minimal key over both stores.
    #[inline]
    pub(crate) fn peek_key(&self) -> Option<u128> {
        match (self.heap.peek_key(), self.fifo_keys.front().copied()) {
            (Some(heap), Some(fifo)) => Some(heap.min(fifo)),
            (Some(heap), None) => Some(heap),
            (None, Some(fifo)) => Some(fifo),
            (None, None) => None,
        }
    }

    /// Pops the shard's minimal event. FIFO deliveries win ties by construction:
    /// keys are unique, so a tie cannot happen and the comparison is strict.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(u128, EventKind)> {
        let take_fifo = match (self.heap.peek_key(), self.fifo_keys.front()) {
            (Some(heap), Some(&fifo)) => fifo < heap,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => return None,
        };
        if take_fifo {
            let key = self.fifo_keys.pop_front().expect("peeked front");
            let fanout = self.fifo_fanouts.pop_front().expect("lockstep");
            Some((
                key,
                EventKind::Deliver {
                    fanout,
                    to: NodeId(self.node),
                },
            ))
        } else {
            self.heap.pop()
        }
    }

    #[inline]
    fn push(&mut self, key: u128, kind: EventKind) {
        self.heap.push(key, kind);
    }

    /// Appends a matured downlink delivery; keys must arrive nondecreasing.
    #[inline]
    fn push_deliver(&mut self, key: u128, fanout: u32) {
        if self.fifo_keys.len() == self.fifo_keys.capacity() {
            let grow = (self.fifo_keys.len() / 4).max(32);
            self.fifo_keys.reserve_exact(grow);
            self.fifo_fanouts.reserve_exact(grow);
        }
        debug_assert!(
            self.fifo_keys.back().map_or(true, |&back| back <= key),
            "downlink deliveries of a shard must be created in (time, seq) order"
        );
        self.fifo_keys.push_back(key);
        self.fifo_fanouts.push_back(fanout);
    }
}

/// A set of per-shard event stores merged through a flat winner tree.
pub(crate) struct ShardedQueue {
    /// One store per owning node.
    shards: Vec<Shard>,
    /// Per-shard packed head key (`EMPTY` when the shard has no events or its leaf
    /// is parked by an active run).
    keys: Vec<u128>,
    /// Winner tree over `keys`: `tree[j]` for `1 ≤ j < leaves` is the shard index
    /// with the smaller key among the leaves of `j`'s subtree; leaf `i` sits at
    /// `tree[leaves + i]`. `tree[1]` is the overall winner.
    tree: Vec<u32>,
    /// Number of leaves (shard count rounded up to a power of two).
    leaves: usize,
    len: usize,
}

impl ShardedQueue {
    /// Creates a queue with one shard per node (at least one).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let leaves = shards.next_power_of_two();
        let mut tree = vec![u32::MAX; 2 * leaves];
        for (i, slot) in tree[leaves..].iter_mut().enumerate() {
            // Leaves beyond the shard count keep index `shards - 1`: a valid index
            // whose key is EMPTY forever, so it never wins a comparison that matters.
            *slot = (i.min(shards - 1)) as u32;
        }
        for j in (1..leaves).rev() {
            tree[j] = tree[2 * j]; // all keys start EMPTY; either child works
        }
        Self {
            shards: (0..shards).map(|i| Shard::new(i as u32)).collect(),
            keys: vec![EMPTY; shards],
            tree,
            leaves,
            len: 0,
        }
    }

    /// Number of queued events across all shards.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Rewrites shard `i`'s leaf with `key` and replays its path to the root:
    /// `log2(leaves)` compares, no element movement.
    #[inline]
    fn update_leaf(&mut self, i: u32, key: u128) {
        self.keys[i as usize] = key;
        let mut node = self.leaves + i as usize;
        while node > 1 {
            node /= 2;
            let left = self.tree[2 * node];
            let right = self.tree[2 * node + 1];
            self.tree[node] = if self.keys[left as usize] <= self.keys[right as usize] {
                left
            } else {
                right
            };
        }
    }

    /// Pushes an event onto `shard`, updating the merge tree if it becomes the
    /// shard's new head.
    pub fn push(&mut self, shard: u32, event: QueuedEvent) {
        let key = pack(event.at, event.seq);
        self.shards[shard as usize].push(key, event.kind);
        self.len += 1;
        if key < self.keys[shard as usize] {
            self.update_leaf(shard, key);
        }
    }

    /// Pushes a matured downlink delivery onto `shard`'s deliver FIFO (see
    /// [`Shard`]): O(1), no sifts. The caller (the `Arrive` dispatch) guarantees the
    /// per-shard keys arrive nondecreasing.
    pub fn push_deliver(&mut self, shard: u32, at: SimTime, seq: u64, fanout: u32) {
        let key = pack(at, seq);
        self.shards[shard as usize].push_deliver(key, fanout);
        self.len += 1;
        if key < self.keys[shard as usize] {
            self.update_leaf(shard, key);
        }
    }

    /// The `(time, seq)` key of the globally minimal event, if any.
    pub fn peek_key(&self) -> Option<EventKey> {
        let winner = self.tree[1];
        let key = self.keys[winner as usize];
        if key == EMPTY {
            return None;
        }
        Some(unpack(key))
    }

    /// Pops the globally minimal event (for tests; the engine uses
    /// [`Self::pop_min`]).
    #[cfg(test)]
    pub fn pop(&mut self) -> Option<QueuedEvent> {
        self.pop_min(SimTime(u64::MAX))
    }

    /// Pops the globally minimal event if its time is at or below `deadline`: one
    /// shard pop plus a single leaf-to-root replay.
    ///
    /// A conservative-lookahead *run* API (`begin_run`/`pop_run`/`end_run`) used to
    /// sit here so the sequential engine could drain a shard without consulting the
    /// merge tree. Measured run lengths at the fig9xl scales are 1.1–1.3 events —
    /// saturated shards interleave at nearly identical instants, so a run died on
    /// the cross-shard bound almost immediately and every event paid *two* leaf
    /// repairs (park + restore) plus a failed continuation probe. The classic merge
    /// pop dispatches the exact same `(time, seq)` sequence for one repair and no
    /// bookkeeping; the lookahead argument lives on in the parallel round engine,
    /// where it fences whole rounds instead of single-shard runs.
    pub fn pop_min(&mut self, deadline: SimTime) -> Option<QueuedEvent> {
        let shard = self.tree[1];
        let key = self.keys[shard as usize];
        if key == EMPTY || (key >> 64) as u64 > deadline.as_nanos() {
            return None;
        }
        let (key, kind) = self.shards[shard as usize].pop().expect("winner has a head");
        self.len -= 1;
        let head = self.shards[shard as usize].peek_key().unwrap_or(EMPTY);
        self.update_leaf(shard, head);
        let (at, seq) = unpack(key);
        Some(QueuedEvent { at, seq, kind })
    }

    /// Direct mutable access to the per-shard stores, for the parallel round
    /// engine: each round worker drains its own shard without touching the merge
    /// tree. The caller must call [`Self::settle_round`] afterwards to restore the
    /// leaf/merge invariants and the length bookkeeping.
    pub fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }

    /// Appends (ascending) the indices of every shard whose current head is at or
    /// below `cutoff` — the shards that participate in a parallel round. Leaf keys
    /// are accurate between runs, so this is a linear scan, no heap traffic.
    pub fn shards_at_or_below(&self, cutoff: SimTime, out: &mut Vec<u32>) {
        let fence = pack(cutoff, u64::MAX);
        for (i, &key) in self.keys.iter().enumerate() {
            if key <= fence {
                out.push(i as u32);
            }
        }
    }

    /// Visits every queued event's kind — heap entries and deliver-FIFO entries
    /// alike, the latter materialised exactly as [`Shard::pop`] would — in no
    /// particular order. This is the read side of the fan-out reference audit
    /// (`Simulation::into_report`): the audit tallies the queued handles per slot
    /// and compares the tally against the side table's refcounts.
    pub fn for_each_kind(&self, mut f: impl FnMut(&EventKind)) {
        for shard in &self.shards {
            for kind in &shard.heap.kinds {
                f(kind);
            }
            for &fanout in &shard.fifo_fanouts {
                f(&EventKind::Deliver {
                    fanout,
                    to: NodeId(shard.node),
                });
            }
        }
    }

    /// Restores the queue invariants after a parallel round: deducts the `drained`
    /// events the round's workers popped directly from their heaps and rewrites
    /// every stale leaf (both the drained shards and any shard the apply phase
    /// pushed to while its leaf was inaccurate).
    pub fn settle_round(&mut self, drained: usize) {
        self.len -= drained;
        for shard in 0..self.shards.len() as u32 {
            let key = self.shards[shard as usize].peek_key().unwrap_or(EMPTY);
            if key != self.keys[shard as usize] {
                self.update_leaf(shard, key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::test_event as queued;

    /// Classic pops drain an arbitrary interleaving in exact `(time, seq)` order.
    #[test]
    fn pops_follow_global_time_seq_order() {
        for shards in [1usize, 3, 4, 7] {
            let mut queue = ShardedQueue::new(shards);
            // A deterministic scramble: times descend, wrap, collide; seqs are unique.
            let mut entries: Vec<(u32, u64, u64)> = Vec::new(); // (shard, time, seq)
            let mut state = 0x9E3779B97F4A7C15u64;
            for seq in 1..=200u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let shard = (state >> 33) as u32 % shards as u32;
                let time = (state >> 7) % 17; // plenty of same-time collisions
                entries.push((shard, time, seq));
            }
            for &(shard, time, seq) in &entries {
                queue.push(shard, queued(SimTime(time), seq));
            }
            let mut keys = Vec::new();
            while let Some(event) = queue.pop() {
                keys.push((event.at, event.seq));
            }
            let mut expected: Vec<EventKey> =
                entries.iter().map(|&(_, time, seq)| (SimTime(time), seq)).collect();
            expected.sort_unstable();
            assert_eq!(keys, expected);
            assert_eq!(queue.len(), 0);
        }
    }

    /// `pop_min` honours the deadline and repairs the winner's leaf on every pop.
    #[test]
    fn pop_min_respects_the_deadline() {
        let mut queue = ShardedQueue::new(2);
        queue.push(0, queued(SimTime(10), 1));
        queue.push(0, queued(SimTime(30), 2));
        queue.push(1, queued(SimTime(25), 3));

        let first = queue.pop_min(SimTime(25)).unwrap();
        assert_eq!((first.at, first.seq), (SimTime(10), 1));
        let second = queue.pop_min(SimTime(25)).unwrap();
        assert_eq!((second.at, second.seq), (SimTime(25), 3));
        assert!(queue.pop_min(SimTime(25)).is_none(), "t = 30 is past the deadline");
        assert_eq!(queue.peek_key(), Some((SimTime(30), 2)));
        let tail = queue.pop_min(SimTime(u64::MAX)).unwrap();
        assert_eq!((tail.at, tail.seq), (SimTime(30), 2));
        assert_eq!(queue.len(), 0);
    }

    /// Zero-delay follow-ups pushed between pops are seen immediately: the push
    /// updates the leaf, so the very next `pop_min` returns them in `(time, seq)`
    /// order.
    #[test]
    fn pushes_between_pops_are_merged_immediately() {
        let mut queue = ShardedQueue::new(2);
        queue.push(0, queued(SimTime(10), 1));
        queue.push(0, queued(SimTime(40), 2));
        queue.push(1, queued(SimTime(50), 3));

        let first = queue.pop_min(SimTime(u64::MAX)).unwrap();
        assert_eq!((first.at, first.seq), (SimTime(10), 1));
        // The event's callback schedules a follow-up at t = 15 on the same shard.
        queue.push(0, queued(SimTime(15), 4));
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![4, 2, 3]);
        assert_eq!(queue.len(), 0);
    }
}
