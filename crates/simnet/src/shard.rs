//! Sharded event queues with a deterministic merge.
//!
//! The single global `BinaryHeap` of the old engine made every push and pop pay
//! `O(log N)` sifts over the *whole* in-flight event population — at n ≥ 600 that is
//! hundreds of thousands of 48-byte entries being moved on every operation. This
//! module partitions events by **owning node** — the node whose state the event will
//! touch when it fires (`to` for arrivals and deliveries, the timer's node, the
//! started/restarted node) — into one small per-shard heap each, and merges the shard
//! heads through a flat **winner tree** (tournament tree) that preserves the engine's
//! exact `(time, seq)` total order.
//!
//! # Merge order
//!
//! Every queued event carries the globally unique, monotonically increasing `seq`
//! assigned at push time, exactly as in the single-heap engine. Each shard's current
//! head key is packed into a `u128` (`time << 64 | seq`, empty = `u128::MAX`) and the
//! winner tree holds, per internal node, the shard index with the smaller key of its
//! subtree; `tree[1]` is the shard owning the globally minimal event — the same event
//! the single heap would pop, because `(time, seq)` keys are unique. Updating one
//! shard's head replays only its leaf-to-root path: `log2(shards)` integer compares
//! on a flat 8 KB array, with none of the sift-down element movement or stale-entry
//! bookkeeping a candidate heap would need.
//!
//! # Shard runs (conservative lookahead)
//!
//! The payoff over a plain n-way merge is the *run* API: once a shard owns the global
//! minimum, the engine may keep popping events from that shard **without consulting
//! the merge tree again** for as long as its head stays below a safe horizon — the
//! classical conservative-lookahead argument of parallel discrete-event simulation,
//! applied here to keep the sequential hot path short. The horizon is the smaller of
//!
//! * the next merge key over all *other* shards (nothing they currently hold is
//!   earlier), and
//! * `run start + minimum cross-shard latency` (nothing another shard will *later* be
//!   sent can land earlier: a message created by an event at `t` arrives no earlier
//!   than `t + min cross latency`, and `t ≥ run start`).
//!
//! Events the run itself schedules on its *own* shard (timers, self-deliveries, the
//! downlink leg of an arrival) land in the shard's heap and are naturally popped in
//! `(time, seq)` order, so zero-delay self-messages need no special case. Events at
//! exactly `run start + min cross latency` are still safe to pop: any cross-shard
//! event created at that instant carries a larger `seq` and therefore sorts after
//! every event that was already queued.
//!
//! While a run is active the running shard's leaf is parked at `u128::MAX` (that is
//! how the "min over the others" bound falls out of the same tree); a push to the
//! running shard may overwrite the parked leaf with a key that is not the shard's
//! true head, which is harmless because [`ShardedQueue::end_run`] rewrites the leaf
//! from the real heap head before the merge is consulted again.

use crate::sim::{EventKind, QueuedEvent};
use crate::time::SimTime;

/// The `(time, seq)` key that totally orders events; `seq` is globally unique.
pub(crate) type EventKey = (SimTime, u64);

/// Packs an event key into a single integer preserving `(time, seq)` order.
#[inline]
fn pack(at: SimTime, seq: u64) -> u128 {
    (u128::from(at.as_nanos()) << 64) | u128::from(seq)
}

/// Unpacks a [`pack`]ed key.
#[inline]
fn unpack(key: u128) -> EventKey {
    (SimTime((key >> 64) as u64), key as u64)
}

/// The packed key of an empty shard; no real event reaches it (`seq` would have to
/// be `u64::MAX` at time `u64::MAX`).
const EMPTY: u128 = u128::MAX;

/// A 4-ary min-heap with the comparison keys split from the event payloads.
///
/// Three layout decisions, all for the cache: a node's four children share one
/// 64-byte line of the `keys` array, so a sift-down touches one line per level and
/// half as many levels as a binary heap; the 16-byte packed keys live apart from the
/// `EventKind` payloads, so the search path reads only `keys`; and both sifts find
/// the moving entry's final position by **walking the key array alone** before any
/// payload is touched — the key chain is then shifted with plain stores and the
/// payloads rotated along the same (already cache-hot) path. Combined with the
/// PR 9 shrink of the queue-resident payload from 32 to 24 bytes
/// (`EventKind::Arrive::size` went `usize` → `u32`; see `sim.rs`), this trims the
/// remaining DRAM-bound payload traffic the PR 8 profile showed: at n ≥ 1000 a
/// shard heap holds several hundred in-flight arrivals and this sift walk is the
/// hottest data movement in the engine. (An arena/slab indirection that never moves
/// payloads at all was measured and rejected: with per-shard heaps this shallow, the
/// extra random-access load per pop costs more than the rotation it saves.)
struct QuadHeap<M> {
    keys: Vec<u128>,
    kinds: Vec<EventKind<M>>,
}

impl<M> QuadHeap<M> {
    const fn new() -> Self {
        Self {
            keys: Vec::new(),
            kinds: Vec::new(),
        }
    }

    #[inline]
    fn peek_key(&self) -> Option<u128> {
        self.keys.first().copied()
    }

    fn push(&mut self, key: u128, kind: EventKind<M>) {
        // Hole-based sift-up: append a hole, shift ancestors down into it, write the
        // new entry once at its final slot. `kinds` grows with a placeholder read
        // from the hole's final position, so no `unsafe` and no `Option` tax.
        self.keys.push(key);
        self.kinds.push(kind);
        let mut i = self.keys.len() - 1;
        let mut hole = i;
        while hole > 0 {
            let parent = (hole - 1) / 4;
            if self.keys[parent] <= key {
                break;
            }
            hole = parent;
        }
        if hole < i {
            // Rotate the displaced ancestors down in one pass: the path
            // root-ward from `i` to `hole` is exactly the ancestor chain.
            while i > hole {
                let parent = (i - 1) / 4;
                self.keys[i] = self.keys[parent];
                self.kinds.swap(i, parent);
                i = parent;
            }
            self.keys[hole] = key;
        }
    }

    fn pop(&mut self) -> Option<(u128, EventKind<M>)> {
        let len = self.keys.len();
        if len == 0 {
            return None;
        }
        self.keys.swap(0, len - 1);
        self.kinds.swap(0, len - 1);
        let key = self.keys.pop().expect("nonempty");
        let kind = self.kinds.pop().expect("nonempty");
        let len = len - 1;
        if len > 0 {
            // Hole-based sift-down of the former tail: find its final position by
            // walking keys only, then shift the winning children up the path.
            let tail_key = self.keys[0];
            let mut path = [0usize; 32];
            let mut depth = 0;
            let mut i = 0;
            loop {
                let first = 4 * i + 1;
                if first >= len {
                    break;
                }
                let fence = (first + 4).min(len);
                let mut min = first;
                for child in first + 1..fence {
                    if self.keys[child] < self.keys[min] {
                        min = child;
                    }
                }
                if tail_key <= self.keys[min] {
                    break;
                }
                path[depth] = min;
                depth += 1;
                i = min;
            }
            let mut hole = 0;
            for &next in &path[..depth] {
                self.keys[hole] = self.keys[next];
                self.kinds.swap(hole, next);
                hole = next;
            }
            self.keys[hole] = tail_key;
        }
        Some((key, kind))
    }
}

/// A set of per-shard event heaps merged through a flat winner tree.
pub(crate) struct ShardedQueue<M> {
    /// One heap per owning node.
    shards: Vec<QuadHeap<M>>,
    /// Per-shard packed head key (`EMPTY` when the shard has no events or its leaf
    /// is parked by an active run).
    keys: Vec<u128>,
    /// Winner tree over `keys`: `tree[j]` for `1 ≤ j < leaves` is the shard index
    /// with the smaller key among the leaves of `j`'s subtree; leaf `i` sits at
    /// `tree[leaves + i]`. `tree[1]` is the overall winner.
    tree: Vec<u32>,
    /// Number of leaves (shard count rounded up to a power of two).
    leaves: usize,
    len: usize,
}

impl<M> ShardedQueue<M> {
    /// Creates a queue with one shard per node (at least one).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let leaves = shards.next_power_of_two();
        let mut tree = vec![u32::MAX; 2 * leaves];
        for (i, slot) in tree[leaves..].iter_mut().enumerate() {
            // Leaves beyond the shard count keep index `shards - 1`: a valid index
            // whose key is EMPTY forever, so it never wins a comparison that matters.
            *slot = (i.min(shards - 1)) as u32;
        }
        for j in (1..leaves).rev() {
            tree[j] = tree[2 * j]; // all keys start EMPTY; either child works
        }
        Self {
            shards: (0..shards).map(|_| QuadHeap::new()).collect(),
            keys: vec![EMPTY; shards],
            tree,
            leaves,
            len: 0,
        }
    }

    /// Number of queued events across all shards.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Rewrites shard `i`'s leaf with `key` and replays its path to the root:
    /// `log2(leaves)` compares, no element movement.
    #[inline]
    fn update_leaf(&mut self, i: u32, key: u128) {
        self.keys[i as usize] = key;
        let mut node = self.leaves + i as usize;
        while node > 1 {
            node /= 2;
            let left = self.tree[2 * node];
            let right = self.tree[2 * node + 1];
            self.tree[node] = if self.keys[left as usize] <= self.keys[right as usize] {
                left
            } else {
                right
            };
        }
    }

    /// Pushes an event onto `shard`, updating the merge tree if it becomes the
    /// shard's new head.
    pub fn push(&mut self, shard: u32, event: QueuedEvent<M>) {
        let key = pack(event.at, event.seq);
        self.shards[shard as usize].push(key, event.kind);
        self.len += 1;
        if key < self.keys[shard as usize] {
            self.update_leaf(shard, key);
        }
    }

    /// The `(time, seq)` key of the globally minimal event, if any.
    pub fn peek_key(&self) -> Option<EventKey> {
        let winner = self.tree[1];
        let key = self.keys[winner as usize];
        if key == EMPTY {
            return None;
        }
        Some(unpack(key))
    }

    /// Pops the globally minimal event (classic merge pop: the shard's next head is
    /// re-registered immediately).
    pub fn pop(&mut self) -> Option<QueuedEvent<M>> {
        let (shard, event, _) = self.begin_run()?;
        self.end_run(shard);
        Some(event)
    }

    /// Starts a shard run: pops the globally minimal event, parks the shard's leaf,
    /// and returns the merge key of the best *other* shard (the run's cross-shard
    /// bound). Must be paired with [`Self::end_run`].
    pub fn begin_run(&mut self) -> Option<(u32, QueuedEvent<M>, Option<EventKey>)> {
        let shard = self.tree[1];
        if self.keys[shard as usize] == EMPTY {
            return None;
        }
        let (key, kind) = self.shards[shard as usize].pop().expect("winner has a head");
        self.len -= 1;
        self.update_leaf(shard, EMPTY);
        let bound = self.peek_key();
        let (at, seq) = unpack(key);
        Some((shard, QueuedEvent { at, seq, kind }, bound))
    }

    /// Pops the next event of `shard` if its key is below `bound` (strict), its time
    /// is at or below `horizon`, and its time is at or below `deadline`.
    pub fn pop_run(
        &mut self,
        shard: u32,
        bound: Option<EventKey>,
        horizon: SimTime,
        deadline: SimTime,
    ) -> Option<QueuedEvent<M>> {
        let head = self.shards[shard as usize].peek_key()?;
        if let Some((bound_at, bound_seq)) = bound {
            if head >= pack(bound_at, bound_seq) {
                return None;
            }
        }
        let at = SimTime((head >> 64) as u64);
        if at > horizon || at > deadline {
            return None;
        }
        let (key, kind) = self.shards[shard as usize].pop().expect("peeked head");
        self.len -= 1;
        let (at, seq) = unpack(key);
        Some(QueuedEvent { at, seq, kind })
    }

    /// Ends a shard run: rewrites the shard's leaf from its true heap head (the run,
    /// or pushes during it, may have left the leaf parked or stale).
    pub fn end_run(&mut self, shard: u32) {
        let key = self.shards[shard as usize].peek_key().unwrap_or(EMPTY);
        if key != self.keys[shard as usize] {
            self.update_leaf(shard, key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::test_event as queued;

    /// Classic pops drain an arbitrary interleaving in exact `(time, seq)` order.
    #[test]
    fn pops_follow_global_time_seq_order() {
        for shards in [1usize, 3, 4, 7] {
            let mut queue: ShardedQueue<()> = ShardedQueue::new(shards);
            // A deterministic scramble: times descend, wrap, collide; seqs are unique.
            let mut entries: Vec<(u32, u64, u64)> = Vec::new(); // (shard, time, seq)
            let mut state = 0x9E3779B97F4A7C15u64;
            for seq in 1..=200u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let shard = (state >> 33) as u32 % shards as u32;
                let time = (state >> 7) % 17; // plenty of same-time collisions
                entries.push((shard, time, seq));
            }
            for &(shard, time, seq) in &entries {
                queue.push(shard, queued(SimTime(time), seq));
            }
            let mut keys = Vec::new();
            while let Some(event) = queue.pop() {
                keys.push((event.at, event.seq));
            }
            let mut expected: Vec<EventKey> =
                entries.iter().map(|&(_, time, seq)| (SimTime(time), seq)).collect();
            expected.sort_unstable();
            assert_eq!(keys, expected);
            assert_eq!(queue.len(), 0);
        }
    }

    /// A shard run only surrenders events strictly below the cross-shard bound and at
    /// or below the horizon, and `end_run` restores the merge invariant.
    #[test]
    fn runs_respect_bound_and_horizon() {
        let mut queue: ShardedQueue<()> = ShardedQueue::new(2);
        queue.push(0, queued(SimTime(10), 1));
        queue.push(0, queued(SimTime(20), 2));
        queue.push(0, queued(SimTime(30), 3));
        queue.push(1, queued(SimTime(25), 4));

        let (shard, first, next) = queue.begin_run().unwrap();
        assert_eq!(shard, 0);
        assert_eq!((first.at, first.seq), (SimTime(10), 1));
        assert_eq!(next, Some((SimTime(25), 4)));

        // Horizon 100 admits t = 20 (below the bound 25) but not t = 30.
        let second = queue.pop_run(shard, next, SimTime(100), SimTime(u64::MAX)).unwrap();
        assert_eq!((second.at, second.seq), (SimTime(20), 2));
        assert!(queue.pop_run(shard, next, SimTime(100), SimTime(u64::MAX)).is_none());
        queue.end_run(shard);

        // The merge resumes with shard 1's event, then shard 0's tail.
        assert_eq!(queue.peek_key(), Some((SimTime(25), 4)));
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![4, 3]);
    }

    /// Pushing a new shard minimum mid-run is picked up by the same run (zero-delay
    /// self-messages), and `end_run` repairs the leaf the push left stale.
    #[test]
    fn mid_run_pushes_to_the_same_shard_are_seen() {
        let mut queue: ShardedQueue<()> = ShardedQueue::new(2);
        queue.push(0, queued(SimTime(10), 1));
        queue.push(0, queued(SimTime(40), 2));
        queue.push(1, queued(SimTime(50), 3));

        let (shard, first, next) = queue.begin_run().unwrap();
        assert_eq!((first.at, first.seq), (SimTime(10), 1));
        // The event's callback schedules a same-shard follow-up at t = 15; the leaf is
        // parked, so the push overwrites it with t = 15 even though t = 40 was queued
        // first — end_run must repair this.
        queue.push(shard, queued(SimTime(15), 4));
        let follow = queue.pop_run(shard, next, SimTime(100), SimTime(u64::MAX)).unwrap();
        assert_eq!((follow.at, follow.seq), (SimTime(15), 4));
        let tail = queue.pop_run(shard, next, SimTime(100), SimTime(u64::MAX)).unwrap();
        assert_eq!((tail.at, tail.seq), (SimTime(40), 2));
        queue.end_run(shard);
        let order: Vec<u64> = std::iter::from_fn(|| queue.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![3]);
        assert_eq!(queue.len(), 0);
    }
}
