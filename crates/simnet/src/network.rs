//! Network model configuration: per-node link capacities, propagation latency, the
//! partial-synchrony (GST) model, and the geo-distributed [`Topology`] abstraction
//! (named regions, a pairwise latency/jitter matrix, per-region bandwidth classes and
//! per-node straggler profiles).

use crate::time::{SimDuration, SimTime};

/// Capacity of one node's network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Uplink capacity in bits per second (`0` means unlimited).
    pub uplink_bps: u64,
    /// Downlink capacity in bits per second (`0` means unlimited).
    pub downlink_bps: u64,
}

impl LinkConfig {
    /// A symmetric link of the given capacity in bits per second.
    pub fn symmetric(bps: u64) -> Self {
        Self {
            uplink_bps: bps,
            downlink_bps: bps,
        }
    }

    /// A symmetric link of the given capacity in megabits per second.
    pub fn symmetric_mbps(mbps: u64) -> Self {
        Self::symmetric(mbps * 1_000_000)
    }

    /// An unlimited link (no serialisation delay).
    pub fn unlimited() -> Self {
        Self::symmetric(0)
    }

    /// The EC2 c5.xlarge NIC used in the paper's evaluation: 9.8 Gbps.
    pub fn paper_default() -> Self {
        Self::symmetric(9_800_000_000)
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Degradations applied to a single straggler node: a slower NIC, a slower CPU and an
/// extra one-way propagation latency on every message it sends or receives.
///
/// This is the Raptr-style straggler (arXiv:2504.18649): geo-distributed validators
/// whose stragglers are *network*-slow and *CPU*-slow at once. The CPU factor
/// multiplies whatever [`NetworkConfig::cpu_speed`] already assigns the node, so a
/// straggler profile composes with the heterogeneous-CPU experiments instead of
/// overriding them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerProfile {
    /// NIC cap for the straggler, or `None` to keep the node's regular link. A profile
    /// *degrades*: the effective link is the direction-wise minimum of this cap and
    /// the link the node would otherwise have, so a 1 Gbps profile on an
    /// already-throttled 20 Mbps fleet leaves the node at 20 Mbps instead of silently
    /// upgrading it.
    pub link: Option<LinkConfig>,
    /// Multiplier applied to the node's CPU speed factor (`1.0` = no slowdown).
    pub cpu_factor: f64,
    /// Extra one-way latency added to every message the straggler sends *or* receives
    /// (a message between two stragglers pays both ends' extras). Deterministic — it
    /// consumes no randomness, so adding a straggler never shifts jitter draws of
    /// unrelated messages.
    pub extra_latency: SimDuration,
}

impl StragglerProfile {
    /// The WAN straggler used by the geo-distributed experiments: a 1 Gbps NIC cap
    /// (vs the fleet's 9.8 Gbps), a half-speed CPU and 25 ms of extra one-way latency.
    pub fn wan_default() -> Self {
        Self {
            link: Some(LinkConfig::symmetric_mbps(1_000)),
            cpu_factor: 0.5,
            extra_latency: SimDuration::from_millis(25),
        }
    }

    /// A straggler that is only latency-degraded (link and CPU untouched).
    pub fn slow_path(extra_latency: SimDuration) -> Self {
        Self {
            link: None,
            cpu_factor: 1.0,
            extra_latency,
        }
    }
}

/// A geo-distributed network topology: named regions, a symmetric pairwise
/// latency/jitter matrix between regions, optional per-region bandwidth classes, and
/// per-node straggler profiles.
///
/// Nodes are assigned to regions round-robin (`node % region_count`), so every region
/// holds an equal share of the replicas regardless of `n` and region membership never
/// depends on mutable state. A message from node `a` to node `b` propagates for
/// `base(region(a), region(b)) + U(0, jitter(region(a), region(b)))` plus the
/// deterministic straggler extras of both endpoints.
///
/// **RNG compatibility:** a single-region [`Topology::flat`] draws exactly one uniform
/// jitter sample per routed message with the same bound as the scalar
/// `base_latency`/`jitter` model, in the same order — so a flat topology reproduces
/// the scalar model's event schedule bit-identically (see `DESIGN.md` §7).
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Region names, in region-index order.
    regions: Vec<String>,
    /// Base one-way latency between region pairs, row-major `r × r`, symmetric.
    base: Vec<SimDuration>,
    /// Maximum uniform jitter between region pairs, row-major `r × r`, symmetric.
    jitter: Vec<SimDuration>,
    /// Per-region NIC class (an assignment, replacing [`NetworkConfig::links`] for
    /// the region's nodes); `None` falls back to [`NetworkConfig::links`].
    region_links: Vec<Option<LinkConfig>>,
    /// Straggler profiles, sorted by node index.
    stragglers: Vec<(usize, StragglerProfile)>,
}

/// One-way latency in microseconds between two known WAN regions (representative
/// public-cloud inter-region figures; symmetric). Unknown pairs fall back to a
/// conservative 100 ms intercontinental default.
fn wan_one_way_micros(a: &str, b: &str) -> u64 {
    if a == b {
        return 500; // intra-region: the paper's LAN latency
    }
    let key = if a <= b { (a, b) } else { (b, a) };
    let ms = match key {
        ("us-east", "us-west") => 30,
        ("eu-west", "us-east") => 38,
        ("eu-central", "us-east") => 45,
        ("ap-northeast", "us-east") => 75,
        ("ap-southeast", "us-east") => 105,
        ("sa-east", "us-east") => 60,
        ("eu-west", "us-west") => 65,
        ("eu-central", "us-west") => 73,
        ("ap-northeast", "us-west") => 50,
        ("ap-southeast", "us-west") => 85,
        ("sa-east", "us-west") => 85,
        ("eu-central", "eu-west") => 10,
        ("ap-northeast", "eu-west") => 110,
        ("ap-southeast", "eu-west") => 80,
        ("eu-west", "sa-east") => 95,
        ("ap-northeast", "eu-central") => 115,
        ("ap-southeast", "eu-central") => 85,
        ("eu-central", "sa-east") => 100,
        ("ap-northeast", "ap-southeast") => 35,
        ("ap-northeast", "sa-east") => 130,
        ("ap-southeast", "sa-east") => 160,
        _ => 100,
    };
    ms * 1_000
}

impl Topology {
    /// A single-region topology with one base latency and jitter for every pair —
    /// the scalar model as a `Topology`, bit-identical to it by construction.
    pub fn flat(base: SimDuration, jitter: SimDuration) -> Self {
        Self {
            regions: vec!["flat".to_string()],
            base: vec![base],
            jitter: vec![jitter],
            region_links: vec![None],
            stragglers: Vec::new(),
        }
    }

    /// A topology of `names.len()` regions with `intra` latency inside a region,
    /// `inter` latency between any two distinct regions, and the same `jitter` bound
    /// everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty.
    pub fn uniform(names: &[&str], intra: SimDuration, inter: SimDuration, jitter: SimDuration) -> Self {
        assert!(!names.is_empty(), "a topology needs at least one region");
        let r = names.len();
        let mut base = Vec::with_capacity(r * r);
        for i in 0..r {
            for j in 0..r {
                base.push(if i == j { intra } else { inter });
            }
        }
        Self {
            regions: names.iter().map(|n| n.to_string()).collect(),
            base,
            jitter: vec![jitter; r * r],
            region_links: vec![None; r],
            stragglers: Vec::new(),
        }
    }

    /// Two datacenters (`dc-a`, `dc-b`) with `intra` latency inside each and `inter`
    /// latency across the pair; jitter is a tenth of the respective base latency.
    pub fn two_dc(intra: SimDuration, inter: SimDuration) -> Self {
        let mut topology = Self::uniform(&["dc-a", "dc-b"], intra, inter, SimDuration::ZERO);
        for i in 0..2 {
            for j in 0..2 {
                let base = topology.base[i * 2 + j];
                topology.jitter[i * 2 + j] = SimDuration::from_nanos(base.as_nanos() / 10);
            }
        }
        topology
    }

    /// A WAN topology over the named regions, with representative public-cloud
    /// one-way latencies between known region names (`us-east`, `us-west`, `eu-west`,
    /// `eu-central`, `ap-northeast`, `ap-southeast`, `sa-east`; unknown pairs default
    /// to 100 ms) and jitter at a tenth of each pair's base latency.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty.
    pub fn wan(names: &[&str]) -> Self {
        assert!(!names.is_empty(), "a topology needs at least one region");
        let r = names.len();
        let mut base = Vec::with_capacity(r * r);
        let mut jitter = Vec::with_capacity(r * r);
        for i in 0..r {
            for j in 0..r {
                let micros = wan_one_way_micros(names[i], names[j]);
                base.push(SimDuration::from_micros(micros));
                jitter.push(SimDuration::from_micros(micros / 10));
            }
        }
        Self {
            regions: names.iter().map(|n| n.to_string()).collect(),
            base,
            jitter,
            region_links: vec![None; r],
            stragglers: Vec::new(),
        }
    }

    /// Sets the latency between regions `a` and `b` (symmetrically, both directions).
    ///
    /// # Panics
    ///
    /// Panics if either region index is out of range.
    pub fn with_latency(mut self, a: usize, b: usize, base: SimDuration, jitter: SimDuration) -> Self {
        let r = self.regions.len();
        assert!(a < r && b < r, "region index out of range: {a}, {b} (have {r} regions)");
        self.base[a * r + b] = base;
        self.base[b * r + a] = base;
        self.jitter[a * r + b] = jitter;
        self.jitter[b * r + a] = jitter;
        self
    }

    /// Gives every node of `region` the NIC class `link`, **replacing**
    /// [`NetworkConfig::links`] for those nodes — a region class is an assignment
    /// ("this region's machines have these NICs"), so it may be slower *or* faster
    /// than the fleet default (a throttled satellite region, a well-provisioned core
    /// region). Contrast [`StragglerProfile::link`], which is a *cap* and only ever
    /// degrades: use a straggler profile, not a region class, to model a degraded
    /// node inside an otherwise-throttled fleet.
    ///
    /// # Panics
    ///
    /// Panics if the region index is out of range.
    pub fn with_region_link(mut self, region: usize, link: LinkConfig) -> Self {
        assert!(
            region < self.regions.len(),
            "region index out of range: {region} (have {} regions)",
            self.regions.len()
        );
        self.region_links[region] = Some(link);
        self
    }

    /// Attaches a straggler profile to `node` (replacing any previous profile).
    /// Node-range validation happens in [`NetworkConfig::validate`], where `n` is known.
    pub fn with_straggler(mut self, node: usize, profile: StragglerProfile) -> Self {
        match self.stragglers.binary_search_by_key(&node, |(n, _)| *n) {
            Ok(position) => self.stragglers[position] = (node, profile),
            Err(position) => self.stragglers.insert(position, (node, profile)),
        }
        self
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Region names in index order.
    pub fn region_names(&self) -> &[String] {
        &self.regions
    }

    /// The name of region `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn region_name(&self, index: usize) -> &str {
        &self.regions[index]
    }

    /// The region `node` belongs to (round-robin assignment).
    pub fn region_of(&self, node: usize) -> usize {
        node % self.regions.len()
    }

    /// Base one-way latency between regions `a` and `b`.
    pub fn base_between(&self, a: usize, b: usize) -> SimDuration {
        self.base[a * self.regions.len() + b]
    }

    /// Maximum uniform jitter between regions `a` and `b`.
    pub fn jitter_between(&self, a: usize, b: usize) -> SimDuration {
        self.jitter[a * self.regions.len() + b]
    }

    /// The NIC class of region `index`, if one was set.
    pub fn region_link(&self, index: usize) -> Option<LinkConfig> {
        self.region_links[index]
    }

    /// The straggler profile of `node`, if any.
    pub fn straggler(&self, node: usize) -> Option<&StragglerProfile> {
        self.stragglers
            .binary_search_by_key(&node, |(n, _)| *n)
            .ok()
            .map(|position| &self.stragglers[position].1)
    }

    /// All straggler profiles, sorted by node index.
    pub fn stragglers(&self) -> &[(usize, StragglerProfile)] {
        &self.stragglers
    }

    /// An upper bound on the one-way propagation delay between any two nodes:
    /// the largest `base + jitter` over all region pairs plus twice the largest
    /// straggler extra (both endpoints could be stragglers). Used by the harness to
    /// give WAN deployments latency-aware timeouts.
    pub fn max_one_way_latency(&self) -> SimDuration {
        let matrix = self
            .base
            .iter()
            .zip(&self.jitter)
            .map(|(b, j)| b.as_nanos() + j.as_nanos())
            .max()
            .unwrap_or(0);
        let extra = self
            .stragglers
            .iter()
            .map(|(_, p)| p.extra_latency.as_nanos())
            .max()
            .unwrap_or(0);
        SimDuration::from_nanos(matrix + 2 * extra)
    }

    /// Validates structural constraints against a deployment of `nodes` replicas.
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        let r = self.regions.len();
        if r == 0 {
            return Err("topology must have at least one region".to_string());
        }
        if self.base.len() != r * r || self.jitter.len() != r * r {
            return Err(format!(
                "topology latency matrices must have {} entries, got {} base / {} jitter",
                r * r,
                self.base.len(),
                self.jitter.len()
            ));
        }
        if self.region_links.len() != r {
            return Err(format!(
                "topology must have {r} region link entries, got {}",
                self.region_links.len()
            ));
        }
        for i in 0..r {
            for j in 0..i {
                if self.base[i * r + j] != self.base[j * r + i]
                    || self.jitter[i * r + j] != self.jitter[j * r + i]
                {
                    return Err(format!(
                        "topology latency matrix must be symmetric; regions {i} and {j} disagree"
                    ));
                }
            }
        }
        for (node, profile) in &self.stragglers {
            if *node >= nodes {
                return Err(format!(
                    "straggler node {node} out of range for a {nodes}-node network"
                ));
            }
            if !profile.cpu_factor.is_finite() || profile.cpu_factor <= 0.0 {
                return Err(format!(
                    "straggler node {node} must have a positive, finite cpu_factor, got {}",
                    profile.cpu_factor
                ));
            }
        }
        Ok(())
    }
}

/// The per-node view of a [`NetworkConfig`] that the simulation engine actually
/// consults on the hot path: region membership and the region-pair latency matrix in
/// nanoseconds, plus link capacities, CPU speeds and straggler extras already resolved
/// per node. Built once by [`NetworkConfig::resolve`] at [`crate::Simulation::new`].
#[derive(Debug, Clone)]
pub struct ResolvedTopology {
    /// Effective NIC of each node (straggler override > region class > shared links).
    pub links: Vec<LinkConfig>,
    /// Effective CPU speed factor of each node (straggler factor already multiplied in).
    pub cpu_speeds: Vec<f64>,
    /// Worker-lane count of each node's compute queue (`1` = the sequential model).
    pub cores: Vec<usize>,
    /// Region index of each node.
    pub node_region: Vec<u32>,
    /// Number of regions (1 for the flat scalar model).
    pub region_count: usize,
    /// Region-pair base latency in nanoseconds, row-major `region_count²`.
    pub base_nanos: Vec<u64>,
    /// Region-pair jitter bound in nanoseconds, row-major `region_count²`.
    pub jitter_nanos: Vec<u64>,
    /// Per-node deterministic straggler extra latency in nanoseconds.
    pub extra_nanos: Vec<u64>,
    /// The smallest entry of `base_nanos` — a conservative lower bound on how soon a
    /// message sent between two distinct nodes can arrive (straggler extras, jitter
    /// and uplink serialisation only add to it). The simulator's sharded event queue
    /// uses it as the shard-run lookahead (see `DESIGN.md` §10).
    pub min_cross_base_nanos: u64,
}

impl ResolvedTopology {
    /// The deterministic base propagation delay (including both endpoints' straggler
    /// extras) and the jitter bound for a message from `from` to `to`, in nanoseconds.
    #[inline]
    pub fn delay_parts(&self, from: usize, to: usize) -> (u64, u64) {
        let pair = self.node_region[from] as usize * self.region_count + self.node_region[to] as usize;
        (
            self.base_nanos[pair] + self.extra_nanos[from] + self.extra_nanos[to],
            self.jitter_nanos[pair],
        )
    }
}

/// Full network configuration.
///
/// The model charges each message `wire_size` bytes of serialisation delay at the
/// sender's uplink and the receiver's downlink (FIFO queues), plus a propagation delay
/// drawn uniformly from `[base, base + jitter]`, where `base` and `jitter` come from
/// the scalar [`Self::base_latency`]/[`Self::jitter`] pair when [`Self::topology`] is
/// `None`, and from the topology's region-pair matrix otherwise. Before
/// [`NetworkConfig::gst`] an additional asynchronous delay of up to
/// `pre_gst_extra_delay` is added to every message, modelling the unstable period of
/// the partial-synchrony model of Dwork et al.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node link capacities; either one entry shared by every node or one per node.
    pub links: Vec<LinkConfig>,
    /// Base one-way propagation latency (the flat scalar model; a [`Self::topology`]
    /// overrides it with its region-pair matrix).
    pub base_latency: SimDuration,
    /// Maximum additional random latency (uniform jitter) of the flat scalar model.
    pub jitter: SimDuration,
    /// Global stabilisation time; before this instant messages suffer the extra delay.
    pub gst: SimTime,
    /// Maximum extra delay applied to messages sent before GST.
    pub pre_gst_extra_delay: SimDuration,
    /// Seed for the simulation's deterministic randomness.
    pub seed: u64,
    /// When true a node's uplink and downlink share one serialisation queue, i.e. the
    /// link capacity bounds the *total* bits the node moves per second. This matches the
    /// paper's cost model, where `C` is "the number of bits that can be transmitted per
    /// second at each replica" and the predicted scaling-up gain of Leopard is `C/2`.
    pub half_duplex: bool,
    /// Per-node CPU speed factors for the compute-resource model: modeled compute
    /// charged via [`crate::Context::charge_compute`] occupies `cost / speed` of the
    /// node's sequential compute queue. Either empty (every node at speed `1.0`), one
    /// entry shared by every node, or one entry per node — the same convention as
    /// [`Self::links`]. A factor below `1.0` models a slower core (the heterogeneous-
    /// CPU experiments), above `1.0` a faster one.
    pub cpu_speeds: Vec<f64>,
    /// Per-node compute worker-lane counts (multi-core replicas): modeled compute is
    /// dispatched to the earliest-free of a node's `cores` lanes (ties broken by the
    /// lowest lane index). Either empty (every node single-core), one entry shared by
    /// every node, or one entry per node — the same convention as [`Self::cpu_speeds`].
    /// With one lane the dispatch degenerates to the sequential compute queue, so a
    /// `cores = 1` configuration is bit-identical to the pre-multi-core model.
    pub cores: Vec<usize>,
    /// Geo-distributed topology (regions, pairwise latency matrix, bandwidth classes,
    /// stragglers). `None` selects the flat scalar model of
    /// [`Self::base_latency`]/[`Self::jitter`]; a flat single-region topology is
    /// bit-identical to `None` by construction.
    pub topology: Option<Topology>,
}

impl NetworkConfig {
    /// A LAN-like datacenter network of `nodes` replicas with the paper's 9.8 Gbps NICs
    /// and 500 µs one-way latency, already synchronous from the start (GST = 0).
    pub fn datacenter(nodes: usize) -> Self {
        Self {
            nodes,
            links: vec![LinkConfig::paper_default()],
            base_latency: SimDuration::from_micros(500),
            jitter: SimDuration::from_micros(50),
            gst: SimTime::ZERO,
            pre_gst_extra_delay: SimDuration::ZERO,
            seed: 0xC0FFEE,
            half_duplex: true,
            cpu_speeds: Vec::new(),
            cores: Vec::new(),
            topology: None,
        }
    }

    /// A datacenter network with every NIC throttled to `mbps` megabits per second
    /// (the NetEm-throttled configurations of the paper's Fig. 10).
    pub fn throttled(nodes: usize, mbps: u64) -> Self {
        let mut config = Self::datacenter(nodes);
        config.links = vec![LinkConfig::symmetric_mbps(mbps)];
        config
    }

    /// Overrides the link configuration of a single node (e.g. to model a slow replica).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this network.
    pub fn with_node_link(mut self, node: usize, link: LinkConfig) -> Self {
        assert!(
            node < self.nodes,
            "with_node_link: node {node} out of range for a {}-node network",
            self.nodes
        );
        if self.links.len() != self.nodes {
            let shared = self.links.first().copied().unwrap_or_default();
            self.links = vec![shared; self.nodes];
        }
        self.links[node] = link;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets GST and the pre-GST extra delay.
    pub fn with_gst(mut self, gst: SimTime, extra: SimDuration) -> Self {
        self.gst = gst;
        self.pre_gst_extra_delay = extra;
        self
    }

    /// Sets one shared CPU speed factor for every node.
    pub fn with_cpu_speed(mut self, speed: f64) -> Self {
        self.cpu_speeds = vec![speed];
        self
    }

    /// Overrides the CPU speed factor of a single node (e.g. to model a straggler).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this network.
    pub fn with_node_cpu_speed(mut self, node: usize, speed: f64) -> Self {
        assert!(
            node < self.nodes,
            "with_node_cpu_speed: node {node} out of range for a {}-node network",
            self.nodes
        );
        if self.cpu_speeds.len() != self.nodes {
            let shared = self.cpu_speeds.first().copied().unwrap_or(1.0);
            self.cpu_speeds = vec![shared; self.nodes];
        }
        self.cpu_speeds[node] = speed;
        self
    }

    /// Sets one shared compute worker-lane count for every node.
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.cores = vec![cores];
        self
    }

    /// Overrides the compute worker-lane count of a single node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this network.
    pub fn with_node_cores(mut self, node: usize, cores: usize) -> Self {
        assert!(
            node < self.nodes,
            "with_node_cores: node {node} out of range for a {}-node network",
            self.nodes
        );
        if self.cores.len() != self.nodes {
            let shared = self.cores.first().copied().unwrap_or(1);
            self.cores = vec![shared; self.nodes];
        }
        self.cores[node] = cores;
        self
    }

    /// Installs a geo-distributed topology (see [`Topology`]).
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The CPU speed factor of `node` (`1.0` when no factors are configured). Does not
    /// include straggler factors from a [`Self::topology`] — use [`Self::resolve`] for
    /// the effective per-node view.
    pub fn cpu_speed(&self, node: usize) -> f64 {
        if self.cpu_speeds.len() == self.nodes {
            self.cpu_speeds[node]
        } else {
            self.cpu_speeds.first().copied().unwrap_or(1.0)
        }
    }

    /// The compute worker-lane count of `node` (`1` when no counts are configured).
    pub fn node_cores(&self, node: usize) -> usize {
        if self.cores.len() == self.nodes {
            self.cores[node]
        } else {
            self.cores.first().copied().unwrap_or(1)
        }
    }

    /// The link configuration of `node` from [`Self::links`] alone. Does not include
    /// region classes or straggler overrides from a [`Self::topology`] — use
    /// [`Self::resolve`] for the effective per-node view.
    pub fn link(&self, node: usize) -> LinkConfig {
        if self.links.len() == self.nodes {
            self.links[node]
        } else {
            self.links.first().copied().unwrap_or_default()
        }
    }

    /// Resolves the configuration into the per-node view the engine consults on the
    /// hot path: effective links (straggler override > region class > [`Self::links`]),
    /// effective CPU speeds ([`Self::cpu_speeds`] × straggler factor), region
    /// membership and the latency matrix in nanoseconds. Without a topology this is
    /// the flat single-region view of [`Self::base_latency`]/[`Self::jitter`], which
    /// reproduces the scalar model bit-identically.
    pub fn resolve(&self) -> ResolvedTopology {
        let n = self.nodes;
        let Some(topology) = &self.topology else {
            return ResolvedTopology {
                links: (0..n).map(|i| self.link(i)).collect(),
                cpu_speeds: (0..n).map(|i| self.cpu_speed(i)).collect(),
                cores: (0..n).map(|i| self.node_cores(i)).collect(),
                node_region: vec![0; n],
                region_count: 1,
                base_nanos: vec![self.base_latency.as_nanos()],
                jitter_nanos: vec![self.jitter.as_nanos()],
                extra_nanos: vec![0; n],
                min_cross_base_nanos: self.base_latency.as_nanos(),
            };
        };
        let r = topology.region_count();
        let mut links = Vec::with_capacity(n);
        let mut cpu_speeds = Vec::with_capacity(n);
        let mut node_region = Vec::with_capacity(n);
        let mut extra_nanos = Vec::with_capacity(n);
        // Direction-wise minimum of two capacities, treating 0 as unlimited.
        let min_bps = |a: u64, b: u64| match (a, b) {
            (0, b) => b,
            (a, 0) => a,
            (a, b) => a.min(b),
        };
        for i in 0..n {
            let region = topology.region_of(i);
            let straggler = topology.straggler(i);
            let base = topology.region_link(region).unwrap_or_else(|| self.link(i));
            let link = match straggler.and_then(|p| p.link) {
                // A straggler cap only ever degrades the node's link.
                Some(cap) => LinkConfig {
                    uplink_bps: min_bps(base.uplink_bps, cap.uplink_bps),
                    downlink_bps: min_bps(base.downlink_bps, cap.downlink_bps),
                },
                None => base,
            };
            links.push(link);
            cpu_speeds.push(self.cpu_speed(i) * straggler.map_or(1.0, |p| p.cpu_factor));
            node_region.push(region as u32);
            extra_nanos.push(straggler.map_or(0, |p| p.extra_latency.as_nanos()));
        }
        let base_nanos: Vec<u64> = topology.base.iter().map(|d| d.as_nanos()).collect();
        // The diagonal counts too: two distinct nodes of one region exchange
        // messages at the intra-region latency.
        let min_cross_base_nanos = base_nanos.iter().copied().min().unwrap_or(0);
        ResolvedTopology {
            links,
            cpu_speeds,
            cores: (0..n).map(|i| self.node_cores(i)).collect(),
            node_region,
            region_count: r,
            base_nanos,
            jitter_nanos: topology.jitter.iter().map(|d| d.as_nanos()).collect(),
            extra_nanos,
            min_cross_base_nanos,
        }
    }

    /// Validates structural constraints.
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("network must have at least one node".to_string());
        }
        if self.links.is_empty() {
            return Err("at least one link configuration is required".to_string());
        }
        if self.links.len() != 1 && self.links.len() != self.nodes {
            return Err(format!(
                "links must have 1 or {} entries, got {}",
                self.nodes,
                self.links.len()
            ));
        }
        if !self.cpu_speeds.is_empty()
            && self.cpu_speeds.len() != 1
            && self.cpu_speeds.len() != self.nodes
        {
            return Err(format!(
                "cpu_speeds must have 0, 1 or {} entries, got {}",
                self.nodes,
                self.cpu_speeds.len()
            ));
        }
        if self.cpu_speeds.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err("cpu_speeds must be positive and finite".to_string());
        }
        if !self.cores.is_empty() && self.cores.len() != 1 && self.cores.len() != self.nodes {
            return Err(format!(
                "cores must have 0, 1 or {} entries, got {}",
                self.nodes,
                self.cores.len()
            ));
        }
        if self.cores.iter().any(|&c| c == 0) {
            return Err("cores must be at least 1".to_string());
        }
        if let Some(topology) = &self.topology {
            topology.validate(self.nodes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_constructors() {
        assert_eq!(LinkConfig::symmetric_mbps(100).uplink_bps, 100_000_000);
        assert_eq!(LinkConfig::unlimited().downlink_bps, 0);
        assert_eq!(LinkConfig::paper_default().uplink_bps, 9_800_000_000);
    }

    #[test]
    fn datacenter_config_is_valid() {
        let config = NetworkConfig::datacenter(16);
        assert!(config.validate().is_ok());
        assert_eq!(config.link(3), LinkConfig::paper_default());
    }

    #[test]
    fn throttled_config_caps_all_links() {
        let config = NetworkConfig::throttled(8, 20);
        assert_eq!(config.link(0).uplink_bps, 20_000_000);
        assert_eq!(config.link(7).downlink_bps, 20_000_000);
    }

    #[test]
    fn per_node_override() {
        let config = NetworkConfig::datacenter(4).with_node_link(2, LinkConfig::symmetric_mbps(10));
        assert_eq!(config.link(2).uplink_bps, 10_000_000);
        assert_eq!(config.link(0), LinkConfig::paper_default());
        assert!(config.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "with_node_link: node 4 out of range for a 4-node network")]
    fn node_link_out_of_range_panics_with_context() {
        let _ = NetworkConfig::datacenter(4).with_node_link(4, LinkConfig::unlimited());
    }

    #[test]
    #[should_panic(expected = "with_node_cpu_speed: node 9 out of range for a 4-node network")]
    fn node_cpu_out_of_range_panics_with_context() {
        let _ = NetworkConfig::datacenter(4).with_node_cpu_speed(9, 0.5);
    }

    #[test]
    fn cpu_speed_overrides() {
        let config = NetworkConfig::datacenter(4);
        assert_eq!(config.cpu_speed(2), 1.0);
        let config = NetworkConfig::datacenter(4).with_cpu_speed(0.5);
        assert_eq!(config.cpu_speed(0), 0.5);
        assert_eq!(config.cpu_speed(3), 0.5);
        let config = NetworkConfig::datacenter(4)
            .with_cpu_speed(1.0)
            .with_node_cpu_speed(2, 0.25);
        assert_eq!(config.cpu_speed(1), 1.0);
        assert_eq!(config.cpu_speed(2), 0.25);
        assert!(config.validate().is_ok());

        let mut bad = NetworkConfig::datacenter(4);
        bad.cpu_speeds = vec![1.0, 1.0];
        assert!(bad.validate().is_err());
        let mut bad = NetworkConfig::datacenter(4);
        bad.cpu_speeds = vec![0.0];
        assert!(bad.validate().is_err());
    }

    #[test]
    fn core_count_overrides() {
        let config = NetworkConfig::datacenter(4);
        assert_eq!(config.node_cores(2), 1);
        let config = NetworkConfig::datacenter(4).with_cores(4);
        assert_eq!(config.node_cores(0), 4);
        assert_eq!(config.node_cores(3), 4);
        let config = NetworkConfig::datacenter(4).with_cores(2).with_node_cores(1, 8);
        assert_eq!(config.node_cores(0), 2);
        assert_eq!(config.node_cores(1), 8);
        assert!(config.validate().is_ok());
        assert_eq!(config.resolve().cores, vec![2, 8, 2, 2]);

        let mut bad = NetworkConfig::datacenter(4);
        bad.cores = vec![2, 2];
        assert!(bad.validate().is_err());
        let mut bad = NetworkConfig::datacenter(4);
        bad.cores = vec![0];
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "with_node_cores: node 7 out of range for a 4-node network")]
    fn node_cores_out_of_range_panics_with_context() {
        let _ = NetworkConfig::datacenter(4).with_node_cores(7, 2);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut config = NetworkConfig::datacenter(4);
        config.nodes = 0;
        assert!(config.validate().is_err());

        let mut config = NetworkConfig::datacenter(4);
        config.links = vec![];
        assert!(config.validate().is_err());

        let mut config = NetworkConfig::datacenter(4);
        config.links = vec![LinkConfig::unlimited(); 3];
        assert!(config.validate().is_err());
    }

    #[test]
    fn flat_topology_resolves_like_the_scalar_model() {
        let scalar = NetworkConfig::datacenter(4);
        let flat = NetworkConfig::datacenter(4).with_topology(Topology::flat(
            SimDuration::from_micros(500),
            SimDuration::from_micros(50),
        ));
        let a = scalar.resolve();
        let b = flat.resolve();
        assert_eq!(a.links, b.links);
        assert_eq!(a.cpu_speeds, b.cpu_speeds);
        assert_eq!(a.cores, b.cores);
        assert_eq!(a.node_region, b.node_region);
        assert_eq!(a.region_count, b.region_count);
        assert_eq!(a.base_nanos, b.base_nanos);
        assert_eq!(a.jitter_nanos, b.jitter_nanos);
        assert_eq!(a.extra_nanos, b.extra_nanos);
        assert_eq!(a.delay_parts(0, 3), (500_000, 50_000));
    }

    #[test]
    fn wan_topology_is_symmetric_and_region_aware() {
        let topology = Topology::wan(&["us-east", "eu-west", "ap-northeast", "sa-east"]);
        assert_eq!(topology.region_count(), 4);
        assert_eq!(topology.region_name(1), "eu-west");
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(topology.base_between(i, j), topology.base_between(j, i));
                assert_eq!(topology.jitter_between(i, j), topology.jitter_between(j, i));
            }
            // Intra-region is LAN-like; inter-region is WAN-scale.
            assert_eq!(topology.base_between(i, i), SimDuration::from_micros(500));
        }
        assert_eq!(topology.base_between(0, 1), SimDuration::from_millis(38));
        assert!(topology.validate(16).is_ok());

        // Round-robin region assignment.
        let config = NetworkConfig::datacenter(8).with_topology(topology);
        let resolved = config.resolve();
        assert_eq!(resolved.node_region, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn straggler_profiles_resolve_onto_links_cpu_and_latency() {
        let topology = Topology::wan(&["us-east", "eu-west"])
            .with_straggler(3, StragglerProfile::wan_default());
        let config = NetworkConfig::datacenter(4)
            .with_cpu_speed(0.8)
            .with_topology(topology);
        let resolved = config.resolve();
        assert_eq!(resolved.links[3], LinkConfig::symmetric_mbps(1_000));
        assert_eq!(resolved.links[2], LinkConfig::paper_default());
        assert!((resolved.cpu_speeds[3] - 0.4).abs() < 1e-12); // 0.8 × 0.5 composes
        assert!((resolved.cpu_speeds[2] - 0.8).abs() < 1e-12);
        assert_eq!(resolved.extra_nanos[3], 25_000_000);
        // Both endpoints' extras are charged: node 1 (clean) → node 3 (straggler) pays
        // the straggler's 25 ms on top of the eu-west↔eu-west intra-region base.
        let (base, _) = resolved.delay_parts(1, 3);
        assert_eq!(base, 500_000 + 25_000_000);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn straggler_link_caps_never_upgrade_a_throttled_fleet() {
        // A 1 Gbps straggler cap on a 20 Mbps fleet keeps the node at 20 Mbps …
        let topology = Topology::flat(SimDuration::ZERO, SimDuration::ZERO)
            .with_straggler(1, StragglerProfile::wan_default());
        let resolved = NetworkConfig::throttled(4, 20).with_topology(topology.clone()).resolve();
        assert_eq!(resolved.links[1], LinkConfig::symmetric_mbps(20));
        // … while the same cap on the paper's 9.8 Gbps fleet degrades to 1 Gbps.
        let resolved = NetworkConfig::datacenter(4).with_topology(topology).resolve();
        assert_eq!(resolved.links[1], LinkConfig::symmetric_mbps(1_000));
        // An unlimited base link takes the cap; an uncapped profile keeps the base.
        let topology = Topology::flat(SimDuration::ZERO, SimDuration::ZERO)
            .with_straggler(0, StragglerProfile::wan_default())
            .with_straggler(2, StragglerProfile::slow_path(SimDuration::from_millis(1)));
        let mut config = NetworkConfig::datacenter(4).with_topology(topology);
        config.links = vec![LinkConfig::unlimited()];
        let resolved = config.resolve();
        assert_eq!(resolved.links[0], LinkConfig::symmetric_mbps(1_000));
        assert_eq!(resolved.links[2], LinkConfig::unlimited());
    }

    #[test]
    fn region_link_classes_apply_to_member_nodes() {
        let topology = Topology::two_dc(SimDuration::from_micros(200), SimDuration::from_millis(5))
            .with_region_link(1, LinkConfig::symmetric_mbps(100));
        let resolved = NetworkConfig::datacenter(4).with_topology(topology).resolve();
        assert_eq!(resolved.links[0], LinkConfig::paper_default());
        assert_eq!(resolved.links[1], LinkConfig::symmetric_mbps(100));
        assert_eq!(resolved.links[3], LinkConfig::symmetric_mbps(100));
        let (base, jitter) = resolved.delay_parts(0, 1);
        assert_eq!(base, 5_000_000);
        assert_eq!(jitter, 500_000);
    }

    #[test]
    fn topology_validation_catches_bad_shapes() {
        let mut topology = Topology::wan(&["us-east", "eu-west"]);
        topology.base[1] = SimDuration::from_millis(1); // break symmetry
        assert!(topology.validate(4).is_err());

        let topology = Topology::flat(SimDuration::ZERO, SimDuration::ZERO)
            .with_straggler(9, StragglerProfile::wan_default());
        assert!(topology.validate(4).is_err());

        let mut bad_cpu = StragglerProfile::wan_default();
        bad_cpu.cpu_factor = 0.0;
        let topology = Topology::flat(SimDuration::ZERO, SimDuration::ZERO).with_straggler(1, bad_cpu);
        assert!(topology.validate(4).is_err());

        let config = NetworkConfig::datacenter(4).with_topology(
            Topology::flat(SimDuration::ZERO, SimDuration::ZERO)
                .with_straggler(7, StragglerProfile::wan_default()),
        );
        assert!(config.validate().is_err());
    }

    #[test]
    fn max_one_way_latency_bounds_the_matrix_and_stragglers() {
        let topology = Topology::wan(&["us-east", "eu-west", "ap-northeast", "sa-east"]);
        // Worst pair: ap-northeast ↔ sa-east at 130 ms + 13 ms jitter.
        assert_eq!(topology.max_one_way_latency(), SimDuration::from_millis(143));
        let with_straggler = topology.with_straggler(0, StragglerProfile::wan_default());
        assert_eq!(
            with_straggler.max_one_way_latency(),
            SimDuration::from_millis(143 + 50)
        );
    }

    #[test]
    fn uniform_and_two_dc_builders() {
        let topology = Topology::uniform(
            &["a", "b", "c"],
            SimDuration::from_micros(100),
            SimDuration::from_millis(2),
            SimDuration::from_micros(10),
        );
        assert_eq!(topology.base_between(1, 1), SimDuration::from_micros(100));
        assert_eq!(topology.base_between(0, 2), SimDuration::from_millis(2));
        assert_eq!(topology.jitter_between(0, 2), SimDuration::from_micros(10));

        let dc = Topology::two_dc(SimDuration::from_micros(500), SimDuration::from_millis(10));
        assert_eq!(dc.region_count(), 2);
        assert_eq!(dc.jitter_between(0, 1), SimDuration::from_millis(1));
        assert_eq!(dc.jitter_between(0, 0), SimDuration::from_micros(50));
    }
}
