//! Network model configuration: per-node link capacities, propagation latency, and the
//! partial-synchrony (GST) model.

use crate::time::{SimDuration, SimTime};

/// Capacity of one node's network interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Uplink capacity in bits per second (`0` means unlimited).
    pub uplink_bps: u64,
    /// Downlink capacity in bits per second (`0` means unlimited).
    pub downlink_bps: u64,
}

impl LinkConfig {
    /// A symmetric link of the given capacity in bits per second.
    pub fn symmetric(bps: u64) -> Self {
        Self {
            uplink_bps: bps,
            downlink_bps: bps,
        }
    }

    /// A symmetric link of the given capacity in megabits per second.
    pub fn symmetric_mbps(mbps: u64) -> Self {
        Self::symmetric(mbps * 1_000_000)
    }

    /// An unlimited link (no serialisation delay).
    pub fn unlimited() -> Self {
        Self::symmetric(0)
    }

    /// The EC2 c5.xlarge NIC used in the paper's evaluation: 9.8 Gbps.
    pub fn paper_default() -> Self {
        Self::symmetric(9_800_000_000)
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Full network configuration.
///
/// The model charges each message `wire_size` bytes of serialisation delay at the
/// sender's uplink and the receiver's downlink (FIFO queues), plus a propagation delay
/// drawn uniformly from `[base_latency, base_latency + jitter]`. Before
/// [`NetworkConfig::gst`] an additional asynchronous delay of up to
/// `pre_gst_extra_delay` is added to every message, modelling the unstable period of
/// the partial-synchrony model of Dwork et al.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Per-node link capacities; either one entry shared by every node or one per node.
    pub links: Vec<LinkConfig>,
    /// Base one-way propagation latency.
    pub base_latency: SimDuration,
    /// Maximum additional random latency (uniform jitter).
    pub jitter: SimDuration,
    /// Global stabilisation time; before this instant messages suffer the extra delay.
    pub gst: SimTime,
    /// Maximum extra delay applied to messages sent before GST.
    pub pre_gst_extra_delay: SimDuration,
    /// Seed for the simulation's deterministic randomness.
    pub seed: u64,
    /// When true a node's uplink and downlink share one serialisation queue, i.e. the
    /// link capacity bounds the *total* bits the node moves per second. This matches the
    /// paper's cost model, where `C` is "the number of bits that can be transmitted per
    /// second at each replica" and the predicted scaling-up gain of Leopard is `C/2`.
    pub half_duplex: bool,
    /// Per-node CPU speed factors for the compute-resource model: modeled compute
    /// charged via [`crate::Context::charge_compute`] occupies `cost / speed` of the
    /// node's sequential compute queue. Either empty (every node at speed `1.0`), one
    /// entry shared by every node, or one entry per node — the same convention as
    /// [`Self::links`]. A factor below `1.0` models a slower core (the heterogeneous-
    /// CPU experiments), above `1.0` a faster one.
    pub cpu_speeds: Vec<f64>,
}

impl NetworkConfig {
    /// A LAN-like datacenter network of `nodes` replicas with the paper's 9.8 Gbps NICs
    /// and 500 µs one-way latency, already synchronous from the start (GST = 0).
    pub fn datacenter(nodes: usize) -> Self {
        Self {
            nodes,
            links: vec![LinkConfig::paper_default()],
            base_latency: SimDuration::from_micros(500),
            jitter: SimDuration::from_micros(50),
            gst: SimTime::ZERO,
            pre_gst_extra_delay: SimDuration::ZERO,
            seed: 0xC0FFEE,
            half_duplex: true,
            cpu_speeds: Vec::new(),
        }
    }

    /// A datacenter network with every NIC throttled to `mbps` megabits per second
    /// (the NetEm-throttled configurations of the paper's Fig. 10).
    pub fn throttled(nodes: usize, mbps: u64) -> Self {
        let mut config = Self::datacenter(nodes);
        config.links = vec![LinkConfig::symmetric_mbps(mbps)];
        config
    }

    /// Overrides the link configuration of a single node (e.g. to model a slow replica).
    pub fn with_node_link(mut self, node: usize, link: LinkConfig) -> Self {
        if self.links.len() != self.nodes {
            let shared = self.links.first().copied().unwrap_or_default();
            self.links = vec![shared; self.nodes];
        }
        self.links[node] = link;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets GST and the pre-GST extra delay.
    pub fn with_gst(mut self, gst: SimTime, extra: SimDuration) -> Self {
        self.gst = gst;
        self.pre_gst_extra_delay = extra;
        self
    }

    /// Sets one shared CPU speed factor for every node.
    pub fn with_cpu_speed(mut self, speed: f64) -> Self {
        self.cpu_speeds = vec![speed];
        self
    }

    /// Overrides the CPU speed factor of a single node (e.g. to model a straggler).
    pub fn with_node_cpu_speed(mut self, node: usize, speed: f64) -> Self {
        if self.cpu_speeds.len() != self.nodes {
            let shared = self.cpu_speeds.first().copied().unwrap_or(1.0);
            self.cpu_speeds = vec![shared; self.nodes];
        }
        self.cpu_speeds[node] = speed;
        self
    }

    /// The CPU speed factor of `node` (`1.0` when no factors are configured).
    pub fn cpu_speed(&self, node: usize) -> f64 {
        if self.cpu_speeds.len() == self.nodes {
            self.cpu_speeds[node]
        } else {
            self.cpu_speeds.first().copied().unwrap_or(1.0)
        }
    }

    /// The link configuration of `node`.
    pub fn link(&self, node: usize) -> LinkConfig {
        if self.links.len() == self.nodes {
            self.links[node]
        } else {
            self.links.first().copied().unwrap_or_default()
        }
    }

    /// Validates structural constraints.
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("network must have at least one node".to_string());
        }
        if self.links.is_empty() {
            return Err("at least one link configuration is required".to_string());
        }
        if self.links.len() != 1 && self.links.len() != self.nodes {
            return Err(format!(
                "links must have 1 or {} entries, got {}",
                self.nodes,
                self.links.len()
            ));
        }
        if !self.cpu_speeds.is_empty()
            && self.cpu_speeds.len() != 1
            && self.cpu_speeds.len() != self.nodes
        {
            return Err(format!(
                "cpu_speeds must have 0, 1 or {} entries, got {}",
                self.nodes,
                self.cpu_speeds.len()
            ));
        }
        if self.cpu_speeds.iter().any(|s| !s.is_finite() || *s <= 0.0) {
            return Err("cpu_speeds must be positive and finite".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_constructors() {
        assert_eq!(LinkConfig::symmetric_mbps(100).uplink_bps, 100_000_000);
        assert_eq!(LinkConfig::unlimited().downlink_bps, 0);
        assert_eq!(LinkConfig::paper_default().uplink_bps, 9_800_000_000);
    }

    #[test]
    fn datacenter_config_is_valid() {
        let config = NetworkConfig::datacenter(16);
        assert!(config.validate().is_ok());
        assert_eq!(config.link(3), LinkConfig::paper_default());
    }

    #[test]
    fn throttled_config_caps_all_links() {
        let config = NetworkConfig::throttled(8, 20);
        assert_eq!(config.link(0).uplink_bps, 20_000_000);
        assert_eq!(config.link(7).downlink_bps, 20_000_000);
    }

    #[test]
    fn per_node_override() {
        let config = NetworkConfig::datacenter(4).with_node_link(2, LinkConfig::symmetric_mbps(10));
        assert_eq!(config.link(2).uplink_bps, 10_000_000);
        assert_eq!(config.link(0), LinkConfig::paper_default());
        assert!(config.validate().is_ok());
    }

    #[test]
    fn cpu_speed_overrides() {
        let config = NetworkConfig::datacenter(4);
        assert_eq!(config.cpu_speed(2), 1.0);
        let config = NetworkConfig::datacenter(4).with_cpu_speed(0.5);
        assert_eq!(config.cpu_speed(0), 0.5);
        assert_eq!(config.cpu_speed(3), 0.5);
        let config = NetworkConfig::datacenter(4)
            .with_cpu_speed(1.0)
            .with_node_cpu_speed(2, 0.25);
        assert_eq!(config.cpu_speed(1), 1.0);
        assert_eq!(config.cpu_speed(2), 0.25);
        assert!(config.validate().is_ok());

        let mut bad = NetworkConfig::datacenter(4);
        bad.cpu_speeds = vec![1.0, 1.0];
        assert!(bad.validate().is_err());
        let mut bad = NetworkConfig::datacenter(4);
        bad.cpu_speeds = vec![0.0];
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut config = NetworkConfig::datacenter(4);
        config.nodes = 0;
        assert!(config.validate().is_err());

        let mut config = NetworkConfig::datacenter(4);
        config.links = vec![];
        assert!(config.validate().is_err());

        let mut config = NetworkConfig::datacenter(4);
        config.links = vec![LinkConfig::unlimited(); 3];
        assert!(config.validate().is_err());
    }
}
