//! Metric collection: per-node, per-category traffic accounting and protocol
//! observations.

use crate::time::SimTime;
use leopard_types::NodeId;

/// A protocol-level observation emitted through [`crate::Context::observe`].
///
/// Observations are the channel through which protocol implementations report
/// throughput-, latency- and fault-related facts to the experiment harness without the
/// harness having to understand protocol internals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObservationKind {
    /// `count` requests totalling `payload_bytes` became confirmed at this node.
    RequestsConfirmed {
        /// Number of requests confirmed.
        count: u64,
        /// Total request payload bytes confirmed.
        payload_bytes: u64,
    },
    /// A client measured end-to-end latency for one request (submission →
    /// acknowledgement), in nanoseconds.
    RequestLatency {
        /// Latency in nanoseconds.
        nanos: u64,
    },
    /// A BFTblock (or HotStuff block) reached the committed state at this node.
    BlockCommitted {
        /// The serial number / height of the block.
        sequence: u64,
        /// Number of requests the block confirms.
        requests: u64,
    },
    /// The node entered a new view.
    ViewChange {
        /// The new view number.
        view: u64,
    },
    /// One datablock retrieval round-trip completed.
    RetrievalCompleted {
        /// Nanoseconds between the query and the successful decode.
        nanos: u64,
        /// Bytes received while recovering the datablock.
        received_bytes: u64,
    },
    /// A labelled scalar sample, for protocol-specific breakdowns (e.g. stage latencies).
    Custom {
        /// Sample label.
        label: &'static str,
        /// Sample value.
        value: u64,
    },
}

/// An observation together with when and where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// Simulated time at which the observation was emitted.
    pub at: SimTime,
    /// Node that emitted it.
    pub node: NodeId,
    /// The payload.
    pub kind: ObservationKind,
}

/// Per-node, per-category traffic counters (bytes and message counts).
///
/// Recording is the engine's hottest metrics path (twice per routed copy of every
/// multicast), so the counters live in two flat `Vec`s indexed by
/// `category-slot × node` with the categories interned into a tiny table — a handful
/// of `&'static str` labels per protocol. The old `BTreeMap<(node, category), …>`
/// paid an ordered-map walk per record; interning costs a short linear scan over
/// ≤ ~12 labels instead, and query/iteration APIs sort on demand so the observable
/// order (node-major, categories alphabetical, only touched cells) is exactly the
/// old map iteration order.
#[derive(Debug, Clone, Default)]
pub struct TrafficMatrix {
    /// Interned category labels, in first-seen order.
    categories: Vec<&'static str>,
    /// Row stride: counters are stored at `slot * nodes + node`.
    nodes: usize,
    /// `(bytes, messages)` sent, `categories.len() * nodes` entries.
    sent: Vec<(u64, u64)>,
    /// `(bytes, messages)` received, `categories.len() * nodes` entries.
    received: Vec<(u64, u64)>,
    total_sent: u64,
    total_received: u64,
}

impl TrafficMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty matrix pre-sized for `nodes` nodes, so recording never
    /// reshapes the counter rows mid-run.
    pub fn with_nodes(nodes: usize) -> Self {
        Self {
            nodes,
            ..Self::default()
        }
    }

    /// The flat index for `(node, category)`, growing the table as needed.
    fn slot(&mut self, node: usize, category: &'static str) -> usize {
        if node >= self.nodes {
            self.grow_nodes(node + 1);
        }
        // Categories are `'static` literals from a handful of call sites, so the
        // pointer comparison almost always hits before the content fallback (which
        // stays for the correctness of distinct-address equal-content strings).
        let found = self
            .categories
            .iter()
            .position(|&c| std::ptr::eq(c.as_ptr(), category.as_ptr()) && c.len() == category.len())
            .or_else(|| self.categories.iter().position(|&c| c == category));
        let slot = match found {
            Some(slot) => slot,
            None => {
                self.categories.push(category);
                self.sent.resize(self.categories.len() * self.nodes, (0, 0));
                self.received.resize(self.categories.len() * self.nodes, (0, 0));
                self.categories.len() - 1
            }
        };
        slot * self.nodes + node
    }

    /// Reshapes the counter rows for a larger node count (only ever needed when the
    /// matrix was built without [`Self::with_nodes`]).
    fn grow_nodes(&mut self, at_least: usize) {
        let new_nodes = at_least.max(self.nodes * 2);
        let reshape = |old: &[(u64, u64)], old_nodes: usize| {
            let mut grown = vec![(0, 0); self.categories.len() * new_nodes];
            for (slot, row) in old.chunks(old_nodes.max(1)).enumerate() {
                grown[slot * new_nodes..slot * new_nodes + row.len()].copy_from_slice(row);
            }
            grown
        };
        self.sent = reshape(&self.sent, self.nodes);
        self.received = reshape(&self.received, self.nodes);
        self.nodes = new_nodes;
    }

    /// Records a sent message.
    pub fn record_sent(&mut self, node: NodeId, category: &'static str, bytes: u64) {
        let slot = self.slot(node.as_index(), category);
        let entry = &mut self.sent[slot];
        entry.0 += bytes;
        entry.1 += 1;
        self.total_sent += bytes;
    }

    /// Records a received message.
    pub fn record_received(&mut self, node: NodeId, category: &'static str, bytes: u64) {
        let slot = self.slot(node.as_index(), category);
        let entry = &mut self.received[slot];
        entry.0 += bytes;
        entry.1 += 1;
        self.total_received += bytes;
    }

    /// Sums one node's column of `counters` across all categories.
    fn node_bytes(&self, counters: &[(u64, u64)], node: usize) -> u64 {
        if node >= self.nodes {
            return 0;
        }
        (0..self.categories.len())
            .map(|slot| counters[slot * self.nodes + node].0)
            .sum()
    }

    /// Total bytes sent by `node` across all categories.
    pub fn sent_bytes(&self, node: NodeId) -> u64 {
        self.node_bytes(&self.sent, node.as_index())
    }

    /// Total bytes received by `node` across all categories.
    pub fn received_bytes(&self, node: NodeId) -> u64 {
        self.node_bytes(&self.received, node.as_index())
    }

    /// One cell of `counters`, or zero if the node or category was never touched.
    fn bytes_in(&self, counters: &[(u64, u64)], node: usize, category: &str) -> u64 {
        if node >= self.nodes {
            return 0;
        }
        self.categories
            .iter()
            .position(|&c| c == category)
            .map_or(0, |slot| counters[slot * self.nodes + node].0)
    }

    /// Bytes sent by `node` in a given category.
    pub fn sent_bytes_in(&self, node: NodeId, category: &'static str) -> u64 {
        self.bytes_in(&self.sent, node.as_index(), category)
    }

    /// Bytes received by `node` in a given category.
    pub fn received_bytes_in(&self, node: NodeId, category: &'static str) -> u64 {
        self.bytes_in(&self.received, node.as_index(), category)
    }

    /// Touched cells of `counters` in the old map order: node-major, categories
    /// alphabetical within a node.
    fn iter_counters<'a>(
        &'a self,
        counters: &'a [(u64, u64)],
    ) -> impl Iterator<Item = (NodeId, &'static str, u64, u64)> + 'a {
        let mut order: Vec<usize> = (0..self.categories.len()).collect();
        order.sort_unstable_by_key(|&slot| self.categories[slot]);
        (0..self.nodes).flat_map(move |node| {
            order.clone().into_iter().filter_map(move |slot| {
                let (bytes, messages) = counters[slot * self.nodes + node];
                (messages > 0)
                    .then(|| (NodeId(node as u32), self.categories[slot], bytes, messages))
            })
        })
    }

    /// Iterates over `(node, category, bytes, messages)` for sent traffic.
    pub fn iter_sent(&self) -> impl Iterator<Item = (NodeId, &'static str, u64, u64)> + '_ {
        self.iter_counters(&self.sent)
    }

    /// Iterates over `(node, category, bytes, messages)` for received traffic.
    pub fn iter_received(&self) -> impl Iterator<Item = (NodeId, &'static str, u64, u64)> + '_ {
        self.iter_counters(&self.received)
    }

    /// All categories that appear anywhere in the matrix (a category is interned the
    /// first time a message of that kind is recorded).
    pub fn categories(&self) -> Vec<&'static str> {
        let mut categories = self.categories.clone();
        categories.sort_unstable();
        categories
    }

    /// Total bytes sent across the whole system.
    pub fn total_sent_bytes(&self) -> u64 {
        self.total_sent
    }

    /// Total bytes received across the whole system.
    pub fn total_received_bytes(&self) -> u64 {
        self.total_received
    }
}

/// A fixed-bucket logarithmic histogram of latency samples in nanoseconds.
///
/// Buckets are exact below 32 ns and 1/16-octave geometric above (16 sub-buckets per
/// power of two), covering the full `u64` nanosecond range in a constant 976 counters
/// — memory stays O(1) no matter how many samples a run records. Percentile queries
/// return the midpoint of the bucket holding the requested rank, so the relative
/// error is bounded by half a bucket width (≈ 3%).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

/// Exact buckets cover `[0, LINEAR_LIMIT)`; geometric buckets take over above.
const LINEAR_LIMIT: u64 = 32;
/// Sub-buckets per octave in the geometric range.
const SUB_BUCKETS: usize = 16;
/// Total bucket count: `63 * 16 + 15 - 48 + 1` (the index of `u64::MAX`, plus one).
const NUM_BUCKETS: usize = 976;

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
        }
    }

    fn bucket_index(nanos: u64) -> usize {
        if nanos < LINEAR_LIMIT {
            return nanos as usize;
        }
        let exp = 63 - nanos.leading_zeros() as usize; // ≥ 5 here
        let frac = ((nanos >> (exp - 4)) & 15) as usize;
        exp * SUB_BUCKETS + frac - 48
    }

    /// The `[lower, upper)` nanosecond range of bucket `index` (`upper` saturates at
    /// `u64::MAX` for the topmost buckets).
    fn bucket_bounds(index: usize) -> (u64, u64) {
        if index < LINEAR_LIMIT as usize {
            return (index as u64, index as u64 + 1);
        }
        let exp = (index + 48) / SUB_BUCKETS;
        let frac = ((index + 48) % SUB_BUCKETS) as u64;
        let lower = (1u64 << exp) + (frac << (exp - 4));
        let width = 1u64 << (exp - 4);
        (lower, lower.saturating_add(width))
    }

    /// Records one latency sample.
    pub fn record(&mut self, nanos: u64) {
        self.counts[Self::bucket_index(nanos)] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `p`-quantile (`p` in `[0, 1]`, clamped) in nanoseconds, or `None` if the
    /// histogram is empty. Returns the midpoint of the bucket containing the rank
    /// `ceil(p · total)`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut cumulative = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                let (lower, upper) = Self::bucket_bounds(index);
                return Some(lower + (upper - lower) / 2);
            }
        }
        None // unreachable: total > 0 guarantees some bucket reaches the rank
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Collects traffic counters and observations during a run.
#[derive(Debug, Default)]
pub struct MetricsSink {
    /// Traffic counters.
    pub traffic: TrafficMatrix,
    /// Ordered list of protocol observations.
    pub observations: Vec<Observation>,
    /// O(1)-memory histogram of every [`ObservationKind::RequestLatency`] sample,
    /// for percentile reporting.
    pub latency_histogram: LatencyHistogram,
    /// Running per-node confirmed-request totals, maintained incrementally on
    /// [`Self::observe`] so full-run throughput queries never rescan the (at large
    /// `n`, multi-million-entry) observation log.
    confirmed_per_node: Vec<u64>,
}

impl MetricsSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sink pre-sized for `nodes` nodes: the traffic matrix rows and
    /// the per-node confirmation counters are allocated up front.
    pub fn with_nodes(nodes: usize) -> Self {
        Self {
            traffic: TrafficMatrix::with_nodes(nodes),
            confirmed_per_node: vec![0; nodes],
            ..Self::default()
        }
    }

    /// Records an observation.
    pub fn observe(&mut self, at: SimTime, node: NodeId, kind: ObservationKind) {
        match kind {
            ObservationKind::RequestLatency { nanos } => self.latency_histogram.record(nanos),
            ObservationKind::RequestsConfirmed { count, .. } => {
                let index = node.as_index();
                if index >= self.confirmed_per_node.len() {
                    self.confirmed_per_node.resize(index + 1, 0);
                }
                self.confirmed_per_node[index] += count;
            }
            _ => {}
        }
        self.observations.push(Observation { at, node, kind });
    }

    /// Total confirmed requests across all [`ObservationKind::RequestsConfirmed`]
    /// observations emitted by `node`.
    pub fn confirmed_requests_at(&self, node: NodeId) -> u64 {
        self.confirmed_per_node.get(node.as_index()).copied().unwrap_or(0)
    }

    /// The largest number of confirmed requests reported by any single node.
    ///
    /// Throughput is measured "from the server's side" in the paper; using the maximum
    /// over nodes avoids double counting while still reflecting system progress.
    pub fn max_confirmed_requests(&self, nodes: usize) -> u64 {
        self.confirmed_per_node
            .iter()
            .take(nodes)
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// The largest number of confirmed requests reported by any single node, counting
    /// only observations at or after `start` (for warm-up-excluding throughput).
    pub fn max_confirmed_requests_since(&self, nodes: usize, start: SimTime) -> u64 {
        let mut per_node = vec![0u64; nodes];
        for observation in &self.observations {
            if observation.at < start {
                continue;
            }
            if let ObservationKind::RequestsConfirmed { count, .. } = observation.kind {
                if let Some(slot) = per_node.get_mut(observation.node.as_index()) {
                    *slot += count;
                }
            }
        }
        per_node.into_iter().max().unwrap_or(0)
    }

    /// All request latency samples in nanoseconds.
    pub fn latency_samples(&self) -> Vec<u64> {
        self.observations
            .iter()
            .filter_map(|o| match o.kind {
                ObservationKind::RequestLatency { nanos } => Some(nanos),
                _ => None,
            })
            .collect()
    }

    /// Samples recorded under a custom label.
    pub fn custom_samples(&self, label: &str) -> Vec<u64> {
        self.observations
            .iter()
            .filter_map(|o| match &o.kind {
                ObservationKind::Custom { label: l, value } if *l == label => Some(*value),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_matrix_accumulates_by_node_and_category() {
        let mut matrix = TrafficMatrix::new();
        matrix.record_sent(NodeId(0), "datablock", 100);
        matrix.record_sent(NodeId(0), "datablock", 50);
        matrix.record_sent(NodeId(0), "vote", 10);
        matrix.record_received(NodeId(1), "datablock", 150);

        assert_eq!(matrix.sent_bytes(NodeId(0)), 160);
        assert_eq!(matrix.sent_bytes_in(NodeId(0), "datablock"), 150);
        assert_eq!(matrix.sent_bytes_in(NodeId(0), "vote"), 10);
        assert_eq!(matrix.received_bytes(NodeId(1)), 150);
        assert_eq!(matrix.received_bytes(NodeId(0)), 0);
        assert_eq!(matrix.categories(), vec!["datablock", "vote"]);
        assert_eq!(matrix.total_sent_bytes(), 160);
        assert_eq!(matrix.total_received_bytes(), 150);
        assert_eq!(matrix.iter_sent().count(), 2);
        assert_eq!(matrix.iter_received().count(), 1);
    }

    #[test]
    fn node_ranges_do_not_bleed_into_each_other() {
        let mut matrix = TrafficMatrix::new();
        matrix.record_sent(NodeId(1), "a", 5);
        matrix.record_sent(NodeId(2), "a", 7);
        assert_eq!(matrix.sent_bytes(NodeId(1)), 5);
        assert_eq!(matrix.sent_bytes(NodeId(2)), 7);
    }

    #[test]
    fn sink_aggregates_observations() {
        let mut sink = MetricsSink::new();
        sink.observe(
            SimTime(10),
            NodeId(0),
            ObservationKind::RequestsConfirmed {
                count: 5,
                payload_bytes: 640,
            },
        );
        sink.observe(
            SimTime(20),
            NodeId(0),
            ObservationKind::RequestsConfirmed {
                count: 7,
                payload_bytes: 896,
            },
        );
        sink.observe(SimTime(30), NodeId(1), ObservationKind::RequestLatency { nanos: 500 });
        sink.observe(
            SimTime(40),
            NodeId(1),
            ObservationKind::Custom {
                label: "stage",
                value: 3,
            },
        );

        assert_eq!(sink.confirmed_requests_at(NodeId(0)), 12);
        assert_eq!(sink.confirmed_requests_at(NodeId(1)), 0);
        assert_eq!(sink.max_confirmed_requests(2), 12);
        assert_eq!(sink.latency_samples(), vec![500]);
        assert_eq!(sink.custom_samples("stage"), vec![3]);
        assert_eq!(sink.custom_samples("missing"), Vec::<u64>::new());

        // Windowed counting: observations before the window start are excluded.
        assert_eq!(sink.max_confirmed_requests_since(2, SimTime(0)), 12);
        assert_eq!(sink.max_confirmed_requests_since(2, SimTime(15)), 7);
        assert_eq!(sink.max_confirmed_requests_since(2, SimTime(21)), 0);
    }

    #[test]
    fn histogram_buckets_are_contiguous_and_exhaustive() {
        // Every boundary value maps into range, and indices never decrease.
        let mut last = 0usize;
        for nanos in (0u64..1000).chain([1 << 20, (1 << 20) + 1, 1 << 40, u64::MAX / 2, u64::MAX]) {
            let index = LatencyHistogram::bucket_index(nanos);
            assert!(index < NUM_BUCKETS, "index {index} out of range for {nanos}");
            assert!(index >= last, "bucket index decreased at {nanos}");
            last = index;
            let (lower, upper) = LatencyHistogram::bucket_bounds(index);
            assert!(lower <= nanos, "{nanos} below its bucket [{lower}, {upper})");
            assert!(nanos < upper || upper == u64::MAX, "{nanos} above its bucket");
        }
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles_are_bucket_accurate() {
        let mut histogram = LatencyHistogram::new();
        assert!(histogram.is_empty());
        assert_eq!(histogram.percentile(0.5), None);
        // 100 samples of 1 ms, 10 of 100 ms: p50 lands in the 1 ms bucket, p99 and
        // beyond in the 100 ms bucket, with ≤ ~3% bucket-midpoint error.
        for _ in 0..100 {
            histogram.record(1_000_000);
        }
        for _ in 0..10 {
            histogram.record(100_000_000);
        }
        assert_eq!(histogram.total(), 110);
        let p50 = histogram.percentile(0.5).unwrap() as f64;
        assert!((p50 / 1_000_000.0 - 1.0).abs() < 0.04, "p50 = {p50}");
        let p99 = histogram.percentile(0.99).unwrap() as f64;
        assert!((p99 / 100_000_000.0 - 1.0).abs() < 0.04, "p99 = {p99}");
        // p at the extremes is clamped, not panicking.
        assert!(histogram.percentile(0.0).is_some());
        assert!(histogram.percentile(1.5).is_some());
        // Tiny exact-bucket samples are exact.
        let mut small = LatencyHistogram::new();
        small.record(7);
        assert_eq!(small.percentile(0.5), Some(7));
    }

    #[test]
    fn sink_feeds_latency_samples_into_the_histogram() {
        let mut sink = MetricsSink::new();
        sink.observe(SimTime(1), NodeId(0), ObservationKind::RequestLatency { nanos: 2_000_000 });
        sink.observe(SimTime(2), NodeId(1), ObservationKind::RequestLatency { nanos: 8_000_000 });
        sink.observe(
            SimTime(3),
            NodeId(0),
            ObservationKind::Custom { label: "x", value: 1 },
        );
        assert_eq!(sink.latency_histogram.total(), 2);
        assert_eq!(sink.latency_samples().len(), 2);
    }
}
