//! A thread-based real-time runtime driving the same [`Protocol`] state machines as the
//! discrete-event simulator.
//!
//! Every node runs on its own OS thread; messages travel over crossbeam channels and are
//! delivered immediately (the runtime does not emulate bandwidth — it exists to
//! demonstrate that the protocol state machines are genuinely IO-free and to provide a
//! "real deployment" path for the examples). Traffic is still accounted per category so
//! example programs can print utilisation summaries.

use crate::metrics::{MetricsSink, ObservationKind};
use crate::protocol::{Context, Protocol, SimMessage};
use crate::time::{SimDuration, SimTime};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use leopard_types::NodeId;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message envelope travelling between node threads.
enum Envelope<M> {
    /// A protocol message from a peer.
    Message {
        /// Sender of the message.
        from: NodeId,
        /// The message.
        message: M,
    },
    /// Stop the node thread.
    Shutdown,
}

/// A pending timer inside a node thread.
#[derive(PartialEq, Eq)]
struct PendingTimer {
    fires_at: Instant,
    token: u64,
}

impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse so the BinaryHeap pops the earliest deadline first.
        other
            .fires_at
            .cmp(&self.fires_at)
            .then(other.token.cmp(&self.token))
    }
}

impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Shared state between node threads.
struct Shared<M> {
    senders: Vec<Sender<Envelope<M>>>,
    metrics: Mutex<MetricsSink>,
    epoch: Instant,
}

/// The [`Context`] implementation used by node threads.
struct RuntimeContext<'a, M> {
    node: NodeId,
    node_count: usize,
    shared: &'a Shared<M>,
    timers: &'a mut BinaryHeap<PendingTimer>,
    rng: &'a mut StdRng,
    now: SimTime,
}

impl<M: SimMessage> Context for RuntimeContext<'_, M> {
    type Message = M;

    fn now(&self) -> SimTime {
        self.now
    }

    fn node_id(&self) -> NodeId {
        self.node
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn send(&mut self, to: NodeId, message: M) {
        let size = message.wire_size() as u64;
        let category = message.category();
        {
            let mut metrics = self.shared.metrics.lock();
            metrics.traffic.record_sent(self.node, category, size);
            metrics.traffic.record_received(to, category, size);
        }
        // A full channel or a disconnected receiver simply drops the message; BFT
        // protocols tolerate message loss by design.
        let _ = self.shared.senders[to.as_index()].send(Envelope::Message {
            from: self.node,
            message,
        });
    }

    fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.timers.push(PendingTimer {
            fires_at: Instant::now() + Duration::from_nanos(delay.as_nanos()),
            token,
        });
    }

    fn observe(&mut self, observation: ObservationKind) {
        self.shared
            .metrics
            .lock()
            .observe(self.now, self.node, observation);
    }

    fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }
}

/// Runs `n` nodes of a protocol on OS threads for `duration`, then shuts them down and
/// returns the collected metrics.
///
/// The `factory` is called once per node. The runtime delivers messages instantly and
/// fires timers on wall-clock deadlines; it is intended for small-`n` demonstrations
/// and soak tests, not for bandwidth experiments (use [`crate::Simulation`] for those).
pub fn run_threaded<P, F>(n: usize, factory: F, duration: Duration, seed: u64) -> MetricsSink
where
    P: Protocol + Send + 'static,
    F: Fn(NodeId) -> P,
{
    let mut senders = Vec::with_capacity(n);
    let mut receivers: Vec<Receiver<Envelope<P::Message>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }
    let shared = Arc::new(Shared {
        senders,
        metrics: Mutex::new(MetricsSink::new()),
        epoch: Instant::now(),
    });

    let mut handles = Vec::with_capacity(n);
    for (index, receiver) in receivers.into_iter().enumerate() {
        let node = NodeId(index as u32);
        let mut protocol = factory(node);
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            node_loop(node, n, &mut protocol, receiver, &shared, seed);
        }));
    }

    std::thread::sleep(duration);
    for sender in &shared.senders {
        let _ = sender.send(Envelope::Shutdown);
    }
    for handle in handles {
        let _ = handle.join();
    }

    let shared = Arc::try_unwrap(shared).unwrap_or_else(|_| panic!("all node threads joined"));
    shared.metrics.into_inner()
}

fn node_loop<P: Protocol>(
    node: NodeId,
    node_count: usize,
    protocol: &mut P,
    receiver: Receiver<Envelope<P::Message>>,
    shared: &Shared<P::Message>,
    seed: u64,
) {
    let mut timers: BinaryHeap<PendingTimer> = BinaryHeap::new();
    let mut rng = StdRng::seed_from_u64(seed ^ (node.0 as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));

    let now = |shared: &Shared<P::Message>| SimTime(shared.epoch.elapsed().as_nanos() as u64);

    {
        let mut ctx = RuntimeContext {
            node,
            node_count,
            shared,
            timers: &mut timers,
            rng: &mut rng,
            now: now(shared),
        };
        protocol.on_start(&mut ctx);
    }

    loop {
        // Fire any due timers first.
        let mut due = Vec::new();
        let instant_now = Instant::now();
        while timers
            .peek()
            .map_or(false, |timer| timer.fires_at <= instant_now)
        {
            due.push(timers.pop().expect("peeked").token);
        }
        for token in due {
            let mut ctx = RuntimeContext {
                node,
                node_count,
                shared,
                timers: &mut timers,
                rng: &mut rng,
                now: now(shared),
            };
            protocol.on_timer(token, &mut ctx);
        }

        // Wait for the next message or the next timer deadline.
        let timeout = timers
            .peek()
            .map(|timer| timer.fires_at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(10));
        match receiver.recv_timeout(timeout) {
            Ok(Envelope::Message { from, message }) => {
                let mut ctx = RuntimeContext {
                    node,
                    node_count,
                    shared,
                    timers: &mut timers,
                    rng: &mut rng,
                    now: now(shared),
                };
                protocol.on_message(from, message, &mut ctx);
            }
            Ok(Envelope::Shutdown) => break,
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::test_support::PingPong;

    #[test]
    fn threaded_pingpong_completes() {
        let metrics = run_threaded(
            2,
            |_| PingPong {
                max_hops: 6,
                payload: 32,
                received: 0,
            },
            Duration::from_millis(300),
            7,
        );
        assert_eq!(metrics.custom_samples("pingpong_done"), vec![6]);
        assert!(metrics.traffic.total_sent_bytes() > 0);
    }

    #[test]
    fn threaded_runtime_fires_timers() {
        use crate::protocol::test_support::PingMessage;

        struct TimerCounter {
            fired: u32,
        }
        impl Protocol for TimerCounter {
            type Message = PingMessage;
            fn on_start(&mut self, ctx: &mut dyn Context<Message = PingMessage>) {
                ctx.set_timer(SimDuration::from_millis(20), 1);
            }
            fn on_message(
                &mut self,
                _from: NodeId,
                _message: PingMessage,
                _ctx: &mut dyn Context<Message = PingMessage>,
            ) {
            }
            fn on_timer(&mut self, token: u64, ctx: &mut dyn Context<Message = PingMessage>) {
                self.fired += 1;
                ctx.observe(ObservationKind::Custom {
                    label: "timer",
                    value: token,
                });
                if self.fired < 3 {
                    ctx.set_timer(SimDuration::from_millis(20), token + 1);
                }
            }
        }

        let metrics = run_threaded(
            1,
            |_| TimerCounter { fired: 0 },
            Duration::from_millis(300),
            1,
        );
        assert_eq!(metrics.custom_samples("timer"), vec![1, 2, 3]);
    }
}
