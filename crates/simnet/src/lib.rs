//! A bandwidth-accurate discrete-event network simulator (and a small thread-based
//! real-time runtime) for sans-IO BFT protocol state machines.
//!
//! The paper evaluates Leopard and HotStuff on up to 600 EC2 instances whose 9.8 Gbps
//! NICs are the binding resource; this crate is the substitute substrate (see
//! `DESIGN.md` §3). Every message a protocol sends is charged its exact wire size
//! against the sender's uplink and the receiver's downlink, modelled as FIFO
//! serialisation queues, plus a propagation delay. Throughput, latency, per-category
//! bandwidth utilisation and leader-bottleneck effects then emerge from the same
//! protocol code that also runs on the thread-based runtime.
//!
//! # Architecture
//!
//! * [`Protocol`] / [`Context`] — the sans-IO interface protocol state machines
//!   implement ([`protocol`]);
//! * [`Simulation`] — the deterministic discrete-event engine ([`sim`]);
//! * [`NetworkConfig`] / [`LinkConfig`] — bandwidth, latency and partial-synchrony
//!   parameters ([`network`]);
//! * [`Topology`] / [`StragglerProfile`] — geo-distributed deployments: named regions,
//!   a pairwise latency/jitter matrix, per-region bandwidth classes and per-node
//!   stragglers that are network- and CPU-slow at once ([`network`]);
//! * [`FaultPlan`] — message filters, crash/restart schedules and region partition
//!   windows for Byzantine experiments ([`fault`]);
//! * [`MetricsSink`], [`TrafficMatrix`] — per-node, per-category byte accounting and
//!   protocol observations ([`metrics`]);
//! * [`runtime`] — a crossbeam-channel + thread runtime that drives the same
//!   [`Protocol`] implementations in real time for the runnable examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod fanout;
pub mod fault;
pub mod metrics;
pub mod network;
pub mod protocol;
pub mod runtime;
pub(crate) mod shard;
pub mod sim;
pub mod time;

pub use fault::{flapping_windows, CrashWindow, FaultPlan, MessageFate, PartitionWindow};
pub use metrics::{LatencyHistogram, MetricsSink, Observation, ObservationKind, TrafficMatrix};
pub use network::{LinkConfig, NetworkConfig, ResolvedTopology, StragglerProfile, Topology};
pub use protocol::{Context, ProgressProbe, Protocol, SimMessage};
pub use sim::{global_events_processed, ExecutionMode, Simulation, SimulationReport};
pub use time::{SimDuration, SimTime};
