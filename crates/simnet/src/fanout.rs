//! The interned fan-out side table behind the compressed event queue.
//!
//! A multicast at `n` nodes used to queue `2(n − 1)` independent `Arrive`/`Deliver`
//! events, each carrying `{from, to, Arc<message>, size}` — 32 payload bytes that
//! every heap sift moved and an `Arc` refcount that every clone/drop bounced between
//! cores. The profile in `DESIGN.md` §10 showed this queue-resident payload traffic,
//! not queue management, as the engine's remaining cost at n ≥ 1000.
//!
//! This table interns each *logical* fan-out once: a slot holds the sender, the
//! shared message envelope and the wire size, and the queue-resident events shrink to
//! a `{fanout: u32, to: NodeId}` handle. Nothing about event *keys* changes — the
//! `(time, seq)` assignment order is identical by construction — so every
//! determinism golden captured before the compression passes uncaptured.
//!
//! # Slot lifecycle (refcount)
//!
//! `intern` creates a slot with zero references. The engine takes one reference per
//! queued handle: each cross-node `Arrive` push and each self-delivery `Deliver`
//! push calls [`FanoutTable::incref`]. An `Arrive` that matures into its downlink
//! `Deliver` *transfers* its reference (no count change). A reference is returned
//! when the handle leaves the schedule: [`FanoutTable::consume`] when a `Deliver`
//! reaches its callback, [`FanoutTable::release`] when a crashed receiver swallows
//! the event. The slot is reclaimed onto a free list the moment its count returns
//! to zero — so peak table size tracks the number of *in-flight logical messages*,
//! not the fan-out width, and a fan-out whose every copy was dropped at route time
//! (crashed sender, severed partition) is reclaimed immediately by
//! [`FanoutTable::release_if_unused`].

use leopard_types::NodeId;
use std::sync::Arc;

/// One interned logical fan-out.
struct Slot<M> {
    /// The sending node (the `from` of every copy). The wire size is *not* here:
    /// `Arrive` events carry it inline (it fits in `EventKind` padding), so keeping
    /// the slot at 16 bytes beats caching a field only the queue ever needs.
    from: NodeId,
    /// Outstanding queue handles referencing this slot.
    refs: u32,
    /// The shared envelope; `None` once the slot is on the free list.
    message: Option<Arc<M>>,
}

/// The per-run fan-out side table. See the module docs for the slot lifecycle.
pub(crate) struct FanoutTable<M> {
    slots: Vec<Slot<M>>,
    /// Reclaimed slot indices, reused LIFO so the table stays dense and cache-warm.
    free: Vec<u32>,
    live: usize,
}

impl<M> FanoutTable<M> {
    pub(crate) fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live (referenced) slots — in-flight logical messages.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// High-water slot count: the table never shrinks its backing storage, so this
    /// is the peak number of concurrently in-flight logical messages.
    pub(crate) fn peak(&self) -> usize {
        self.slots.len()
    }

    /// Interns one logical fan-out with zero references; pair with
    /// [`Self::release_if_unused`] after routing every copy.
    pub(crate) fn intern(&mut self, from: NodeId, message: Arc<M>) -> u32 {
        self.live += 1;
        let slot = Slot {
            from,
            refs: 0,
            message: Some(message),
        };
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = slot;
                id
            }
            None => {
                // 25% growth instead of doubling: peak slot count tracks in-flight
                // logical messages (hundreds of thousands at n >= 1000), so halving
                // the overallocation is a real RSS win.
                if self.slots.len() == self.slots.capacity() {
                    self.slots.reserve_exact((self.slots.len() / 4).max(32));
                }
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Takes one reference: a queue handle (an `Arrive` push or a self-delivery
    /// `Deliver` push) now points at the slot.
    pub(crate) fn incref(&mut self, id: u32) {
        let slot = &mut self.slots[id as usize];
        debug_assert!(slot.message.is_some(), "incref on a reclaimed fan-out slot");
        slot.refs += 1;
    }

    /// Reclaims a freshly interned slot nothing ended up referencing (every copy of
    /// the fan-out was dropped at route time). No-op if any handle was queued.
    pub(crate) fn release_if_unused(&mut self, id: u32) {
        if self.slots[id as usize].refs == 0 {
            self.reclaim(id);
        }
    }

    /// The sending node of the slot.
    pub(crate) fn sender(&self, id: u32) -> NodeId {
        let slot = &self.slots[id as usize];
        debug_assert!(slot.message.is_some(), "lookup on a reclaimed fan-out slot");
        slot.from
    }

    /// The shared envelope (read-only; used by the parallel round's workers, which
    /// defer all reference accounting to the sequential apply phase).
    pub(crate) fn message(&self, id: u32) -> &Arc<M> {
        self.slots[id as usize]
            .message
            .as_ref()
            .expect("message lookup on a reclaimed fan-out slot")
    }

    /// Returns one reference without taking the message (crashed receiver, or the
    /// apply-phase mirror of a worker-side consumption); reclaims the slot when the
    /// last reference returns.
    pub(crate) fn release(&mut self, id: u32) {
        let slot = &mut self.slots[id as usize];
        debug_assert!(slot.refs > 0, "release on an unreferenced fan-out slot");
        slot.refs -= 1;
        if slot.refs == 0 {
            self.reclaim(id);
        }
    }

    /// Consumes one reference and produces the sender plus an owned copy of the
    /// message for the receiver's callback. The last reference takes the envelope
    /// out of the table and unwraps it without a deep clone — exactly the
    /// `Arc::try_unwrap` fast path the expanded representation gave the final
    /// recipient of a fan-out.
    pub(crate) fn consume(&mut self, id: u32) -> (NodeId, M)
    where
        M: Clone,
    {
        let slot = &mut self.slots[id as usize];
        debug_assert!(slot.refs > 0, "consume on an unreferenced fan-out slot");
        let from = slot.from;
        slot.refs -= 1;
        if slot.refs == 0 {
            let shared = slot.message.take().expect("live slot holds the envelope");
            self.reclaim(id);
            let message = Arc::try_unwrap(shared).unwrap_or_else(|shared| (*shared).clone());
            (from, message)
        } else {
            let shared = slot.message.as_ref().expect("live slot holds the envelope");
            ((from), (**shared).clone())
        }
    }

    /// Audit view: outstanding references per slot index, `0` for reclaimed slots.
    /// `Simulation::into_report` compares this against a tally of the handles still
    /// queued, so a leak (slot refs > queued handles) and a lost reference (queued
    /// handles > slot refs) are both caught even for runs cut off mid-flight.
    pub(crate) fn refcounts(&self) -> Vec<u32> {
        self.slots
            .iter()
            .map(|slot| if slot.message.is_some() { slot.refs } else { 0 })
            .collect()
    }

    fn reclaim(&mut self, id: u32) {
        let slot = &mut self.slots[id as usize];
        slot.message = None;
        slot.refs = 0;
        self.free.push(id);
        self.live -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_reference_reclaims_the_slot_and_avoids_the_deep_clone() {
        let mut table: FanoutTable<Vec<u8>> = FanoutTable::new();
        let id = table.intern(NodeId(3), Arc::new(vec![1, 2, 3]));
        table.incref(id);
        table.incref(id);
        table.release_if_unused(id); // referenced: must not reclaim
        assert_eq!(table.live(), 1);

        let (from, first) = table.consume(id);
        assert_eq!(from, NodeId(3));
        assert_eq!(first, vec![1, 2, 3]);
        assert_eq!(table.live(), 1, "one reference still outstanding");

        let (_, last) = table.consume(id);
        assert_eq!(last, vec![1, 2, 3]);
        assert_eq!(table.live(), 0, "last consume reclaims the slot");

        // The freed slot is reused before the table grows.
        let reused = table.intern(NodeId(0), Arc::new(vec![9]));
        assert_eq!(reused, id);
        assert_eq!(table.peak(), 1);
    }

    #[test]
    fn dropped_fanouts_are_reclaimed_immediately() {
        let mut table: FanoutTable<u64> = FanoutTable::new();
        let id = table.intern(NodeId(0), Arc::new(7));
        // Every copy was dropped at route time: nothing ever referenced the slot.
        table.release_if_unused(id);
        assert_eq!(table.live(), 0);

        // Crash-path returns (release) reclaim exactly like consumption.
        let id = table.intern(NodeId(1), Arc::new(8));
        table.incref(id);
        table.incref(id);
        table.release_if_unused(id);
        table.release(id);
        assert_eq!(table.live(), 1);
        table.release(id);
        assert_eq!(table.live(), 0);
        assert_eq!(table.peak(), 1, "the slab reuses slots instead of growing");
    }
}
