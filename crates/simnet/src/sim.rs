//! The deterministic discrete-event simulation engine.
//!
//! # Network model
//!
//! Sending a message of `s` bytes from `a` to `b` at time `t`:
//!
//! 1. The message queues at `a`'s uplink: it departs at
//!    `departure = max(t, uplink_free[a]) + s·8 / uplink_bps`.
//! 2. It propagates for `base + U(0, jitter)` (plus `U(0, pre_gst_extra_delay)` before
//!    GST), where `base` and `jitter` come from the flat scalar
//!    `base_latency`/`jitter` pair, or — when the configuration carries a
//!    [`crate::network::Topology`] — from the region-pair latency matrix, plus the
//!    deterministic straggler extras of both endpoints. Exactly one uniform jitter
//!    sample is drawn per routed message whose pair jitter bound is non-zero, in route
//!    order, so a flat single-region topology reproduces the scalar model's schedule
//!    bit-identically.
//! 3. It queues at `b`'s downlink **on arrival**: it is delivered at
//!    `max(arrival, downlink_free[b]) + s·8 / downlink_bps`, where the reservation is
//!    made when the bytes arrive (the `Arrive` event), so the downlink FIFO is ordered
//!    by arrival time — not by the order in which messages happened to be routed.
//!    (Route-time reservation let one fan-out's far-future tail copy block control
//!    messages routed later but arriving earlier, an artificial head-of-line blocking
//!    that starved votes and collapsed Leopard's throughput at n ≥ 128.)
//!
//! In half-duplex mode (the paper's cost model, where `C` is the total bits a replica
//! can move per second) the uplink and downlink of a node share one queue.
//!
//! The model is a *fluid approximation*: queue occupancy is tracked through the
//! `*_free` horizons rather than per-packet, which is exact for FIFO links and accurate
//! enough to reproduce the paper's bandwidth-bound behaviour. Determinism: for a fixed
//! seed and protocol, the event order is completely reproducible.

use crate::fanout::FanoutTable;
use crate::fault::{CrashWindow, FaultPlan, MessageFate};
use crate::metrics::{MetricsSink, ObservationKind};
use crate::network::{NetworkConfig, ResolvedTopology};
use crate::protocol::{Context, Protocol, SimMessage};
use crate::shard::{pack, unpack, Shard, ShardedQueue};
use crate::time::{SimDuration, SimTime};
use leopard_types::{NodeId, WireSize};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Events processed by every simulation in this process, for events/sec accounting
/// around an experiment (see [`global_events_processed`]). Monotonic; the bench
/// harness samples it before and after a run and divides the delta by wall time.
static EVENTS_PROCESSED: AtomicU64 = AtomicU64::new(0);

/// Total events processed by all [`Simulation`] runs in this process so far.
pub fn global_events_processed() -> u64 {
    EVENTS_PROCESSED.load(Ordering::Relaxed)
}

/// How [`Simulation::run_until`] executes the event schedule. Both modes produce
/// bit-identical reports; `Parallel` trades single-thread speed for multi-core
/// scaling on wide same-instant batches (large fan-out start-ups, synchronized
/// timer storms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// One event at a time in `(time, seq)` order, with conservative-lookahead shard
    /// runs keeping the merge heap off the hot path. The default.
    Sequential,
    /// Shard rounds: every shard whose head event lies inside the conservative
    /// lookahead horizon is drained up to that horizon by a worker thread that owns
    /// all of the shard's per-node state; every engine-side effect (net-RNG draws,
    /// the stateful fault judge, metrics, event sequence numbers, fan-out reference
    /// accounting) is recorded and replayed sequentially in the exact `(time, seq)`
    /// order afterwards, so the schedule stays bit-identical to `Sequential`.
    Parallel {
        /// Worker thread count; `0` means `std::thread::available_parallelism()`.
        threads: usize,
    },
}

/// What a queued event does when it fires.
///
/// The queue-resident representation is **fan-out compressed** (PR 10): `Arrive` and
/// `Deliver` no longer carry `{from, Arc<message>, size}` payloads — those live once
/// per logical fan-out in the engine's [`crate::fanout::FanoutTable`] and the events
/// carry a `{fanout, to}` handle. That drops the payload every heap sift moves from
/// 32 to 24 bytes, removes two `Arc` refcount round-trips per copy from the queue
/// path, and — because nothing about event *keys* changes — leaves the `(time, seq)`
/// schedule identical by construction (every pre-compression determinism golden
/// passes uncaptured). It also makes the kind plain data (no drop glue), so heap
/// rotations are pure `memcpy`.
#[derive(Clone, Copy)]
pub(crate) enum EventKind {
    /// Call `on_start` on the node.
    Start(NodeId),
    /// Call `on_restart` on a node coming back from a finite crash window. Scheduled
    /// at construction from the fault plan's restart instants; bumps the node's timer
    /// epoch first, so timers armed before the crash never fire after the restart
    /// (the process died — its pending timers died with it).
    Restart(NodeId),
    /// A message finishes propagating and reaches the receiver's downlink queue. The
    /// downlink serialisation slot is reserved **when this fires** — i.e. in arrival
    /// order — not when the message was routed. Reserving at route time would let a
    /// large fan-out's tail copy (whose arrival lies far in the future behind the
    /// sender's uplink backlog) block small control messages routed later but arriving
    /// earlier; that artificial head-of-line blocking compounds through the half-duplex
    /// coupling and starves votes at large `n`.
    Arrive {
        /// The interned fan-out (sender, shared envelope, wire size).
        fanout: u32,
        /// Receiver.
        to: NodeId,
        /// Wire size of this copy, carried inline so the downlink reservation
        /// needs no fan-out table lookup (the sender is not needed until the
        /// `Deliver` consumes the slot). Fits in the `Timer`-variant padding, so
        /// `EventKind` stays 24 bytes.
        size: u32,
    },
    /// Deliver a message: the receiver's callback runs and takes one reference off
    /// the fan-out slot (the last reference reclaims it).
    Deliver {
        /// The interned fan-out.
        fanout: u32,
        /// Receiver.
        to: NodeId,
    },
    /// Fire a timer.
    Timer {
        /// The node whose timer fires.
        node: NodeId,
        /// The token passed to `set_timer`.
        token: u64,
        /// The node's timer epoch when the timer was armed. A restart bumps the
        /// node's epoch, so timers armed before a crash are swallowed when they fire
        /// afterwards. Stays `0` forever on runs without restarts.
        epoch: u32,
    },
}

impl EventKind {
    /// The shard (owning node) whose state this event touches when it fires.
    fn owner(&self) -> u32 {
        match self {
            EventKind::Start(node) | EventKind::Restart(node) => node.0,
            EventKind::Arrive { to, .. } | EventKind::Deliver { to, .. } => to.0,
            EventKind::Timer { node, .. } => node.0,
        }
    }
}

/// An entry in the event queue, ordered by time then insertion sequence.
pub(crate) struct QueuedEvent {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind,
}

/// Builds a payload-free queue entry for the shard-queue unit tests.
#[cfg(test)]
pub(crate) fn test_event(at: SimTime, seq: u64) -> QueuedEvent {
    QueuedEvent {
        at,
        seq,
        kind: EventKind::Start(NodeId(0)),
    }
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One outgoing transmission requested during a callback. Keeping unicasts and
/// multicasts in a single ordered list preserves the exact send order (and therefore
/// the exact event-queue sequence numbers) of the equivalent unicast-only engine.
enum Outgoing<M> {
    /// A single-recipient send.
    Unicast(NodeId, M),
    /// A send to every other node; the engine expands it with `wire_size()` and
    /// `category()` computed once for the whole fan-out.
    Multicast(M),
    /// A send to every node including the sender; the self-delivery shares the same
    /// `Arc` envelope as the fan-out, so no extra clone of the message is made.
    Broadcast(M),
}

/// Actions a protocol requested during one callback, applied by the engine afterwards.
struct ActionBuffer<M> {
    sends: Vec<Outgoing<M>>,
    timers: Vec<(SimDuration, u64)>,
    observations: Vec<ObservationKind>,
    /// Modeled CPU charged via [`Context::charge_compute`] during the callback.
    compute: SimDuration,
}

impl<M> Default for ActionBuffer<M> {
    fn default() -> Self {
        Self {
            sends: Vec::new(),
            timers: Vec::new(),
            observations: Vec::new(),
            compute: SimDuration::ZERO,
        }
    }
}

impl<M> ActionBuffer<M> {
    /// Empties the buffer while keeping its allocations, so the engine can reuse one
    /// scratch buffer across callbacks instead of allocating three `Vec`s per event.
    fn clear(&mut self) {
        self.sends.clear();
        self.timers.clear();
        self.observations.clear();
        self.compute = SimDuration::ZERO;
    }
}

/// One protocol-callback invocation in engine event terms, shared by the sequential
/// dispatcher and the parallel round workers. `Message` carries the
/// already-materialised owned message (see [`FanoutTable::consume`]).
enum Invoke<M> {
    Start,
    Restart,
    Message { from: NodeId, message: M },
    Timer { token: u64 },
}

// ---------------------------------------------------------------------------
// Parallel shard rounds.
//
// `ExecutionMode::Parallel` executes *shard rounds*: every shard whose head event
// lies at or below a common horizon (`round start + conservative lookahead`, the
// same bound the sequential shard runs use — see `crate::shard`) is drained up to
// that horizon by a worker that owns all of the shard's per-node state (protocol,
// node RNG, timer epoch, link horizons, compute lanes, the shard's event heap).
// Everything global — the net RNG, event sequence numbers, metrics, the stateful
// fault filter, the fan-out table — is *recorded* as a per-dispatch effect list and
// replayed afterwards in exact `(time, seq)` order, so the schedule, every RNG
// draw, and every metric stays bit-identical to the sequential engine
// (`tests/engine_equivalence.rs` holds the goldens).
//
// Why the horizon proof carries over: a worker executes only events at or below
// `cutoff = round start + lookahead`. Any *cross-shard* event such an execution
// creates arrives no earlier than its dispatch time plus the minimum cross-shard
// base latency, i.e. at or beyond `cutoff` — and with a larger seq than everything
// already queued — so it belongs to a later round no matter which shard it lands
// on. Events a dispatch schedules on its *own* shard (timers, self-deliveries, the
// downlink leg of an arrival) can land inside the horizon; the worker executes
// those itself from a local overlay heap, ordered by creation index — which equals
// `seq` order, because the replay assigns sequence numbers in the same order the
// worker recorded the pushes.
// ---------------------------------------------------------------------------

/// A sequence-number reference in a round's dispatch stream: either the real seq a
/// queued event carried, or the index of a round-local push whose seq the replay
/// assigns (and records) when it reaches the push.
#[derive(Clone, Copy)]
enum SeqRef {
    Queued(u64),
    Local(u32),
}

/// A fan-out table reference usable before the replay has interned this round's new
/// fan-outs: `Shared` is a real table id (from a previous round or the sequential
/// engine), `Local` indexes the round's own intern list.
#[derive(Clone, Copy)]
enum FanoutRef {
    Shared(u32),
    Local(u32),
}

/// A fan-out interned by a round worker; the message is taken by the replay's
/// `Intern` effect, which assigns the real table id.
struct LocalFanout<M> {
    message: Option<M>,
}

/// An own-shard event created and executed inside the same round (never queued).
enum LocalKind {
    Timer { token: u64, epoch: u32 },
    Deliver { fanout: FanoutRef },
}

/// Overlay-heap entry: round-local events fire in `(at, id)` order, and `id` is the
/// creation index, which the replay maps to ascending sequence numbers — so the
/// overlay order IS `(time, seq)` order (queued events always win ties on `at`
/// because every queued seq predates every round-local one).
struct LocalEvent {
    at: SimTime,
    id: u32,
    kind: LocalKind,
}

impl PartialEq for LocalEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl Eq for LocalEvent {}
impl PartialOrd for LocalEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for LocalEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.id).cmp(&(other.at, other.id))
    }
}

/// One deferred engine-side effect recorded by a round worker, replayed by the
/// coordinator in global `(time, seq)` dispatch order. Effects within a dispatch
/// are replayed in recorded order, which mirrors the sequential engine's effect
/// order exactly (observations, then timers, then sends; `judge` before anything
/// else inside a route).
enum RunEffect {
    /// `metrics.observe(at, node, observation)` — `at` is the compute-completion
    /// instant of the recording callback.
    Observe {
        at: SimTime,
        observation: ObservationKind,
    },
    /// Assign the next seq to round-local push `id` (a timer the worker executed
    /// itself).
    LocalTimer { id: u32 },
    /// Assign the next seq to round-local push `id` and take one fan-out reference
    /// (a self-delivery the worker executed itself).
    LocalDeliverNew { id: u32, fanout: FanoutRef },
    /// Assign the next seq to round-local push `id`; the reference transfers from
    /// the `Arrive` handle that matured (the worker executed the delivery itself).
    LocalDeliverXfer { id: u32 },
    /// A timer beyond the horizon: a real queue push.
    PushTimer { at: SimTime, token: u64, epoch: u32 },
    /// A self-delivery beyond the horizon: a real queue push taking one reference.
    PushDeliverNew {
        at: SimTime,
        to: NodeId,
        fanout: FanoutRef,
    },
    /// A downlink leg crossing the horizon: a real queue push, reference transfers.
    PushDeliverXfer {
        at: SimTime,
        to: NodeId,
        fanout: FanoutRef,
    },
    /// Intern round-local fan-out `id` into the real table.
    Intern { id: u32 },
    /// The global tail of a cross-shard route: the stateful fault judge, the
    /// partition check, traffic metrics, the jitter draw(s), and the `Arrive` push.
    /// `departure` was computed by the worker from its own uplink horizon.
    Route {
        to: NodeId,
        fanout: FanoutRef,
        size: u32,
        category: &'static str,
        at: SimTime,
        departure: SimTime,
    },
    /// A route whose sender was crashed: the judge still runs (its stateful filter
    /// must see every send in global order), nothing else happens.
    RouteCrashed {
        to: NodeId,
        size: u32,
        category: &'static str,
        at: SimTime,
    },
    /// A delivery the worker consumed (it cloned the envelope): return the
    /// reference.
    Consume { fanout: FanoutRef },
    /// A crashed receiver swallowed an `Arrive`/`Deliver`: return the reference.
    Release { fanout: FanoutRef },
    /// End of a fan-out loop: reclaim the slot if no copy survived routing.
    ReleaseIfUnused { fanout: FanoutRef },
}

/// One dispatch record of a round's per-shard stream. Only dispatches that recorded
/// at least one effect are kept; `effects_end` is the exclusive end of this
/// dispatch's slice of the round's flat effect stream.
#[derive(Clone, Copy)]
struct DispatchRec {
    at: SimTime,
    seq: SeqRef,
    effects_end: u32,
}

/// Everything one shard produced during a parallel round.
struct ShardRound<M> {
    shard: u32,
    dispatches: Vec<DispatchRec>,
    effects: Vec<RunEffect>,
    local_fanouts: Vec<LocalFanout<M>>,
    /// Filled by the replay: seq assigned to round-local push `id`.
    local_seqs: Vec<u64>,
    /// Filled by the replay: real table id of round-local fan-out `id`.
    fanout_ids: Vec<u32>,
    /// Events drained from the shard's real heap (for queue length bookkeeping).
    popped: usize,
    /// Events executed, including overlay events and swallowed ones.
    dispatched: u64,
    max_at: SimTime,
}

impl<M> ShardRound<M> {
    fn new(shard: u32) -> Self {
        Self {
            shard,
            dispatches: Vec::new(),
            effects: Vec::new(),
            local_fanouts: Vec::new(),
            local_seqs: Vec::new(),
            fanout_ids: Vec::new(),
            popped: 0,
            dispatched: 0,
            max_at: SimTime::ZERO,
        }
    }

    fn resolve(&self, fanout: FanoutRef) -> u32 {
        match fanout {
            FanoutRef::Shared(id) => id,
            FanoutRef::Local(id) => self.fanout_ids[id as usize],
        }
    }

    /// Reserves a round-local push id (creation order = replayed seq order).
    fn alloc_local(&mut self) -> u32 {
        let id = self.local_seqs.len() as u32;
        self.local_seqs.push(0);
        id
    }
}

/// Read-only inputs shared by every round worker.
struct RoundCtx<'a, M> {
    cutoff: SimTime,
    node_count: usize,
    half_duplex: bool,
    crashes: &'a [CrashWindow],
    resolved: &'a ResolvedTopology,
    fanouts: &'a FanoutTable<M>,
}

/// The disjoint per-shard mutable state a round worker owns, carved out of the
/// engine's `Vec`s with `split_at_mut` — no locks, no unsafe code.
struct WorkerShard<'a, P: Protocol> {
    node: NodeId,
    shard_queue: &'a mut Shard,
    protocol: &'a mut P,
    rng: &'a mut StdRng,
    epoch: &'a mut u32,
    uplink_free: &'a mut SimTime,
    downlink_free: &'a mut SimTime,
    lanes: &'a mut Vec<SimTime>,
    lane_busy: &'a mut Vec<u64>,
}

#[inline]
fn is_down(crashes: &[CrashWindow], node: NodeId, at: SimTime) -> bool {
    crashes.iter().any(|window| window.covers(node, at))
}

/// Executes one shard's slice of a parallel round: drains the shard's heap (and the
/// overlay of round-local events) up to the horizon, running callbacks against the
/// shard's own state and recording every global effect for the replay.
fn run_round_shard<P: Protocol>(
    ws: &mut WorkerShard<'_, P>,
    ctx: &RoundCtx<'_, P::Message>,
    round: &mut ShardRound<P::Message>,
) {
    let mut overlay: std::collections::BinaryHeap<std::cmp::Reverse<LocalEvent>> =
        std::collections::BinaryHeap::new();
    let mut actions = ActionBuffer::default();
    loop {
        let queued_at = ws.shard_queue.peek_key().map(|key| SimTime((key >> 64) as u64));
        let local_at = overlay.peek().map(|std::cmp::Reverse(event)| event.at);
        let take_queued = match (queued_at, local_at) {
            (None, None) => break,
            (Some(at), None) => {
                if at > ctx.cutoff {
                    break;
                }
                true
            }
            (None, Some(at)) => {
                if at > ctx.cutoff {
                    break;
                }
                false
            }
            (Some(queued), Some(local)) => {
                if queued.min(local) > ctx.cutoff {
                    break;
                }
                // Queued events win ties: every queued seq predates every
                // round-local push.
                queued <= local
            }
        };
        round.dispatched += 1;
        let effects_start = round.effects.len();
        let (at, seq) = if take_queued {
            let (key, kind) = ws.shard_queue.pop().expect("peeked head");
            round.popped += 1;
            let (at, seq) = unpack(key);
            match kind {
                EventKind::Start(_) => {
                    if !is_down(ctx.crashes, ws.node, at) {
                        round_callback(ws, ctx, round, &mut overlay, &mut actions, at, Invoke::Start);
                    }
                }
                EventKind::Restart(_) => {
                    if !is_down(ctx.crashes, ws.node, at) {
                        // The process died: its armed timers died with it.
                        *ws.epoch += 1;
                        round_callback(ws, ctx, round, &mut overlay, &mut actions, at, Invoke::Restart);
                    }
                }
                EventKind::Timer { token, epoch, .. } => {
                    if !is_down(ctx.crashes, ws.node, at) && epoch == *ws.epoch {
                        round_callback(
                            ws,
                            ctx,
                            round,
                            &mut overlay,
                            &mut actions,
                            at,
                            Invoke::Timer { token },
                        );
                    }
                }
                EventKind::Arrive { fanout, size, .. } => {
                    round_arrive(ws, ctx, round, &mut overlay, at, fanout, size)
                }
                EventKind::Deliver { fanout, .. } => round_deliver(
                    ws,
                    ctx,
                    round,
                    &mut overlay,
                    &mut actions,
                    at,
                    FanoutRef::Shared(fanout),
                ),
            }
            (at, SeqRef::Queued(seq))
        } else {
            let std::cmp::Reverse(event) = overlay.pop().expect("peeked head");
            let at = event.at;
            match event.kind {
                LocalKind::Timer { token, epoch } => {
                    if !is_down(ctx.crashes, ws.node, at) && epoch == *ws.epoch {
                        round_callback(
                            ws,
                            ctx,
                            round,
                            &mut overlay,
                            &mut actions,
                            at,
                            Invoke::Timer { token },
                        );
                    }
                }
                LocalKind::Deliver { fanout } => {
                    round_deliver(ws, ctx, round, &mut overlay, &mut actions, at, fanout)
                }
            }
            (at, SeqRef::Local(event.id))
        };
        round.max_at = round.max_at.max(at);
        if round.effects.len() > effects_start {
            round.dispatches.push(DispatchRec {
                at,
                seq,
                effects_end: round.effects.len() as u32,
            });
        }
    }
}

/// The worker half of `apply_arrive`: downlink reservation on own state; the
/// matured `Deliver` either joins the overlay (inside the horizon) or becomes a
/// deferred push effect.
fn round_arrive<P: Protocol>(
    ws: &mut WorkerShard<'_, P>,
    ctx: &RoundCtx<'_, P::Message>,
    round: &mut ShardRound<P::Message>,
    overlay: &mut std::collections::BinaryHeap<std::cmp::Reverse<LocalEvent>>,
    at: SimTime,
    fanout: u32,
    size: u32,
) {
    if is_down(ctx.crashes, ws.node, at) {
        round.effects.push(RunEffect::Release {
            fanout: FanoutRef::Shared(fanout),
        });
        return;
    }
    let link = ctx.resolved.links[ws.node.as_index()];
    let start = at.max(*ws.downlink_free);
    let delivery = start + SimDuration::transmission(size as usize, link.downlink_bps);
    *ws.downlink_free = delivery;
    if ctx.half_duplex {
        *ws.uplink_free = (*ws.uplink_free).max(delivery);
    }
    if delivery <= ctx.cutoff {
        let id = round.alloc_local();
        overlay.push(std::cmp::Reverse(LocalEvent {
            at: delivery,
            id,
            kind: LocalKind::Deliver {
                fanout: FanoutRef::Shared(fanout),
            },
        }));
        round.effects.push(RunEffect::LocalDeliverXfer { id });
    } else {
        round.effects.push(RunEffect::PushDeliverXfer {
            at: delivery,
            to: ws.node,
            fanout: FanoutRef::Shared(fanout),
        });
    }
}

/// The worker half of a `Deliver` dispatch: crash swallow or callback, with the
/// message cloned from the shared table (or the round's own intern list) and the
/// reference accounting deferred to the replay.
fn round_deliver<P: Protocol>(
    ws: &mut WorkerShard<'_, P>,
    ctx: &RoundCtx<'_, P::Message>,
    round: &mut ShardRound<P::Message>,
    overlay: &mut std::collections::BinaryHeap<std::cmp::Reverse<LocalEvent>>,
    actions: &mut ActionBuffer<P::Message>,
    at: SimTime,
    fanout: FanoutRef,
) {
    if is_down(ctx.crashes, ws.node, at) {
        round.effects.push(RunEffect::Release { fanout });
        return;
    }
    let (from, message) = match fanout {
        FanoutRef::Shared(id) => {
            (ctx.fanouts.sender(id), (**ctx.fanouts.message(id)).clone())
        }
        FanoutRef::Local(id) => {
            let local = &round.local_fanouts[id as usize];
            let message = local
                .message
                .as_ref()
                .expect("round-local fan-out outlives its deliveries")
                .clone();
            (ws.node, message)
        }
    };
    round.effects.push(RunEffect::Consume { fanout });
    round_callback(ws, ctx, round, overlay, actions, at, Invoke::Message { from, message });
}

/// The worker counterpart of `run_callback` + `finish_callback` + `apply_actions`:
/// runs the protocol callback on the shard's own state, settles compute on the
/// shard's own lanes, and turns every output into either a round-local overlay
/// event (inside the horizon, own shard) or a deferred effect for the replay.
fn round_callback<P: Protocol>(
    ws: &mut WorkerShard<'_, P>,
    ctx: &RoundCtx<'_, P::Message>,
    round: &mut ShardRound<P::Message>,
    overlay: &mut std::collections::BinaryHeap<std::cmp::Reverse<LocalEvent>>,
    actions: &mut ActionBuffer<P::Message>,
    at: SimTime,
    invoke: Invoke<P::Message>,
) {
    {
        let mut sim_ctx = SimContext {
            now: at,
            node: ws.node,
            node_count: ctx.node_count,
            actions,
            rng: ws.rng,
        };
        match invoke {
            Invoke::Start => ws.protocol.on_start(&mut sim_ctx),
            Invoke::Restart => ws.protocol.on_restart(&mut sim_ctx),
            Invoke::Message { from, message } => ws.protocol.on_message(from, message, &mut sim_ctx),
            Invoke::Timer { token } => ws.protocol.on_timer(token, &mut sim_ctx),
        }
    }
    let epoch = *ws.epoch;
    let done = if actions.compute.as_nanos() == 0 {
        at
    } else {
        let speed = ctx.resolved.cpu_speeds[ws.node.as_index()];
        let scaled = (actions.compute.as_nanos() as f64 / speed).round() as u64;
        dispatch_on(ws.lanes, ws.lane_busy, at, scaled)
    };
    for observation in actions.observations.drain(..) {
        round.effects.push(RunEffect::Observe {
            at: done,
            observation,
        });
    }
    for (delay, token) in actions.timers.drain(..) {
        let fire = done + delay;
        if fire <= ctx.cutoff {
            let id = round.alloc_local();
            overlay.push(std::cmp::Reverse(LocalEvent {
                at: fire,
                id,
                kind: LocalKind::Timer { token, epoch },
            }));
            round.effects.push(RunEffect::LocalTimer { id });
        } else {
            round.effects.push(RunEffect::PushTimer {
                at: fire,
                token,
                epoch,
            });
        }
    }
    // `drain(..)` would hold `actions` borrowed across the route calls; swap the
    // sends out instead (the allocation returns via the scratch-restoring clear).
    let mut sends = std::mem::take(&mut actions.sends);
    for outgoing in sends.drain(..) {
        match outgoing {
            Outgoing::Unicast(to, message) => {
                let (fanout, size, category, uplink_tx) = round_intern(ws, ctx, round, message);
                round_route(ws, ctx, round, overlay, fanout, to, size, category, done, uplink_tx);
                round.effects.push(RunEffect::ReleaseIfUnused { fanout });
            }
            Outgoing::Multicast(message) => {
                let (fanout, size, category, uplink_tx) = round_intern(ws, ctx, round, message);
                for index in 0..ctx.node_count {
                    let peer = NodeId(index as u32);
                    if peer != ws.node {
                        round_route(
                            ws, ctx, round, overlay, fanout, peer, size, category, done, uplink_tx,
                        );
                    }
                }
                round.effects.push(RunEffect::ReleaseIfUnused { fanout });
            }
            Outgoing::Broadcast(message) => {
                let (fanout, size, category, uplink_tx) = round_intern(ws, ctx, round, message);
                for index in 0..ctx.node_count {
                    let peer = NodeId(index as u32);
                    if peer != ws.node {
                        round_route(
                            ws, ctx, round, overlay, fanout, peer, size, category, done, uplink_tx,
                        );
                    }
                }
                round_route(
                    ws, ctx, round, overlay, fanout, ws.node, size, category, done, uplink_tx,
                );
                round.effects.push(RunEffect::ReleaseIfUnused { fanout });
            }
        }
    }
    actions.sends = sends;
    actions.clear();
}

/// Registers one logical fan-out in the round's intern list (the replay interns it
/// into the real table) and computes the per-copy costs once.
fn round_intern<P: Protocol>(
    ws: &WorkerShard<'_, P>,
    ctx: &RoundCtx<'_, P::Message>,
    round: &mut ShardRound<P::Message>,
    message: P::Message,
) -> (FanoutRef, usize, &'static str, SimDuration) {
    let size = message.wire_size();
    let category = message.category();
    let uplink_tx =
        SimDuration::transmission(size, ctx.resolved.links[ws.node.as_index()].uplink_bps);
    let id = round.local_fanouts.len() as u32;
    round.local_fanouts.push(LocalFanout {
        message: Some(message),
    });
    round.fanout_ids.push(0);
    round.effects.push(RunEffect::Intern { id });
    (FanoutRef::Local(id), size, category, uplink_tx)
}

/// The worker half of `route`: self-deliveries join the overlay (or defer to a
/// push); cross-shard copies reserve the sender's own uplink and defer the global
/// tail (judge, partition, metrics, jitter, `Arrive` push) to the replay.
#[allow(clippy::too_many_arguments)]
fn round_route<P: Protocol>(
    ws: &mut WorkerShard<'_, P>,
    ctx: &RoundCtx<'_, P::Message>,
    round: &mut ShardRound<P::Message>,
    overlay: &mut std::collections::BinaryHeap<std::cmp::Reverse<LocalEvent>>,
    fanout: FanoutRef,
    to: NodeId,
    size: usize,
    category: &'static str,
    at: SimTime,
    uplink_tx: SimDuration,
) {
    if to == ws.node {
        // Local delivery: no bandwidth cost, a negligible scheduling delay.
        if at <= ctx.cutoff {
            let id = round.alloc_local();
            overlay.push(std::cmp::Reverse(LocalEvent {
                at,
                id,
                kind: LocalKind::Deliver { fanout },
            }));
            round.effects.push(RunEffect::LocalDeliverNew { id, fanout });
        } else {
            round.effects.push(RunEffect::PushDeliverNew { at, to, fanout });
        }
        return;
    }
    if is_down(ctx.crashes, ws.node, at) {
        // The judge must still run in global order (stateful filter) — deferred.
        round.effects.push(RunEffect::RouteCrashed {
            to,
            size: size as u32,
            category,
            at,
        });
        return;
    }
    // Uplink serialisation at the sender — own-node state, reserved here exactly as
    // the sequential engine does before it knows the message's fate.
    let uplink_start = at.max(*ws.uplink_free);
    let departure = uplink_start + uplink_tx;
    *ws.uplink_free = departure;
    if ctx.half_duplex {
        *ws.downlink_free = (*ws.downlink_free).max(departure);
    }
    round.effects.push(RunEffect::Route {
        to,
        fanout,
        size: size as u32,
        category,
        at,
        departure,
    });
}

/// The [`Context`] implementation handed to protocols during callbacks.
struct SimContext<'a, M> {
    now: SimTime,
    node: NodeId,
    node_count: usize,
    actions: &'a mut ActionBuffer<M>,
    rng: &'a mut StdRng,
}

impl<M: SimMessage> Context for SimContext<'_, M> {
    type Message = M;

    fn now(&self) -> SimTime {
        self.now
    }

    fn node_id(&self) -> NodeId {
        self.node
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn send(&mut self, to: NodeId, message: M) {
        self.actions.sends.push(Outgoing::Unicast(to, message));
    }

    fn multicast(&mut self, message: M) {
        // Fast path: defer the fan-out to the engine, which charges the paper's
        // `n − 1`-unicast cost model while computing the wire size only once.
        self.actions.sends.push(Outgoing::Multicast(message));
    }

    fn broadcast(&mut self, message: M) {
        // Fast path: one envelope for the whole fan-out *and* the self-delivery — the
        // default `multicast(m.clone()) + send(self, m)` implementation would clone the
        // message once more just to hand it back to the sender.
        self.actions.sends.push(Outgoing::Broadcast(message));
    }

    fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.timers.push((delay, token));
    }

    fn charge_compute(&mut self, cost: SimDuration) {
        self.actions.compute = self.actions.compute + cost;
    }

    fn observe(&mut self, observation: ObservationKind) {
        self.actions.observations.push(observation);
    }

    fn rng(&mut self) -> &mut dyn RngCore {
        self.rng
    }
}

/// The per-node worker-lane compute model: each node owns a fixed set of lanes
/// (one per configured core) and every charged callback is dispatched to the
/// **earliest-free lane**, ties broken by the **lowest lane index**. Both rules
/// are deterministic functions of prior history, so the model needs no RNG and
/// commutes with [`ExecutionMode`]. With a single lane the dispatch degenerates
/// to `start = max(now, free[0])` — exactly the pre-multi-core scalar
/// `cpu_free` horizon — which is what keeps `cores = 1` runs bit-identical to
/// the historical goldens.
#[derive(Debug, Clone)]
pub(crate) struct ComputeLanes {
    /// `free[node][lane]`: how far into the virtual future the lane is committed.
    free: Vec<Vec<SimTime>>,
    /// `busy[node][lane]`: modeled CPU nanoseconds the lane has retired.
    busy: Vec<Vec<u64>>,
}

impl ComputeLanes {
    /// One entry of `cores` per node; every count must be at least 1 (enforced
    /// upstream by [`crate::NetworkConfig::validate`]).
    pub(crate) fn new(cores: &[usize]) -> Self {
        Self {
            free: cores.iter().map(|&k| vec![SimTime::ZERO; k]).collect(),
            busy: cores.iter().map(|&k| vec![0u64; k]).collect(),
        }
    }

    /// Dispatches `scaled` nanoseconds of modeled work arriving at `now` on
    /// `node` and returns the completion instant: the work occupies
    /// `[max(now, free[lane]), +scaled]` of the earliest-free lane (lowest
    /// index on ties).
    pub(crate) fn dispatch(&mut self, node: usize, now: SimTime, scaled: u64) -> SimTime {
        dispatch_on(&mut self.free[node], &mut self.busy[node], now, scaled)
    }

    /// Splits the model into its per-node lane arrays so the parallel round engine
    /// can carve disjoint `&mut` views per shard (one `Vec` of lanes per node).
    pub(crate) fn parts_mut(&mut self) -> (&mut [Vec<SimTime>], &mut [Vec<u64>]) {
        (&mut self.free, &mut self.busy)
    }

    /// The node's nearest-free-lane horizon: the earliest instant any lane can
    /// accept new work. With one lane this is the old scalar `cpu_free`.
    pub(crate) fn horizon(&self, node: usize) -> SimTime {
        self.free[node].iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// Total modeled CPU nanoseconds `node` retired, summed over its lanes.
    pub(crate) fn busy_nanos(&self, node: usize) -> u64 {
        self.busy[node].iter().sum()
    }
}

/// The lane-dispatch rule of [`ComputeLanes`], usable on one node's carved-out lane
/// state (the parallel round workers own exactly their shard's lanes).
#[inline]
fn dispatch_on(lanes: &mut [SimTime], busy: &mut [u64], now: SimTime, scaled: u64) -> SimTime {
    let mut lane = 0;
    for i in 1..lanes.len() {
        if lanes[i] < lanes[lane] {
            lane = i;
        }
    }
    let start = now.max(lanes[lane]);
    let done = start + SimDuration::from_nanos(scaled);
    lanes[lane] = done;
    busy[lane] += scaled;
    done
}

/// Summary of a finished simulation run.
#[derive(Debug)]
pub struct SimulationReport {
    /// Number of nodes simulated.
    pub nodes: usize,
    /// Simulated time at the end of the run.
    pub end_time: SimTime,
    /// Number of events processed.
    pub events: u64,
    /// Collected metrics.
    pub metrics: MetricsSink,
    /// Per-node progress probes snapshotted at `end_time` (empty for protocols that do
    /// not implement [`Protocol::progress_probe`]). Indexed by node.
    pub probes: Vec<Option<crate::ProgressProbe>>,
    /// Modeled CPU nanoseconds each node's compute queue was busy (indexed by node,
    /// summed over the node's worker lanes). All zeros unless the protocol charges
    /// compute via [`Context::charge_compute`].
    pub compute_busy_nanos: Vec<u64>,
    /// Per-lane breakdown of [`Self::compute_busy_nanos`]: `lane_busy_nanos[node]`
    /// has one entry per worker lane of that node. Empty when a report is built by
    /// hand (tests); [`Simulation::into_report`] always fills it.
    pub lane_busy_nanos: Vec<Vec<u64>>,
    /// Worker-lane (core) count of each node, as resolved from the network config.
    /// Missing entries are treated as 1 by the utilization accessors.
    pub cores: Vec<usize>,
    /// Live fan-out table slots at the end of the run (see
    /// [`Simulation::fanouts_live`]) — in-flight logical messages whose handles are
    /// still queued at the deadline (zero only if the run fully quiesced).
    pub fanouts_live: usize,
    /// Peak fan-out table size over the run (see [`Simulation::fanouts_peak`]).
    pub fanouts_peak: usize,
    /// Result of the fan-out reference audit: `true` iff every slot's refcount
    /// equals the number of `Arrive`/`Deliver` handles still queued against it.
    /// `false` means the slot accounting leaked a reference (the slot outlives its
    /// handles) or lost one (a queued handle points at a reclaimed slot).
    pub fanouts_balanced: bool,
}

impl SimulationReport {
    /// Confirmed requests per second, measured as the maximum per-node confirmation
    /// count divided by the run duration.
    ///
    /// # Measurement window
    ///
    /// The denominator is the **full virtual run time** `[0, end_time]`, including the
    /// start-up transient during which pipelines fill and nothing is confirmed yet. This
    /// matches how the paper reports steady-state runs and is what every `BENCH_*.json`
    /// entry records, so cross-PR numbers stay comparable. For short runs where the
    /// warm-up is a significant fraction of the window, use
    /// [`Self::steady_state_throughput_rps`] to exclude it.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.end_time.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.metrics.max_confirmed_requests(self.nodes) as f64 / secs
    }

    /// Confirmed requests per second over the window `[warmup, end_time]` only:
    /// confirmations observed before `warmup` are discarded and the elapsed time starts
    /// at `warmup`. Returns 0 if the warm-up covers the whole run.
    pub fn steady_state_throughput_rps(&self, warmup: SimDuration) -> f64 {
        let start = SimTime::ZERO + warmup;
        if start >= self.end_time {
            return 0.0;
        }
        let secs = (self.end_time.as_nanos() - start.as_nanos()) as f64 / 1e9;
        if secs == 0.0 {
            return 0.0;
        }
        self.metrics.max_confirmed_requests_since(self.nodes, start) as f64 / secs
    }

    /// Average request latency in seconds over all latency samples, or `None` if no
    /// request completed.
    pub fn average_latency_secs(&self) -> Option<f64> {
        let samples = self.metrics.latency_samples();
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().map(|&n| n as f64 / 1e9).sum::<f64>() / samples.len() as f64)
    }

    /// The `p`-quantile (`p` in `[0, 1]`) of request latency in seconds, computed from
    /// the O(1) fixed-bucket histogram (bucket-midpoint accuracy, ≈ 3% relative
    /// error), or `None` if no request completed. See
    /// [`crate::metrics::LatencyHistogram`].
    pub fn latency_percentile_secs(&self, p: f64) -> Option<f64> {
        self.metrics
            .latency_histogram
            .percentile(p)
            .map(|nanos| nanos as f64 / 1e9)
    }

    /// Average bits per second moved (sent + received) by `node` over the run.
    pub fn node_bandwidth_bps(&self, node: NodeId) -> f64 {
        let secs = self.end_time.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        let bytes = self.metrics.traffic.sent_bytes(node) + self.metrics.traffic.received_bytes(node);
        bytes as f64 * 8.0 / secs
    }

    /// Fraction of the run `node`'s compute capacity was busy with modeled work
    /// (busy nanoseconds over `end_time × cores`), in `[0, 1]` under steady state
    /// (a backlogged queue can report more than `1.0`, which is itself a diagnosis:
    /// the replica was handed more work than its CPUs could retire in the run).
    pub fn compute_utilization(&self, node: NodeId) -> f64 {
        let cores = self.cores.get(node.as_index()).copied().unwrap_or(1).max(1);
        let total = self.end_time.as_nanos().saturating_mul(cores as u64);
        if total == 0 {
            return 0.0;
        }
        self.compute_busy_nanos
            .get(node.as_index())
            .copied()
            .unwrap_or(0) as f64
            / total as f64
    }

    /// Fraction of the run one worker lane of `node` was busy, in `[0, 1]` under
    /// steady state. Returns 0 for out-of-range lanes or hand-built reports that
    /// carry no per-lane breakdown.
    pub fn lane_utilization(&self, node: NodeId, lane: usize) -> f64 {
        let total = self.end_time.as_nanos();
        if total == 0 {
            return 0.0;
        }
        self.lane_busy_nanos
            .get(node.as_index())
            .and_then(|lanes| lanes.get(lane))
            .copied()
            .unwrap_or(0) as f64
            / total as f64
    }

    /// The highest per-node compute utilization of the run.
    pub fn max_compute_utilization(&self) -> f64 {
        (0..self.nodes)
            .map(|i| self.compute_utilization(NodeId(i as u32)))
            .fold(0.0, f64::max)
    }

    /// The mean per-node compute utilization of the run.
    pub fn mean_compute_utilization(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        (0..self.nodes)
            .map(|i| self.compute_utilization(NodeId(i as u32)))
            .sum::<f64>()
            / self.nodes as f64
    }
}

/// A deterministic discrete-event simulation of `n` nodes running a [`Protocol`].
pub struct Simulation<P: Protocol> {
    config: NetworkConfig,
    /// The per-node view of `config` (effective links, CPU speeds, region latency
    /// matrix) consulted on the hot path; resolved once at construction.
    resolved: ResolvedTopology,
    faults: FaultPlan,
    nodes: Vec<P>,
    node_rngs: Vec<StdRng>,
    net_rng: StdRng,
    queue: ShardedQueue,
    /// The interned fan-out side table: queue-resident `Arrive`/`Deliver` events
    /// carry a `{fanout, to}` handle into this table instead of the
    /// `{from, Arc<message>, size}` payload (see [`crate::fanout`]).
    fanouts: FanoutTable<P::Message>,
    /// Reused across callbacks so steady-state dispatch allocates nothing.
    scratch: ActionBuffer<P::Message>,
    mode: ExecutionMode,
    /// The conservative shard-run lookahead: no event can schedule work on another
    /// shard less than this far into the future (the minimum region-pair base
    /// latency; uplink serialisation, straggler extras and jitter only add to it).
    lookahead: SimDuration,
    now: SimTime,
    seq: u64,
    events: u64,
    started: bool,
    uplink_free: Vec<SimTime>,
    downlink_free: Vec<SimTime>,
    /// The per-node worker-lane compute model (the CPU analogue of the link
    /// horizons). One lane per configured core; `cores = 1` reproduces the old
    /// single sequential `cpu_free` horizon bit for bit.
    compute: ComputeLanes,
    /// Per-node timer epoch, bumped on restart so pre-crash timers are swallowed.
    timer_epochs: Vec<u32>,
    metrics: MetricsSink,
}

impl<P: Protocol> Simulation<P> {
    /// Builds a simulation, creating one protocol instance per node with `factory`.
    ///
    /// # Panics
    ///
    /// Panics if the network configuration is invalid, if the fault plan schedules a
    /// crash for a node outside the network, or if it partitions a region outside the
    /// configured topology.
    pub fn new(config: NetworkConfig, faults: FaultPlan, mut factory: impl FnMut(NodeId) -> P) -> Self {
        config
            .validate()
            .unwrap_or_else(|message| panic!("invalid network config: {message}"));
        let resolved = config.resolve();
        let n = config.nodes;
        for window in faults.crash_windows() {
            assert!(
                window.node.as_index() < n,
                "with_crash: node {} out of range for a {n}-node network",
                window.node.as_index()
            );
        }
        for window in faults.partitions() {
            let regions = resolved.region_count;
            for region in [window.region_a, window.region_b] {
                assert!(
                    region < regions,
                    "with_partition: region {region} out of range for a {regions}-region topology"
                );
            }
        }
        let nodes: Vec<P> = (0..n).map(|i| factory(NodeId(i as u32))).collect();
        let node_rngs = (0..n)
            .map(|i| StdRng::seed_from_u64(config.seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1))))
            .collect();
        let net_rng = StdRng::seed_from_u64(config.seed ^ 0xD1B54A32D192ED03);
        Self {
            faults,
            nodes,
            node_rngs,
            net_rng,
            queue: ShardedQueue::new(n),
            fanouts: FanoutTable::new(),
            scratch: ActionBuffer::default(),
            mode: ExecutionMode::Sequential,
            lookahead: SimDuration::from_nanos(resolved.min_cross_base_nanos),
            now: SimTime::ZERO,
            seq: 0,
            events: 0,
            started: false,
            uplink_free: vec![SimTime::ZERO; n],
            downlink_free: vec![SimTime::ZERO; n],
            compute: ComputeLanes::new(&resolved.cores),
            timer_epochs: vec![0; n],
            metrics: MetricsSink::with_nodes(n),
            resolved,
            config,
        }
    }

    /// Sets how [`Self::run_until`] executes the schedule (builder form). Both modes
    /// are bit-identical; see [`ExecutionMode`].
    pub fn with_execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the execution mode in place.
    pub fn set_execution_mode(&mut self, mode: ExecutionMode) {
        self.mode = mode;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Number of live interned fan-outs — in-flight logical messages whose queue
    /// handles have not all been consumed yet. Zero once a run has quiesced; the
    /// equivalence proptests assert this to catch reference leaks (a leak would pin
    /// slots forever) and double-frees (which panic inside the table instead).
    pub fn fanouts_live(&self) -> usize {
        self.fanouts.live()
    }

    /// High-water fan-out table size — the peak number of concurrently in-flight
    /// logical messages over the run so far (the compressed queue's memory ceiling).
    pub fn fanouts_peak(&self) -> usize {
        self.fanouts.peak()
    }

    /// Immutable access to the metrics collected so far.
    pub fn metrics(&self) -> &MetricsSink {
        &self.metrics
    }

    /// Immutable access to a node's protocol state (for tests and assertions).
    pub fn node(&self, node: NodeId) -> &P {
        &self.nodes[node.as_index()]
    }

    /// Immutable access to the fault plan (e.g. for post-run invariant checks that
    /// need to know which nodes are down at the end of the run).
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Mutable access to the fault plan (e.g. to add crashes mid-run).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// The `(uplink_free, downlink_free)` serialisation horizons of `node` — how far
    /// into the (virtual) future the node's FIFO link queues are already committed.
    /// A horizon far beyond [`Self::now`] means the link is backlogged.
    pub fn link_horizons(&self, node: NodeId) -> (SimTime, SimTime) {
        (
            self.uplink_free[node.as_index()],
            self.downlink_free[node.as_index()],
        )
    }

    /// How far into the (virtual) future `node`'s compute queue is already
    /// committed — the CPU analogue of [`Self::link_horizons`]. With multiple
    /// worker lanes this is the **earliest-free lane's** horizon (the next
    /// instant the node can start new modeled work); with one lane it is the old
    /// sequential `cpu_free` scalar.
    pub fn compute_horizon(&self, node: NodeId) -> SimTime {
        self.compute.horizon(node.as_index())
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        let shard = kind.owner();
        self.queue.push(
            shard,
            QueuedEvent {
                at,
                seq: self.seq,
                kind,
            },
        );
    }

    /// Pushes a matured downlink `Deliver` through the shard's O(1) deliver FIFO
    /// (see [`crate::shard::Shard`]): the `Arrive` dispatches of a shard fire in
    /// `(time, seq)` order and each one advances `downlink_free`, so these keys are
    /// nondecreasing per shard by construction — no heap sift needed. The seq is
    /// assigned exactly as [`Self::push_event`] would.
    fn push_deliver_event(&mut self, at: SimTime, fanout: u32, to: NodeId) {
        self.seq += 1;
        self.queue.push_deliver(to.0, at, self.seq, fanout);
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.config.nodes {
            self.push_event(SimTime::ZERO, EventKind::Start(NodeId(i as u32)));
        }
        // Schedule the restart instant of every finite crash window. On fault-free
        // runs this pushes nothing, keeping the event schedule byte-identical.
        let restarts: Vec<(SimTime, NodeId)> = self
            .faults
            .crash_windows()
            .iter()
            .filter_map(|window| window.until.map(|until| (until, window.node)))
            .collect();
        for (until, node) in restarts {
            self.push_event(until, EventKind::Restart(node));
        }
    }

    /// Runs until the event queue is exhausted, `deadline` is reached, or `max_events`
    /// events have been processed. Returns the report so far without consuming the
    /// simulation.
    pub fn run_until(&mut self, deadline: SimTime, max_events: u64) {
        self.ensure_started();
        let processed = match self.mode {
            ExecutionMode::Sequential => self.run_sequential(deadline, max_events),
            ExecutionMode::Parallel { threads } => {
                let threads = if threads == 0 {
                    std::thread::available_parallelism().map_or(1, |t| t.get())
                } else {
                    threads
                };
                self.run_parallel(deadline, max_events, threads)
            }
        };
        self.events += processed;
        EVENTS_PROCESSED.fetch_add(processed, Ordering::Relaxed);
        // Advance the clock to the deadline if we stopped because the queue ran dry or
        // only future events remain; throughput is measured against wall-clock windows.
        if self.queue.peek_key().map_or(true, |(at, _)| at > deadline) {
            self.now = self.now.max(deadline);
        }
    }

    /// The sequential engine: classic merge pops in exact `(time, seq)` order (see
    /// [`crate::shard::ShardedQueue::pop_min`]).
    fn run_sequential(&mut self, deadline: SimTime, max_events: u64) -> u64 {
        let mut processed = 0u64;
        while processed < max_events {
            let Some(event) = self.queue.pop_min(deadline) else {
                break;
            };
            self.now = event.at.max(self.now);
            self.dispatch(event.kind);
            processed += 1;
        }
        processed
    }

    /// Classic-pop drain for a narrow parallel round: dispatches events at or below
    /// `cutoff` (the round horizon), at most `budget` of them, in `(time, seq)`
    /// order. Returns 0 when nothing is at or below the cutoff.
    fn drain_to_cutoff(&mut self, cutoff: SimTime, budget: u64) -> u64 {
        let mut processed = 0u64;
        while processed < budget {
            let Some(event) = self.queue.pop_min(cutoff) else {
                break;
            };
            self.now = event.at.max(self.now);
            self.dispatch(event.kind);
            processed += 1;
        }
        processed
    }

    /// The parallel engine: shard rounds (see the module-level commentary above
    /// [`SeqRef`]). Each iteration picks the same horizon a sequential shard run
    /// would use, drains **every** shard with work inside it on scoped worker
    /// threads, then replays the recorded engine-side effects in `(time, seq)`
    /// order. Narrow rounds fall back to a classic-pop drain of the same horizon —
    /// bit-identical output either way, no thread cost when there is nothing to
    /// parallelise.
    fn run_parallel(&mut self, deadline: SimTime, max_events: u64, threads: usize) -> u64 {
        /// Below this many active shards the scoped-thread round trip costs more
        /// than the callbacks it spreads out.
        const MIN_ROUND_SHARDS: usize = 4;
        /// A round executes every event inside its horizon and cannot stop partway
        /// like the sequential engine; within this margin of the event budget, run
        /// sequentially so the budget is honoured exactly.
        const BUDGET_GUARD: u64 = 1 << 20;

        let mut processed = 0u64;
        let mut active: Vec<u32> = Vec::new();
        while processed < max_events {
            let t_min = match self.queue.peek_key() {
                Some((at, _)) if at <= deadline => at,
                _ => break,
            };
            let remaining = max_events - processed;
            if threads <= 1 || remaining < BUDGET_GUARD {
                processed += self.run_sequential(deadline, remaining);
                break;
            }
            let cutoff =
                SimTime(t_min.as_nanos().saturating_add(self.lookahead.as_nanos())).min(deadline);
            active.clear();
            self.queue.shards_at_or_below(cutoff, &mut active);
            if active.len() < MIN_ROUND_SHARDS {
                let step = self.drain_to_cutoff(cutoff, remaining);
                if step == 0 {
                    break;
                }
                processed += step;
                continue;
            }
            let round = self.run_round(cutoff, &active, threads);
            assert!(
                round <= remaining,
                "parallel round of {round} events exceeded the {remaining}-event budget \
                 (guard {BUDGET_GUARD})"
            );
            processed += round;
        }
        processed
    }

    /// Executes one parallel shard round up to `cutoff`. Phase A: carve each active
    /// shard's state out of the engine and drain the shards on scoped worker
    /// threads, recording every global effect. Phase B: merge the per-shard dispatch
    /// streams by `(time, seq)` and replay the effects, so sequence numbers, net-RNG
    /// draws, the stateful fault judge, metrics and fan-out reference accounting all
    /// happen in exactly the sequential engine's order.
    fn run_round(&mut self, cutoff: SimTime, active: &[u32], threads: usize) -> u64 {
        let mut rounds: Vec<ShardRound<P::Message>> =
            active.iter().map(|&shard| ShardRound::new(shard)).collect();
        {
            let ctx = RoundCtx {
                cutoff,
                node_count: self.config.nodes,
                half_duplex: self.config.half_duplex,
                crashes: self.faults.crash_windows(),
                resolved: &self.resolved,
                fanouts: &self.fanouts,
            };
            // Carve the disjoint per-shard `&mut` state in ascending shard order.
            let (all_lanes, all_busy) = self.compute.parts_mut();
            let mut shards_rest: &mut [Shard] = self.queue.shards_mut();
            let mut nodes_rest: &mut [P] = &mut self.nodes;
            let mut rngs_rest: &mut [StdRng] = &mut self.node_rngs;
            let mut epochs_rest: &mut [u32] = &mut self.timer_epochs;
            let mut up_rest: &mut [SimTime] = &mut self.uplink_free;
            let mut down_rest: &mut [SimTime] = &mut self.downlink_free;
            let mut lanes_rest: &mut [Vec<SimTime>] = all_lanes;
            let mut busy_rest: &mut [Vec<u64>] = all_busy;
            let mut consumed = 0usize;
            let mut workers: Vec<WorkerShard<'_, P>> = Vec::with_capacity(active.len());
            for &shard in active {
                let offset = shard as usize - consumed;
                macro_rules! carve {
                    ($rest:ident) => {{
                        let (head, tail) = $rest.split_at_mut(offset + 1);
                        $rest = tail;
                        head.last_mut().expect("split kept the shard")
                    }};
                }
                let shard_queue = carve!(shards_rest);
                let protocol = carve!(nodes_rest);
                let rng = carve!(rngs_rest);
                let epoch = carve!(epochs_rest);
                let uplink_free = carve!(up_rest);
                let downlink_free = carve!(down_rest);
                let lanes = carve!(lanes_rest);
                let lane_busy = carve!(busy_rest);
                consumed = shard as usize + 1;
                workers.push(WorkerShard {
                    node: NodeId(shard),
                    shard_queue,
                    protocol,
                    rng,
                    epoch,
                    uplink_free,
                    downlink_free,
                    lanes,
                    lane_busy,
                });
            }
            // Round-robin the shards across the workers; results are indexed by the
            // shard's position in `active`, so thread scheduling cannot reorder them.
            let worker_count = threads.min(workers.len()).max(1);
            let mut buckets: Vec<Vec<(WorkerShard<'_, P>, &mut ShardRound<P::Message>)>> =
                (0..worker_count).map(|_| Vec::new()).collect();
            for (index, pair) in workers.into_iter().zip(rounds.iter_mut()).enumerate() {
                buckets[index % worker_count].push(pair);
            }
            std::thread::scope(|scope| {
                let ctx = &ctx;
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        scope.spawn(move || {
                            for (mut ws, round) in bucket {
                                run_round_shard(&mut ws, ctx, round);
                            }
                        })
                    })
                    .collect();
                for handle in handles {
                    handle.join().expect("round worker panicked");
                }
            });
        }
        // Phase B: replay in global `(time, seq)` order.
        let mut drained = 0usize;
        let mut processed = 0u64;
        let mut max_at = SimTime::ZERO;
        for round in &rounds {
            drained += round.popped;
            processed += round.dispatched;
            max_at = max_at.max(round.max_at);
        }
        // The effect streams move out so the replay can fill each round's resolution
        // tables (`local_seqs`, `fanout_ids`) while reading them.
        let streams: Vec<Vec<RunEffect>> = rounds
            .iter_mut()
            .map(|round| std::mem::take(&mut round.effects))
            .collect();
        let mut cursors = vec![0usize; rounds.len()];
        let mut merge: std::collections::BinaryHeap<std::cmp::Reverse<(u128, usize)>> =
            std::collections::BinaryHeap::with_capacity(rounds.len());
        for (index, round) in rounds.iter().enumerate() {
            if let Some(first) = round.dispatches.first() {
                let SeqRef::Queued(seq) = first.seq else {
                    unreachable!("a round's first dispatch pops from the real heap");
                };
                merge.push(std::cmp::Reverse((pack(first.at, seq), index)));
            }
        }
        while let Some(std::cmp::Reverse((_, index))) = merge.pop() {
            let position = cursors[index];
            cursors[index] = position + 1;
            let round = &mut rounds[index];
            let record = round.dispatches[position];
            let start = if position == 0 {
                0
            } else {
                round.dispatches[position - 1].effects_end as usize
            };
            for effect in &streams[index][start..record.effects_end as usize] {
                self.replay_effect(effect, round);
            }
            if let Some(next) = round.dispatches.get(position + 1) {
                // A `Local` seq here is always already resolved: the push that created
                // it was recorded by an earlier dispatch of this same stream.
                let seq = match next.seq {
                    SeqRef::Queued(seq) => seq,
                    SeqRef::Local(id) => round.local_seqs[id as usize],
                };
                merge.push(std::cmp::Reverse((pack(next.at, seq), index)));
            }
        }
        self.queue.settle_round(drained);
        self.now = self.now.max(max_at);
        processed
    }

    /// Replays one recorded worker effect on the engine's global state. See
    /// [`RunEffect`]; the call order (global `(time, seq)` dispatch order, recorded
    /// order within a dispatch) reproduces the sequential engine's effect sequence
    /// exactly.
    fn replay_effect(&mut self, effect: &RunEffect, round: &mut ShardRound<P::Message>) {
        let node = NodeId(round.shard);
        match *effect {
            RunEffect::Observe {
                at,
                ref observation,
            } => {
                self.metrics.observe(at, node, observation.clone());
            }
            RunEffect::LocalTimer { id } | RunEffect::LocalDeliverXfer { id } => {
                // The worker already executed the pushed event; only its seq exists
                // globally. (A transferred `Deliver` reference also stays put.)
                self.seq += 1;
                round.local_seqs[id as usize] = self.seq;
            }
            RunEffect::LocalDeliverNew { id, fanout } => {
                self.fanouts.incref(round.resolve(fanout));
                self.seq += 1;
                round.local_seqs[id as usize] = self.seq;
            }
            RunEffect::PushTimer { at, token, epoch } => {
                self.push_event(at, EventKind::Timer { node, token, epoch });
            }
            RunEffect::PushDeliverNew { at, to, fanout } => {
                let fanout = round.resolve(fanout);
                self.fanouts.incref(fanout);
                self.push_event(at, EventKind::Deliver { fanout, to });
            }
            RunEffect::PushDeliverXfer { at, to, fanout } => {
                // Reference transfer from the matured `Arrive` handle: no count
                // change. Replayed in global `(time, seq)` order, so the per-shard
                // FIFO monotonicity carries over from the sequential engine.
                let fanout = round.resolve(fanout);
                self.push_deliver_event(at, fanout, to);
            }
            RunEffect::Intern { id } => {
                let local = &mut round.local_fanouts[id as usize];
                let message = local.message.take().expect("each local fan-out interns once");
                round.fanout_ids[id as usize] =
                    self.fanouts.intern(node, Arc::new(message));
            }
            RunEffect::Route {
                to,
                fanout,
                size,
                category,
                at,
                departure,
            } => {
                let size = size as usize;
                let mut fate = self.faults.judge(at, node, to, category, size);
                if fate == MessageFate::Deliver && self.faults.has_partitions() {
                    let from_region = self.resolved.node_region[node.as_index()] as usize;
                    let to_region = self.resolved.node_region[to.as_index()] as usize;
                    if self.faults.is_partitioned(at, from_region, to_region) {
                        fate = MessageFate::Drop;
                    }
                }
                // The worker reserved the sender's uplink (own-node state); the
                // global tail happens here, in `(time, seq)` order.
                self.metrics.traffic.record_sent(node, category, size as u64);
                if fate == MessageFate::Drop {
                    return;
                }
                let (base_nanos, jitter_bound) =
                    self.resolved.delay_parts(node.as_index(), to.as_index());
                let jitter_nanos = if jitter_bound == 0 {
                    0
                } else {
                    self.net_rng.gen_range(0..=jitter_bound)
                };
                let mut latency = SimDuration::from_nanos(base_nanos + jitter_nanos);
                if at < self.config.gst && self.config.pre_gst_extra_delay.as_nanos() > 0 {
                    latency = latency
                        + SimDuration::from_nanos(
                            self.net_rng
                                .gen_range(0..=self.config.pre_gst_extra_delay.as_nanos()),
                        );
                }
                let arrival = departure + latency;
                self.metrics.traffic.record_received(to, category, size as u64);
                let fanout = round.resolve(fanout);
                self.fanouts.incref(fanout);
                self.push_event(
                    arrival,
                    EventKind::Arrive {
                        fanout,
                        to,
                        size: size as u32,
                    },
                );
            }
            RunEffect::RouteCrashed {
                to,
                size,
                category,
                at,
            } => {
                // Mirror the sequential path for a crashed sender: the judge runs
                // (and returns `Drop` before consulting the filter), nothing else.
                let _ = self.faults.judge(at, node, to, category, size as usize);
            }
            RunEffect::Consume { fanout } | RunEffect::Release { fanout } => {
                // The worker cloned the envelope itself (or the receiver swallowed
                // the event); either way one reference comes back.
                self.fanouts.release(round.resolve(fanout));
            }
            RunEffect::ReleaseIfUnused { fanout } => {
                self.fanouts.release_if_unused(round.resolve(fanout));
            }
        }
    }

    /// Snapshots every node's [`Protocol::progress_probe`] at the current time.
    pub fn probes(&self) -> Vec<Option<crate::ProgressProbe>> {
        self.nodes.iter().map(|node| node.progress_probe(self.now)).collect()
    }

    /// Consumes the simulation and produces the final report.
    pub fn into_report(self) -> SimulationReport {
        let probes = self.probes();
        let n = self.config.nodes;
        // Fan-out reference audit: tally the handles still queued per slot and
        // compare against the side table's refcounts (see
        // `SimulationReport::fanouts_balanced`). O(queue length), once per run.
        let mut counted = vec![0u32; self.fanouts.peak()];
        let mut in_range = true;
        self.queue.for_each_kind(|kind| match *kind {
            EventKind::Arrive { fanout, .. } | EventKind::Deliver { fanout, .. } => {
                match counted.get_mut(fanout as usize) {
                    Some(slot) => *slot += 1,
                    None => in_range = false,
                }
            }
            _ => {}
        });
        let fanouts_balanced = in_range && counted == self.fanouts.refcounts();
        SimulationReport {
            nodes: n,
            end_time: self.now,
            events: self.events,
            metrics: self.metrics,
            probes,
            compute_busy_nanos: (0..n).map(|i| self.compute.busy_nanos(i)).collect(),
            lane_busy_nanos: self.compute.busy,
            cores: self.resolved.cores,
            fanouts_live: self.fanouts.live(),
            fanouts_peak: self.fanouts.peak(),
            fanouts_balanced,
        }
    }

    /// Convenience: run until `deadline` (with an event budget) and produce the report.
    pub fn run_to_report(mut self, deadline: SimTime, max_events: u64) -> SimulationReport {
        self.run_until(deadline, max_events);
        self.into_report()
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start(node) => {
                if self.faults.is_crashed(node, self.now) {
                    return;
                }
                self.run_callback(node, Invoke::Start);
            }
            EventKind::Restart(node) => {
                // Overlapping windows could have the node down again already.
                if self.faults.is_crashed(node, self.now) {
                    return;
                }
                // The process died: whatever timers it had armed died with it.
                self.timer_epochs[node.as_index()] += 1;
                self.run_callback(node, Invoke::Restart);
            }
            EventKind::Arrive { fanout, to, size } => self.apply_arrive(fanout, to, size),
            EventKind::Deliver { fanout, to } => {
                if self.faults.is_crashed(to, self.now) {
                    // The receiver is down: the queued handle's reference comes back
                    // (the last one reclaims the slot) and no callback runs.
                    self.fanouts.release(fanout);
                    return;
                }
                let (from, message) = self.fanouts.consume(fanout);
                self.run_callback(to, Invoke::Message { from, message });
            }
            EventKind::Timer { node, token, epoch } => {
                if self.faults.is_crashed(node, self.now) {
                    return;
                }
                // A stale epoch means the timer was armed before a crash the node has
                // since restarted from: the timer belongs to the dead incarnation.
                if epoch != self.timer_epochs[node.as_index()] {
                    return;
                }
                self.run_callback(node, Invoke::Timer { token });
            }
        }
    }

    /// Runs one protocol callback against the engine's scratch action buffer (no
    /// per-event allocation) and settles its outputs.
    fn run_callback(&mut self, node: NodeId, invoke: Invoke<P::Message>) {
        let mut actions = std::mem::take(&mut self.scratch);
        {
            let mut ctx = SimContext {
                now: self.now,
                node,
                node_count: self.config.nodes,
                actions: &mut actions,
                rng: &mut self.node_rngs[node.as_index()],
            };
            match invoke {
                Invoke::Start => self.nodes[node.as_index()].on_start(&mut ctx),
                Invoke::Restart => self.nodes[node.as_index()].on_restart(&mut ctx),
                Invoke::Message { from, message } => {
                    // `FanoutTable::consume` already materialised the owned message
                    // (the last recipient of a fan-out takes the envelope without a
                    // deep clone, exactly like the old `Arc::try_unwrap` fast path).
                    self.nodes[node.as_index()].on_message(from, message, &mut ctx);
                }
                Invoke::Timer { token } => {
                    self.nodes[node.as_index()].on_timer(token, &mut ctx)
                }
            }
        }
        let epoch = self.timer_epochs[node.as_index()];
        self.finish_callback(node, &mut actions, epoch);
        actions.clear();
        self.scratch = actions;
    }

    /// An `Arrive` event fires: the message reaches the receiver's downlink, whose
    /// serialisation slot is reserved now — in arrival order. The fan-out reference
    /// held by the `Arrive` handle transfers to the pushed `Deliver` handle (no
    /// refcount change) — unless the receiver is down, in which case it comes back.
    fn apply_arrive(&mut self, fanout: u32, to: NodeId, size: u32) {
        if self.faults.is_crashed(to, self.now) {
            self.fanouts.release(fanout);
            return;
        }
        let to_link = self.resolved.links[to.as_index()];
        let start = self.now.max(self.downlink_free[to.as_index()]);
        let delivery = start + SimDuration::transmission(size as usize, to_link.downlink_bps);
        self.downlink_free[to.as_index()] = delivery;
        if self.config.half_duplex {
            self.uplink_free[to.as_index()] = self.uplink_free[to.as_index()].max(delivery);
        }
        self.push_deliver_event(delivery, fanout, to);
    }

    /// Settles a finished callback against the node's compute lanes: the charged
    /// modeled work occupies `[max(now, lane_free), +cost/speed]` of the node's
    /// earliest-free worker lane (lowest index on ties — see [`ComputeLanes`]),
    /// and every output of the callback (sends, timers, observations) takes effect
    /// at the completion instant. With nothing charged the completion instant is
    /// `now` and the engine behaves exactly as it did before the compute-resource
    /// model existed. `epoch` is the node's timer epoch as of the callback (after
    /// any `Restart` bump) — passed in, not re-read, so the parallel executor's
    /// deferred applies arm timers in the same epoch the sequential engine would.
    fn finish_callback(&mut self, node: NodeId, actions: &mut ActionBuffer<P::Message>, epoch: u32) {
        let done = if actions.compute.as_nanos() == 0 {
            self.now
        } else {
            let speed = self.resolved.cpu_speeds[node.as_index()];
            let scaled = (actions.compute.as_nanos() as f64 / speed).round() as u64;
            self.compute.dispatch(node.as_index(), self.now, scaled)
        };
        self.apply_actions(node, actions, done, epoch);
    }

    fn apply_actions(
        &mut self,
        node: NodeId,
        actions: &mut ActionBuffer<P::Message>,
        at: SimTime,
        epoch: u32,
    ) {
        for observation in actions.observations.drain(..) {
            self.metrics.observe(at, node, observation);
        }
        for (delay, token) in actions.timers.drain(..) {
            self.push_event(at + delay, EventKind::Timer { node, token, epoch });
        }
        for outgoing in actions.sends.drain(..) {
            match outgoing {
                Outgoing::Unicast(to, message) => {
                    let size = message.wire_size();
                    let category = message.category();
                    let uplink_tx = self.uplink_transmission(node, size);
                    let fanout = self.fanouts.intern(node, Arc::new(message));
                    self.route(node, to, fanout, size, category, at, uplink_tx);
                    self.fanouts.release_if_unused(fanout);
                }
                Outgoing::Multicast(message) => {
                    // Compute the per-message costs (wire size, category, uplink
                    // serialisation time) once for the whole fan-out, then charge each
                    // recipient exactly as `n − 1` unicasts would (same recipient
                    // order, same RNG draws, same event sequence numbers). The whole
                    // fan-out shares one interned table slot; copies dropped at route
                    // time simply never take a reference to it.
                    let size = message.wire_size();
                    let category = message.category();
                    let uplink_tx = self.uplink_transmission(node, size);
                    let fanout = self.fanouts.intern(node, Arc::new(message));
                    for index in 0..self.config.nodes {
                        let peer = NodeId(index as u32);
                        if peer != node {
                            self.route(node, peer, fanout, size, category, at, uplink_tx);
                        }
                    }
                    self.fanouts.release_if_unused(fanout);
                }
                Outgoing::Broadcast(message) => {
                    // Like Multicast, plus a local self-delivery that shares the same
                    // interned slot (ordered last, exactly where the old explicit
                    // `multicast + send(self)` pair put it).
                    let size = message.wire_size();
                    let category = message.category();
                    let uplink_tx = self.uplink_transmission(node, size);
                    let fanout = self.fanouts.intern(node, Arc::new(message));
                    for index in 0..self.config.nodes {
                        let peer = NodeId(index as u32);
                        if peer != node {
                            self.route(node, peer, fanout, size, category, at, uplink_tx);
                        }
                    }
                    self.route(node, node, fanout, size, category, at, uplink_tx);
                    self.fanouts.release_if_unused(fanout);
                }
            }
        }
    }

    /// The sender-side uplink serialisation time of one `size`-byte copy.
    fn uplink_transmission(&self, from: NodeId, size: usize) -> SimDuration {
        SimDuration::transmission(size, self.resolved.links[from.as_index()].uplink_bps)
    }

    /// Routes one copy of the interned `fanout` to `to`. Takes one table reference
    /// per handle it actually queues; dropped copies (crashed sender, filter or
    /// partition drop) take none, which is what lets `release_if_unused` reclaim a
    /// fully-dropped fan-out immediately.
    #[allow(clippy::too_many_arguments)]
    fn route(
        &mut self,
        from: NodeId,
        to: NodeId,
        fanout: u32,
        size: usize,
        category: &'static str,
        at: SimTime,
        uplink_tx: SimDuration,
    ) {
        if from == to {
            // Local delivery: no bandwidth cost, a negligible scheduling delay.
            self.fanouts.incref(fanout);
            self.push_event(at, EventKind::Deliver { fanout, to });
            return;
        }

        let mut fate = self.faults.judge(at, from, to, category, size);
        if self.faults.is_crashed(from, at) {
            return;
        }
        // A severed region pair drops the message after uplink accounting, exactly
        // like a filter Drop: the sender paid for bytes the network lost.
        if fate == MessageFate::Deliver && self.faults.has_partitions() {
            let from_region = self.resolved.node_region[from.as_index()] as usize;
            let to_region = self.resolved.node_region[to.as_index()] as usize;
            if self.faults.is_partitioned(at, from_region, to_region) {
                fate = MessageFate::Drop;
            }
        }

        // Uplink serialisation at the sender.
        let uplink_start = at.max(self.uplink_free[from.as_index()]);
        let departure = uplink_start + uplink_tx;
        self.uplink_free[from.as_index()] = departure;
        if self.config.half_duplex {
            self.downlink_free[from.as_index()] =
                self.downlink_free[from.as_index()].max(departure);
        }
        self.metrics.traffic.record_sent(from, category, size as u64);

        if fate == MessageFate::Drop {
            return;
        }

        // Propagation: the pair's base latency (plus both endpoints' deterministic
        // straggler extras) and one uniform jitter draw against the pair's bound.
        let (base_nanos, jitter_bound) = self.resolved.delay_parts(from.as_index(), to.as_index());
        let jitter_nanos = if jitter_bound == 0 {
            0
        } else {
            self.net_rng.gen_range(0..=jitter_bound)
        };
        let mut latency = SimDuration::from_nanos(base_nanos + jitter_nanos);
        if at < self.config.gst && self.config.pre_gst_extra_delay.as_nanos() > 0 {
            latency = latency
                + SimDuration::from_nanos(
                    self.net_rng.gen_range(0..=self.config.pre_gst_extra_delay.as_nanos()),
                );
        }
        let arrival = departure + latency;
        self.metrics.traffic.record_received(to, category, size as u64);

        // Downlink serialisation is reserved when the bytes actually arrive (the
        // `Arrive` event), so the receiver's FIFO queue is ordered by arrival time.
        self.fanouts.incref(fanout);
        self.push_event(
            arrival,
            EventKind::Arrive {
                fanout,
                to,
                size: size as u32,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{StragglerProfile, Topology};
    use crate::protocol::test_support::{PingMessage, PingPong};
    use crate::LinkConfig;

    fn two_node_config(bps: u64) -> NetworkConfig {
        let mut config = NetworkConfig::datacenter(2);
        config.links = vec![LinkConfig::symmetric(bps)];
        config.jitter = SimDuration::ZERO;
        config.base_latency = SimDuration::from_micros(100);
        config.half_duplex = false;
        config
    }

    fn pingpong_factory(max_hops: u32, payload: usize) -> impl FnMut(NodeId) -> PingPong {
        move |_| PingPong {
            max_hops,
            payload,
            received: 0,
        }
    }

    #[test]
    fn pingpong_completes_and_counts_messages() {
        let config = two_node_config(0);
        let sim = Simulation::new(config, FaultPlan::none(), pingpong_factory(4, 100));
        let report = sim.run_to_report(SimTime(SimDuration::from_secs(1).as_nanos()), 10_000);
        // 4 pings + 1 done message.
        let total_messages: u64 = report
            .metrics
            .traffic
            .iter_sent()
            .map(|(_, _, _, count)| count)
            .sum();
        assert_eq!(total_messages, 5);
        assert_eq!(report.metrics.custom_samples("pingpong_done"), vec![4]);
    }

    #[test]
    fn latency_determines_completion_time_on_unlimited_links() {
        let config = two_node_config(0);
        let mut sim = Simulation::new(config, FaultPlan::none(), pingpong_factory(4, 0));
        sim.run_until(SimTime(SimDuration::from_secs(1).as_nanos()), 10_000);
        // 5 messages, each 100 µs of latency: the last delivery is at 500 µs.
        let done_at = sim
            .metrics()
            .observations
            .iter()
            .find(|o| matches!(o.kind, ObservationKind::Custom { label: "pingpong_done", .. }))
            .map(|o| o.at)
            .unwrap();
        assert_eq!(done_at.as_micros(), 400);
    }

    #[test]
    fn bandwidth_adds_serialisation_delay() {
        // 1 Mbps, 12_500-byte payload: 100 ms per hop of serialisation at each side.
        let config = two_node_config(1_000_000);
        let mut sim = Simulation::new(config, FaultPlan::none(), pingpong_factory(1, 12_500 - 8));
        sim.run_until(SimTime(SimDuration::from_secs(10).as_nanos()), 10_000);
        let done_at = sim
            .metrics()
            .observations
            .iter()
            .find(|o| matches!(o.kind, ObservationKind::Custom { label: "pingpong_done", .. }))
            .map(|o| o.at)
            .unwrap();
        // One ping: 100 ms uplink + 100 µs latency + 100 ms downlink ≈ 200.1 ms.
        assert!(done_at.as_millis() >= 200 && done_at.as_millis() <= 201, "{done_at}");
    }

    #[test]
    fn traffic_is_conserved_when_nothing_is_dropped() {
        let config = two_node_config(0);
        let sim = Simulation::new(config, FaultPlan::none(), pingpong_factory(10, 64));
        let report = sim.run_to_report(SimTime(SimDuration::from_secs(1).as_nanos()), 10_000);
        assert_eq!(
            report.metrics.traffic.total_sent_bytes(),
            report.metrics.traffic.total_received_bytes()
        );
    }

    #[test]
    fn dropped_messages_charge_sender_but_not_receiver() {
        let config = two_node_config(0);
        let faults = FaultPlan::none().with_filter(|_, _, _, category, _| {
            if category == "ping" {
                MessageFate::Drop
            } else {
                MessageFate::Deliver
            }
        });
        let sim = Simulation::new(config, faults, pingpong_factory(4, 100));
        let report = sim.run_to_report(SimTime(SimDuration::from_secs(1).as_nanos()), 10_000);
        assert!(report.metrics.traffic.total_sent_bytes() > 0);
        assert_eq!(report.metrics.traffic.total_received_bytes(), 0);
    }

    #[test]
    fn crashed_node_goes_silent() {
        let config = two_node_config(0);
        let faults = FaultPlan::none().with_crash(NodeId(1), SimTime::ZERO);
        let sim = Simulation::new(config, faults, pingpong_factory(4, 100));
        let report = sim.run_to_report(SimTime(SimDuration::from_secs(1).as_nanos()), 10_000);
        // Node 0 sends the first ping; node 1 never responds.
        assert_eq!(report.metrics.traffic.received_bytes(NodeId(1)), 0);
        assert!(report.metrics.custom_samples("pingpong_done").is_empty());
    }

    #[test]
    fn deterministic_given_a_seed() {
        let run = |seed: u64| {
            let mut config = NetworkConfig::datacenter(2).with_seed(seed);
            config.half_duplex = false;
            let sim = Simulation::new(config, FaultPlan::none(), pingpong_factory(20, 256));
            let report = sim.run_to_report(SimTime(SimDuration::from_secs(1).as_nanos()), 100_000);
            (
                report.events,
                report.metrics.traffic.total_sent_bytes(),
                report
                    .metrics
                    .observations
                    .iter()
                    .map(|o| o.at.as_nanos())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn event_budget_is_respected() {
        let config = two_node_config(0);
        let mut sim = Simulation::new(config, FaultPlan::none(), pingpong_factory(1000, 8));
        sim.run_until(SimTime(SimDuration::from_secs(100).as_nanos()), 10);
        assert_eq!(sim.events_processed(), 10);
    }

    #[test]
    fn steady_state_throughput_excludes_warmup() {
        let mut report = SimulationReport {
            nodes: 1,
            end_time: SimTime(SimDuration::from_secs(10).as_nanos()),
            events: 0,
            metrics: MetricsSink::new(),
            probes: Vec::new(),
            compute_busy_nanos: Vec::new(),
            lane_busy_nanos: Vec::new(),
            cores: Vec::new(),
            fanouts_live: 0,
            fanouts_peak: 0,
            fanouts_balanced: true,
        };
        // 100 requests confirmed at t = 6 s: full-window rate is 10 rps, the rate over
        // the [5 s, 10 s] window is 20 rps, and a warm-up covering the run yields 0.
        report.metrics.observe(
            SimTime(SimDuration::from_secs(6).as_nanos()),
            NodeId(0),
            ObservationKind::RequestsConfirmed {
                count: 100,
                payload_bytes: 0,
            },
        );
        assert!((report.throughput_rps() - 10.0).abs() < 1e-9);
        let steady = report.steady_state_throughput_rps(SimDuration::from_secs(5));
        assert!((steady - 20.0).abs() < 1e-9);
        assert_eq!(report.steady_state_throughput_rps(SimDuration::from_secs(10)), 0.0);
        assert_eq!(report.steady_state_throughput_rps(SimDuration::from_secs(11)), 0.0);
    }

    #[test]
    fn clock_advances_to_deadline_when_idle() {
        let config = two_node_config(0);
        let mut sim = Simulation::new(config, FaultPlan::none(), pingpong_factory(1, 8));
        let deadline = SimTime(SimDuration::from_secs(2).as_nanos());
        sim.run_until(deadline, 100_000);
        assert_eq!(sim.now(), deadline);
    }

    /// Regression test for the arrival-order downlink reservation: a small message
    /// routed *after* two bulk transfers, but arriving long *before* their tail, must
    /// not queue behind them. Under route-time reservation (the pre-PR-3 model) the
    /// small ping below was delivered after ~300 ms instead of ~1 ms — the artificial
    /// head-of-line blocking that starved votes at paper scale.
    #[test]
    fn later_routed_small_message_is_not_blocked_by_earlier_bulk_reservation() {
        #[derive(Debug)]
        struct BulkThenPing {
            small_delivered: bool,
        }
        impl Protocol for BulkThenPing {
            type Message = PingMessage;

            fn on_start(&mut self, ctx: &mut dyn Context<Message = PingMessage>) {
                match ctx.node_id() {
                    // Two back-to-back bulk transfers: 125 kB at 10 Mbps is 100 ms of
                    // uplink each, so the second copy arrives at ~200 ms.
                    NodeId(0) => {
                        ctx.send(NodeId(2), PingMessage::Ping { hops: 0, payload: 125_000 });
                        ctx.send(NodeId(2), PingMessage::Ping { hops: 0, payload: 125_000 });
                    }
                    // A tiny ping routed 1 ms later (well after the bulk transfers were
                    // routed) that physically arrives at ~1.1 ms.
                    NodeId(1) => ctx.set_timer(SimDuration::from_millis(1), 7),
                    _ => {}
                }
            }

            fn on_message(
                &mut self,
                _from: NodeId,
                message: PingMessage,
                ctx: &mut dyn Context<Message = PingMessage>,
            ) {
                if let PingMessage::Ping { payload, .. } = message {
                    if payload < 1_000 && !self.small_delivered {
                        self.small_delivered = true;
                        ctx.observe(ObservationKind::Custom {
                            label: "small_delivered_at",
                            value: ctx.now().as_nanos(),
                        });
                    }
                }
            }

            fn on_timer(&mut self, _token: u64, ctx: &mut dyn Context<Message = PingMessage>) {
                ctx.send(NodeId(2), PingMessage::Ping { hops: 1, payload: 8 });
            }
        }

        let mut config = NetworkConfig::datacenter(3);
        config.links = vec![LinkConfig::symmetric(10_000_000)];
        config.jitter = SimDuration::ZERO;
        config.base_latency = SimDuration::from_micros(100);
        config.half_duplex = false;
        let mut sim = Simulation::new(config, FaultPlan::none(), |_| BulkThenPing {
            small_delivered: false,
        });
        sim.run_until(SimTime(SimDuration::from_secs(1).as_nanos()), 10_000);
        let delivered_at = sim
            .metrics()
            .custom_samples("small_delivered_at")
            .first()
            .copied()
            .expect("small ping was delivered");
        assert!(
            delivered_at < SimDuration::from_millis(10).as_nanos(),
            "small ping delivered at {delivered_at} ns — queued behind the bulk reservations"
        );
        // The bulk transfers still occupy the receiver's downlink until ~300 ms: the
        // horizon reflects real serialisation work, just reserved in arrival order.
        let (_, downlink) = sim.link_horizons(NodeId(2));
        assert!(
            downlink.as_nanos() >= SimDuration::from_millis(250).as_nanos(),
            "bulk transfers should keep the downlink horizon high, got {downlink:?}"
        );
    }

    /// The compute queue is a scheduled resource: charged work serialises FIFO per
    /// node, defers the callback's outputs, scales with the node's CPU speed, and is
    /// reported as utilization.
    #[test]
    fn charged_compute_defers_outputs_and_reports_utilization() {
        #[derive(Debug)]
        struct ChargingEcho;
        impl Protocol for ChargingEcho {
            type Message = PingMessage;

            fn on_start(&mut self, ctx: &mut dyn Context<Message = PingMessage>) {
                if ctx.node_id() == NodeId(0) {
                    // Two back-to-back requests to the worker node.
                    ctx.send(NodeId(1), PingMessage::Ping { hops: 0, payload: 8 });
                    ctx.send(NodeId(1), PingMessage::Ping { hops: 1, payload: 8 });
                }
            }

            fn on_message(
                &mut self,
                from: NodeId,
                message: PingMessage,
                ctx: &mut dyn Context<Message = PingMessage>,
            ) {
                match (ctx.node_id(), message) {
                    // The worker charges 10 ms of modeled work per request, then acks.
                    (NodeId(1), PingMessage::Ping { hops, .. }) => {
                        ctx.charge_compute(SimDuration::from_millis(10));
                        ctx.send(from, PingMessage::Ping { hops: 100 + hops, payload: 8 });
                    }
                    (NodeId(0), PingMessage::Ping { hops, .. }) => {
                        ctx.observe(ObservationKind::Custom {
                            label: "ack_at",
                            value: ctx.now().as_nanos() * 1000 + u64::from(hops),
                        });
                    }
                    _ => {}
                }
            }

            fn on_timer(&mut self, _token: u64, _ctx: &mut dyn Context<Message = PingMessage>) {}
        }

        let run = |speed: f64| {
            let mut config = two_node_config(0);
            config = config.with_node_cpu_speed(1, speed);
            let sim = Simulation::new(config, FaultPlan::none(), |_| ChargingEcho);
            sim.run_to_report(SimTime(SimDuration::from_secs(1).as_nanos()), 10_000)
        };

        let report = run(1.0);
        let acks = report.metrics.custom_samples("ack_at");
        assert_eq!(acks.len(), 2);
        // First ack: ~100 µs latency + 10 ms compute + ~100 µs back. Second ack must
        // queue behind the first charge: ≥ 20 ms of compute before it leaves.
        let first_ms = acks[0] / 1000 / 1_000_000;
        let second_ms = acks[1] / 1000 / 1_000_000;
        assert!((10..12).contains(&first_ms), "first ack at {first_ms} ms");
        assert!((20..22).contains(&second_ms), "second ack at {second_ms} ms");
        // FIFO order is preserved (hops 100 before hops 101).
        assert_eq!(acks[0] % 1000, 100);
        assert_eq!(acks[1] % 1000, 101);
        // 20 ms of busy time over a 1 s run.
        assert_eq!(report.compute_busy_nanos[1], 20_000_000);
        assert!((report.compute_utilization(NodeId(1)) - 0.02).abs() < 1e-9);
        assert_eq!(report.compute_busy_nanos[0], 0);
        assert!((report.max_compute_utilization() - 0.02).abs() < 1e-9);
        assert!(report.mean_compute_utilization() > 0.0);

        // A half-speed CPU doubles the busy time and pushes the acks out.
        let slow = run(0.5);
        assert_eq!(slow.compute_busy_nanos[1], 40_000_000);
        let slow_acks = slow.metrics.custom_samples("ack_at");
        assert!(slow_acks[1] / 1000 > acks[1] / 1000);
    }

    #[test]
    fn zero_charge_keeps_the_engine_schedule_unchanged() {
        // A protocol that never charges compute must see `compute_busy_nanos == 0` and
        // the exact same behaviour as before the compute model existed.
        let config = two_node_config(0);
        let sim = Simulation::new(config, FaultPlan::none(), pingpong_factory(4, 100));
        let report = sim.run_to_report(SimTime(SimDuration::from_secs(1).as_nanos()), 10_000);
        assert!(report.compute_busy_nanos.iter().all(|&b| b == 0));
        assert_eq!(report.max_compute_utilization(), 0.0);
        assert_eq!(report.metrics.custom_samples("pingpong_done"), vec![4]);
    }

    /// With two worker lanes the two 10 ms charges overlap instead of queueing:
    /// both acks return in the first-ack window, the per-lane breakdown shows one
    /// charge per lane, and utilization is normalised by the core count.
    #[test]
    fn two_lanes_overlap_charged_work_and_report_per_lane_busy() {
        #[derive(Debug)]
        struct ChargingEcho;
        impl Protocol for ChargingEcho {
            type Message = PingMessage;

            fn on_start(&mut self, ctx: &mut dyn Context<Message = PingMessage>) {
                if ctx.node_id() == NodeId(0) {
                    ctx.send(NodeId(1), PingMessage::Ping { hops: 0, payload: 8 });
                    ctx.send(NodeId(1), PingMessage::Ping { hops: 1, payload: 8 });
                }
            }

            fn on_message(
                &mut self,
                from: NodeId,
                message: PingMessage,
                ctx: &mut dyn Context<Message = PingMessage>,
            ) {
                match (ctx.node_id(), message) {
                    (NodeId(1), PingMessage::Ping { hops, .. }) => {
                        ctx.charge_compute(SimDuration::from_millis(10));
                        ctx.send(from, PingMessage::Ping { hops: 100 + hops, payload: 8 });
                    }
                    (NodeId(0), PingMessage::Ping { hops, .. }) => {
                        ctx.observe(ObservationKind::Custom {
                            label: "ack_at",
                            value: ctx.now().as_nanos() * 1000 + u64::from(hops),
                        });
                    }
                    _ => {}
                }
            }

            fn on_timer(&mut self, _token: u64, _ctx: &mut dyn Context<Message = PingMessage>) {}
        }

        let config = two_node_config(0).with_node_cores(1, 2);
        let sim = Simulation::new(config, FaultPlan::none(), |_| ChargingEcho);
        let report = sim.run_to_report(SimTime(SimDuration::from_secs(1).as_nanos()), 10_000);
        let acks = report.metrics.custom_samples("ack_at");
        assert_eq!(acks.len(), 2);
        // Both requests land on a free lane, so both acks are back within ~10-12 ms
        // (compare charged_compute_defers_outputs_and_reports_utilization, where the
        // second ack queues to ≥ 20 ms on a single lane).
        for ack in &acks {
            let ms = ack / 1000 / 1_000_000;
            assert!((10..12).contains(&ms), "ack at {ms} ms should not queue");
        }
        // 20 ms of busy time total, one 10 ms charge per lane, normalised
        // utilization 20 ms / (1 s × 2 cores) = 1%.
        assert_eq!(report.compute_busy_nanos[1], 20_000_000);
        assert_eq!(report.lane_busy_nanos[1], vec![10_000_000, 10_000_000]);
        assert_eq!(report.cores, vec![1, 2]);
        assert!((report.compute_utilization(NodeId(1)) - 0.01).abs() < 1e-9);
        assert!((report.lane_utilization(NodeId(1), 0) - 0.01).abs() < 1e-9);
        assert!((report.lane_utilization(NodeId(1), 1) - 0.01).abs() < 1e-9);
        assert_eq!(report.lane_utilization(NodeId(1), 2), 0.0);
    }

    /// The k = 1 lane-equivalence gate: a run with an explicit `cores = 1` through
    /// the multi-lane model must be bit-identical — same event count, same ack
    /// instants, same busy nanoseconds — to the default config (the schedule the
    /// pre-multi-core goldens were captured against).
    #[test]
    fn single_lane_run_is_bit_identical_to_the_default_model() {
        #[derive(Debug)]
        struct ChargingEcho;
        impl Protocol for ChargingEcho {
            type Message = PingMessage;

            fn on_start(&mut self, ctx: &mut dyn Context<Message = PingMessage>) {
                if ctx.node_id() == NodeId(0) {
                    for hops in 0..4 {
                        ctx.send(NodeId(1), PingMessage::Ping { hops, payload: 8 });
                    }
                }
            }

            fn on_message(
                &mut self,
                from: NodeId,
                message: PingMessage,
                ctx: &mut dyn Context<Message = PingMessage>,
            ) {
                match (ctx.node_id(), message) {
                    (NodeId(1), PingMessage::Ping { hops, .. }) => {
                        ctx.charge_compute(SimDuration::from_millis(3));
                        ctx.send(from, PingMessage::Ping { hops: 100 + hops, payload: 8 });
                    }
                    (NodeId(0), PingMessage::Ping { .. }) => {
                        ctx.observe(ObservationKind::Custom {
                            label: "ack_at",
                            value: ctx.now().as_nanos(),
                        });
                    }
                    _ => {}
                }
            }

            fn on_timer(&mut self, _token: u64, _ctx: &mut dyn Context<Message = PingMessage>) {}
        }

        let run = |explicit_single_core: bool| {
            let mut config = two_node_config(7);
            if explicit_single_core {
                config = config.with_cores(1);
            }
            let sim = Simulation::new(config, FaultPlan::none(), |_| ChargingEcho);
            let report = sim.run_to_report(SimTime(SimDuration::from_secs(1).as_nanos()), 10_000);
            (
                report.events,
                report.metrics.custom_samples("ack_at"),
                report.compute_busy_nanos.clone(),
                report.lane_busy_nanos.clone(),
            )
        };
        let default = run(false);
        let single = run(true);
        assert_eq!(default, single);
        // And the aggregate equals the single lane exactly.
        assert_eq!(default.3[1], vec![default.2[1]]);
    }

    proptest::proptest! {
        /// Earliest-free-lane dispatch at k = 1 is the sequential model: for any
        /// sequence of (arrival-gap, cost) charges on one node, completion instants
        /// match the scalar `start = max(now, free); free = start + cost` fold
        /// exactly, and completions never reorder (monotone non-decreasing).
        #[test]
        fn single_lane_dispatch_matches_the_sequential_model(
            ops in proptest::collection::vec((0u64..5_000, 0u64..10_000), 0..64),
        ) {
            let mut lanes = ComputeLanes::new(&[1]);
            let mut scalar_free = SimTime::ZERO;
            let mut now = SimTime::ZERO;
            let mut last_done = SimTime::ZERO;
            for (gap, cost) in ops {
                now = now + SimDuration::from_nanos(gap);
                let done = lanes.dispatch(0, now, cost);
                let start = now.max(scalar_free);
                let expected = start + SimDuration::from_nanos(cost);
                scalar_free = expected;
                proptest::prop_assert_eq!(done, expected);
                proptest::prop_assert!(done >= last_done, "completions reordered");
                last_done = done;
                proptest::prop_assert_eq!(lanes.horizon(0), scalar_free);
                proptest::prop_assert_eq!(lanes.busy_nanos(0), {
                    let b: u64 = lanes.busy[0].iter().sum();
                    b
                });
            }
        }
    }

    /// Lane selection is deterministic: earliest-free lane wins, lowest index on
    /// ties — three equal charges at t = 0 on two lanes go lane 0, lane 1, lane 0.
    #[test]
    fn lane_dispatch_breaks_ties_by_lowest_index() {
        let mut lanes = ComputeLanes::new(&[2]);
        assert_eq!(lanes.free[0].len(), 2);
        // Both lanes free at ZERO: lane 0 wins the tie.
        assert_eq!(lanes.dispatch(0, SimTime::ZERO, 10), SimTime(SimDuration::from_nanos(10).as_nanos()));
        // Lane 1 is now strictly earlier-free.
        assert_eq!(lanes.dispatch(0, SimTime::ZERO, 10), SimTime(SimDuration::from_nanos(10).as_nanos()));
        // Both free at 10 again: lane 0 wins, so its busy total doubles.
        assert_eq!(lanes.dispatch(0, SimTime::ZERO, 10), SimTime(SimDuration::from_nanos(20).as_nanos()));
        assert_eq!(lanes.busy[0], vec![20, 10]);
        assert_eq!(lanes.horizon(0), SimTime(SimDuration::from_nanos(10).as_nanos()));
    }

    /// A flat single-region [`Topology`] must reproduce the scalar model's schedule
    /// bit-identically — same event count, same observation timestamps (the RNG
    /// compatibility contract of `DESIGN.md` §7).
    #[test]
    fn flat_topology_is_bit_identical_to_the_scalar_model() {
        let run = |topology: Option<Topology>| {
            let mut config = NetworkConfig::datacenter(3).with_seed(99);
            config.topology = topology;
            let sim = Simulation::new(config, FaultPlan::none(), pingpong_factory(20, 256));
            let report = sim.run_to_report(SimTime(SimDuration::from_secs(1).as_nanos()), 100_000);
            (
                report.events,
                report.metrics.traffic.total_sent_bytes(),
                report
                    .metrics
                    .observations
                    .iter()
                    .map(|o| o.at.as_nanos())
                    .collect::<Vec<_>>(),
            )
        };
        let scalar = run(None);
        let flat = run(Some(Topology::flat(
            SimDuration::from_micros(500),
            SimDuration::from_micros(50),
        )));
        assert_eq!(scalar, flat);
    }

    /// Propagation delay is drawn from the region-pair matrix: an intra-region ping
    /// arrives at the intra latency, a cross-region ping at the inter latency, and a
    /// straggler's extra is charged on top deterministically.
    #[test]
    fn topology_matrix_and_straggler_extras_drive_delivery_times() {
        #[derive(Debug)]
        struct Fanout;
        impl Protocol for Fanout {
            type Message = PingMessage;

            fn on_start(&mut self, ctx: &mut dyn Context<Message = PingMessage>) {
                if ctx.node_id() == NodeId(0) {
                    // Node 1 is region "b" (cross-region), node 2 is region "a"
                    // (intra-region), node 3 is region "b" and a straggler.
                    for peer in [1u32, 2, 3] {
                        ctx.send(NodeId(peer), PingMessage::Ping { hops: 0, payload: 8 });
                    }
                }
            }

            fn on_message(
                &mut self,
                _from: NodeId,
                _message: PingMessage,
                ctx: &mut dyn Context<Message = PingMessage>,
            ) {
                ctx.observe(ObservationKind::Custom {
                    label: "arrived",
                    value: ctx.node_id().0 as u64 * 1_000_000_000 + ctx.now().as_nanos(),
                });
            }

            fn on_timer(&mut self, _token: u64, _ctx: &mut dyn Context<Message = PingMessage>) {}
        }

        let topology = Topology::uniform(
            &["a", "b"],
            SimDuration::from_micros(100),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        )
        .with_straggler(3, StragglerProfile::slow_path(SimDuration::from_millis(25)));
        let mut config = NetworkConfig::datacenter(4).with_topology(topology);
        config.links = vec![LinkConfig::unlimited()];
        config.half_duplex = false;
        let mut sim = Simulation::new(config, FaultPlan::none(), |_| Fanout);
        sim.run_until(SimTime(SimDuration::from_secs(1).as_nanos()), 1_000);
        let mut arrivals: Vec<(u64, u64)> = sim
            .metrics()
            .custom_samples("arrived")
            .into_iter()
            .map(|v| (v / 1_000_000_000, v % 1_000_000_000))
            .collect();
        arrivals.sort_unstable();
        assert_eq!(
            arrivals,
            vec![
                (1, 5_000_000),  // cross-region: 5 ms
                (2, 100_000),    // intra-region: 100 µs
                (3, 30_000_000), // cross-region + straggler extra: 5 ms + 25 ms
            ]
        );
    }

    /// A ticker protocol for the crash-restart tests: a 100 ms periodic timer that
    /// observes each tick, plus one long one-shot "ghost" timer armed at (re)start.
    #[derive(Debug)]
    struct Ticker;
    impl Protocol for Ticker {
        type Message = PingMessage;

        fn on_start(&mut self, ctx: &mut dyn Context<Message = PingMessage>) {
            ctx.set_timer(SimDuration::from_millis(100), 1);
            ctx.set_timer(SimDuration::from_millis(800), 2);
        }

        fn on_message(
            &mut self,
            _from: NodeId,
            _message: PingMessage,
            _ctx: &mut dyn Context<Message = PingMessage>,
        ) {
        }

        fn on_timer(&mut self, token: u64, ctx: &mut dyn Context<Message = PingMessage>) {
            if ctx.node_id() != NodeId(0) {
                return;
            }
            match token {
                1 => {
                    ctx.observe(ObservationKind::Custom {
                        label: "tick",
                        value: ctx.now().as_nanos(),
                    });
                    ctx.set_timer(SimDuration::from_millis(100), 1);
                }
                2 => ctx.observe(ObservationKind::Custom {
                    label: "ghost",
                    value: ctx.now().as_nanos(),
                }),
                _ => unreachable!(),
            }
        }
    }

    /// A finite crash window silences the node while it lasts, calls `on_restart` at
    /// the restart instant, and swallows every timer armed by the dead incarnation —
    /// including long timers that would only fire *after* the restart.
    #[test]
    fn crash_restart_resumes_timers_in_a_fresh_epoch() {
        let config = two_node_config(0);
        let faults = FaultPlan::none().with_crash_restart(
            NodeId(0),
            SimTime(SimDuration::from_millis(250).as_nanos()),
            SimTime(SimDuration::from_millis(500).as_nanos()),
        );
        let sim = Simulation::new(config, faults, |_| Ticker);
        let report = sim.run_to_report(SimTime(SimDuration::from_secs(1).as_nanos()), 10_000);
        let ticks: Vec<u64> = report
            .metrics
            .custom_samples("tick")
            .iter()
            .map(|&nanos| nanos / 1_000_000)
            .collect();
        // Pre-crash ticks at 100 and 200 ms; the 300 ms tick dies with the crash, and
        // the restart re-arms a fresh chain at 600..=1000 ms.
        assert_eq!(ticks, vec![100, 200, 600, 700, 800, 900, 1000]);
        // The ghost timer armed at t = 0 would fire at 800 ms — after the restart. It
        // belongs to the dead incarnation, so the epoch check must swallow it (the
        // re-armed copy from `on_restart` lands at 1300 ms, past the deadline).
        assert!(report.metrics.custom_samples("ghost").is_empty());
    }

    /// A partition window drops cross-region traffic (sender still charged) and heals
    /// at its end instant.
    #[test]
    fn partition_window_severs_and_heals_region_pairs() {
        #[derive(Debug)]
        struct RetrySender;
        impl Protocol for RetrySender {
            type Message = PingMessage;

            fn on_start(&mut self, ctx: &mut dyn Context<Message = PingMessage>) {
                if ctx.node_id() == NodeId(0) {
                    // First copy at t = 0 (inside the partition), retry at 150 ms.
                    ctx.send(NodeId(1), PingMessage::Ping { hops: 0, payload: 92 });
                    ctx.set_timer(SimDuration::from_millis(150), 1);
                }
            }

            fn on_message(
                &mut self,
                _from: NodeId,
                _message: PingMessage,
                ctx: &mut dyn Context<Message = PingMessage>,
            ) {
                ctx.observe(ObservationKind::Custom {
                    label: "delivered_at",
                    value: ctx.now().as_nanos(),
                });
            }

            fn on_timer(&mut self, _token: u64, ctx: &mut dyn Context<Message = PingMessage>) {
                ctx.send(NodeId(1), PingMessage::Ping { hops: 1, payload: 92 });
            }
        }

        // Nodes 0 and 1 land in regions "a" and "b" (round-robin); partition the pair
        // for the first 100 ms.
        let topology = Topology::uniform(
            &["a", "b"],
            SimDuration::from_micros(100),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let mut config = NetworkConfig::datacenter(2).with_topology(topology);
        config.links = vec![LinkConfig::unlimited()];
        config.half_duplex = false;
        let faults = FaultPlan::none().with_partition(
            0,
            1,
            SimTime::ZERO,
            SimTime(SimDuration::from_millis(100).as_nanos()),
        );
        let sim = Simulation::new(config, faults, |_| RetrySender);
        let report = sim.run_to_report(SimTime(SimDuration::from_secs(1).as_nanos()), 10_000);
        // Only the retry got through: 150 ms departure + 5 ms cross-region latency.
        let delivered = report.metrics.custom_samples("delivered_at");
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0], SimDuration::from_millis(155).as_nanos());
        // The sender paid the uplink for both copies; the receiver saw only one.
        assert_eq!(report.metrics.traffic.sent_bytes(NodeId(0)), 200);
        assert_eq!(report.metrics.traffic.received_bytes(NodeId(1)), 100);
    }

    #[test]
    #[should_panic(expected = "with_partition: region 2 out of range for a 2-region topology")]
    fn partition_region_out_of_range_panics_with_context() {
        let topology = Topology::uniform(
            &["a", "b"],
            SimDuration::from_micros(100),
            SimDuration::from_millis(5),
            SimDuration::ZERO,
        );
        let config = NetworkConfig::datacenter(2).with_topology(topology);
        let faults = FaultPlan::none().with_partition(0, 2, SimTime::ZERO, SimTime(100));
        let _ = Simulation::new(config, faults, pingpong_factory(1, 8));
    }

    #[test]
    #[should_panic(expected = "with_partition: region 1 out of range for a 1-region topology")]
    fn partition_without_topology_panics_with_context() {
        let config = two_node_config(0);
        let faults = FaultPlan::none().with_partition(0, 1, SimTime::ZERO, SimTime(100));
        let _ = Simulation::new(config, faults, pingpong_factory(1, 8));
    }

    #[test]
    #[should_panic(expected = "with_crash: node 7 out of range for a 2-node network")]
    fn crash_node_out_of_range_panics_with_context() {
        let config = two_node_config(0);
        let faults = FaultPlan::none().with_crash(NodeId(7), SimTime::ZERO);
        let _ = Simulation::new(config, faults, pingpong_factory(1, 8));
    }

    #[test]
    fn half_duplex_couples_the_two_directions() {
        // With half-duplex links, a node that is busy sending delays its receives too.
        let mut config = two_node_config(1_000_000);
        config.half_duplex = true;
        let sim = Simulation::new(config, FaultPlan::none(), pingpong_factory(2, 12_492));
        let report = sim.run_to_report(SimTime(SimDuration::from_secs(10).as_nanos()), 10_000);

        let mut config_full = two_node_config(1_000_000);
        config_full.half_duplex = false;
        let sim_full = Simulation::new(config_full, FaultPlan::none(), pingpong_factory(2, 12_492));
        let report_full = sim_full.run_to_report(SimTime(SimDuration::from_secs(10).as_nanos()), 10_000);

        let done = |r: &SimulationReport| {
            r.metrics
                .observations
                .iter()
                .find(|o| matches!(o.kind, ObservationKind::Custom { label: "pingpong_done", .. }))
                .map(|o| o.at.as_nanos())
                .unwrap()
        };
        assert!(done(&report) >= done(&report_full));
    }
}

