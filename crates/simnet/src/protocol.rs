//! The sans-IO interface implemented by protocol state machines.
//!
//! A [`Protocol`] never performs IO: it reacts to `on_start`, `on_message` and
//! `on_timer` callbacks by calling methods on a [`Context`] (send, multicast, set a
//! timer, emit an observation). The same implementation therefore runs unchanged under
//! the deterministic discrete-event [`crate::Simulation`] and under the thread-based
//! [`crate::runtime`].

use crate::metrics::ObservationKind;
use crate::time::{SimDuration, SimTime};
use leopard_types::{NodeId, WireSize};
use rand::RngCore;

/// Messages exchanged by a protocol.
///
/// `category()` labels each message for the bandwidth-utilisation breakdown
/// (paper, Table III); it should be a small, fixed set of labels such as
/// `"datablock"`, `"bftblock"`, `"vote"`, `"proof"`.
///
/// `Send + Sync` because one `Arc`'d envelope of a multicast may be delivered from
/// several worker threads of the simulator's parallel execution mode (and the
/// thread-based runtime moves messages across channels).
pub trait SimMessage: Clone + WireSize + Send + Sync + 'static {
    /// The accounting category of this message.
    fn category(&self) -> &'static str;
}

/// The environment a protocol interacts with.
pub trait Context {
    /// The message type of the protocol.
    type Message: SimMessage;

    /// Current (simulated or wall-clock) time.
    fn now(&self) -> SimTime;

    /// This node's identifier.
    fn node_id(&self) -> NodeId;

    /// Total number of nodes in the system.
    fn node_count(&self) -> usize;

    /// Sends a message to a single peer. Sending to oneself delivers the message
    /// locally without charging any bandwidth.
    fn send(&mut self, to: NodeId, message: Self::Message);

    /// Sends a message to every other node (not to oneself).
    ///
    /// The default implementation performs `node_count() - 1` unicast sends, which is
    /// exactly how the bandwidth cost of a multicast is charged in the paper's model.
    fn multicast(&mut self, message: Self::Message) {
        let me = self.node_id();
        for index in 0..self.node_count() {
            let peer = NodeId(index as u32);
            if peer != me {
                self.send(peer, message.clone());
            }
        }
    }

    /// Sends a message to every node **including oneself**; the self-delivery is local
    /// (no bandwidth charged), the other `node_count() - 1` deliveries are charged as
    /// unicasts.
    ///
    /// Protocols that process their own proposals/proofs through the regular message
    /// path should prefer this over `multicast(m.clone()); send(self, m)`: the
    /// simulation engine shares one envelope across the whole fan-out, so no extra
    /// clone of the message is made for the self-delivery.
    fn broadcast(&mut self, message: Self::Message) {
        self.multicast(message.clone());
        self.send(self.node_id(), message);
    }

    /// Schedules `on_timer(token)` to fire after `delay`.
    fn set_timer(&mut self, delay: SimDuration, token: u64);

    /// Charges `cost` of modeled CPU work to this node's compute queue.
    ///
    /// Under the discrete-event simulation the node's CPU is a scheduled resource like
    /// its links: the charged work is dispatched to the node's earliest-free worker
    /// lane (lowest index on ties; one lane per configured core, see
    /// [`crate::NetworkConfig::with_cores`]) starting at `max(now, lane_free)`, and
    /// every *output* of the current callback (sends, timers, observations) takes
    /// effect only once the work completes. Charges accumulate within one callback.
    /// The thread-based runtime ignores charges (real CPU time passes for real there),
    /// which is also the default implementation.
    fn charge_compute(&mut self, cost: SimDuration) {
        let _ = cost;
    }

    /// Emits a protocol observation (confirmed requests, view changes, stage latencies…)
    /// for the metrics sink.
    fn observe(&mut self, observation: ObservationKind);

    /// A deterministic per-node random number generator.
    fn rng(&mut self) -> &mut dyn RngCore;
}

/// A point-in-time liveness self-report from a protocol instance.
///
/// The probe turns a silent stall into a diagnosable one: instead of a bare zero in a
/// throughput table, a run can report "last confirmation at `t`, stalled on `X` since
/// `t'`". The `stall` label is protocol-defined (Leopard reports its `StallReason`
/// taxonomy); `"None"` by convention means the node is making progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressProbe {
    /// When this node last confirmed (executed) anything, if ever.
    pub last_confirmation_at: Option<SimTime>,
    /// The protocol-defined stall label; `"None"` when the node is healthy.
    pub stall: &'static str,
    /// Since when the current stall has persisted (`None` when not stalled).
    pub stalled_since: Option<SimTime>,
}

impl ProgressProbe {
    /// True if the probe reports no stall.
    pub fn is_healthy(&self) -> bool {
        self.stall == "None"
    }

    /// A compact human-readable rendering, e.g.
    /// `"AwaitingReady since 2.100s; last confirmation at 1.950s"`.
    pub fn summary(&self) -> String {
        let confirm = match self.last_confirmation_at {
            Some(at) => format!("last confirmation at {:.3}s", at.as_secs_f64()),
            None => "never confirmed".to_string(),
        };
        match self.stalled_since {
            Some(since) if !self.is_healthy() => {
                format!("{} since {:.3}s; {confirm}", self.stall, since.as_secs_f64())
            }
            _ => confirm,
        }
    }
}

/// A sans-IO protocol state machine.
///
/// `Send` because both drivers move state machines across threads: the thread-based
/// [`crate::runtime`] gives each node its own thread, and the simulator's parallel
/// execution mode executes same-instant callbacks of different nodes on a worker
/// pool (each node's state is only ever touched by one thread at a time).
pub trait Protocol: Send {
    /// The message type exchanged between nodes running this protocol.
    type Message: SimMessage;

    /// Called once when the node starts.
    fn on_start(&mut self, ctx: &mut dyn Context<Message = Self::Message>);

    /// Called when the node comes back from a finite crash window scheduled via
    /// [`crate::FaultPlan::with_crash_restart`]. The node keeps its in-memory state
    /// (the simulation does not reconstruct the instance), but none of its pre-crash
    /// timers will ever fire — the implementation must re-arm them and should trigger
    /// whatever catch-up the protocol defines (e.g. a state-transfer request). The
    /// default simply runs [`Self::on_start`] again.
    fn on_restart(&mut self, ctx: &mut dyn Context<Message = Self::Message>) {
        self.on_start(ctx);
    }

    /// Called when a message from `from` is delivered.
    fn on_message(
        &mut self,
        from: NodeId,
        message: Self::Message,
        ctx: &mut dyn Context<Message = Self::Message>,
    );

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, token: u64, ctx: &mut dyn Context<Message = Self::Message>);

    /// Reports this node's liveness state at time `now`, if the protocol is
    /// instrumented for it. The default is `None` (not instrumented); the simulation
    /// snapshots every node's probe into [`crate::SimulationReport::probes`] when a run
    /// ends.
    fn progress_probe(&self, _now: SimTime) -> Option<ProgressProbe> {
        None
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A tiny ping/pong protocol used by the simulator and runtime unit tests.

    use super::*;

    /// Message of the test protocol.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum PingMessage {
        /// A ping carrying a hop counter and a payload size.
        Ping {
            /// Number of hops performed so far.
            hops: u32,
            /// Size of the simulated payload.
            payload: usize,
        },
        /// Final acknowledgement.
        Done,
    }

    impl WireSize for PingMessage {
        fn wire_size(&self) -> usize {
            match self {
                PingMessage::Ping { payload, .. } => 8 + payload,
                PingMessage::Done => 8,
            }
        }
    }

    impl SimMessage for PingMessage {
        fn category(&self) -> &'static str {
            match self {
                PingMessage::Ping { .. } => "ping",
                PingMessage::Done => "done",
            }
        }
    }

    /// Bounces a ping back and forth `max_hops` times, then emits an observation.
    #[derive(Debug)]
    pub struct PingPong {
        /// Maximum number of hops before stopping.
        pub max_hops: u32,
        /// Payload size attached to each ping.
        pub payload: usize,
        /// Number of pings this node received.
        pub received: u32,
    }

    impl Protocol for PingPong {
        type Message = PingMessage;

        fn on_start(&mut self, ctx: &mut dyn Context<Message = Self::Message>) {
            if ctx.node_id() == NodeId(0) {
                ctx.send(
                    NodeId(1),
                    PingMessage::Ping {
                        hops: 0,
                        payload: self.payload,
                    },
                );
            }
        }

        fn on_message(
            &mut self,
            from: NodeId,
            message: Self::Message,
            ctx: &mut dyn Context<Message = Self::Message>,
        ) {
            if let PingMessage::Ping { hops, payload } = message {
                self.received += 1;
                if hops + 1 >= self.max_hops {
                    ctx.observe(ObservationKind::Custom {
                        label: "pingpong_done",
                        value: u64::from(hops + 1),
                    });
                    ctx.send(from, PingMessage::Done);
                } else {
                    ctx.send(
                        from,
                        PingMessage::Ping {
                            hops: hops + 1,
                            payload,
                        },
                    );
                }
            }
        }

        fn on_timer(&mut self, _token: u64, _ctx: &mut dyn Context<Message = Self::Message>) {}
    }
}
