//! Arithmetic in GF(2^8) with the irreducible polynomial `x^8 + x^4 + x^3 + x + 1`
//! (0x11B, the AES polynomial), generator 0x03.
//!
//! Multiplication and division go through log/antilog tables that are computed once at
//! first use; addition is XOR.

use std::sync::OnceLock;

/// The reduction polynomial without the leading x^8 term.
const POLY: u16 = 0x11B;
/// Generator element used to build the log/antilog tables.
const GENERATOR: u8 = 0x03;

struct Tables {
    log: [u8; 256],
    exp: [u8; 512],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        // Tables are built once; the bit-by-bit multiply keeps this obviously correct.
        let mut x: u8 = 1;
        for i in 0..255usize {
            exp[i] = x;
            log[x as usize] = i as u8;
            x = mul_slow(x, GENERATOR);
        }
        // Duplicate the exp table so `exp[a + b]` never needs a modulo.
        for i in 255..512usize {
            exp[i] = exp[i - 255];
        }
        Tables { log, exp }
    })
}

/// Bit-by-bit ("Russian peasant") multiplication used to build the tables and as a
/// cross-check in tests.
pub fn mul_slow(mut a: u8, mut b: u8) -> u8 {
    let mut acc: u8 = 0;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let carry = a & 0x80 != 0;
        a <<= 1;
        if carry {
            a ^= (POLY & 0xFF) as u8;
        }
        b >>= 1;
    }
    acc
}

/// Addition in GF(2^8) (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication in GF(2^8).
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    let log_a = t.log[a as usize] as usize;
    let log_b = t.log[b as usize] as usize;
    t.exp[log_a + log_b]
}

/// Multiplicative inverse; `None` for zero.
#[inline]
pub fn inverse(a: u8) -> Option<u8> {
    if a == 0 {
        return None;
    }
    let t = tables();
    let log_a = t.log[a as usize] as usize;
    Some(t.exp[255 - log_a])
}

/// Division `a / b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    let inv = inverse(b).expect("division by zero in GF(256)");
    mul(a, inv)
}

/// Exponentiation `base^power` where the exponent is an ordinary integer.
pub fn pow(base: u8, power: usize) -> u8 {
    if power == 0 {
        return 1;
    }
    if base == 0 {
        return 0;
    }
    let t = tables();
    let log_base = t.log[base as usize] as usize;
    let log_result = (log_base * power) % 255;
    t.exp[log_result]
}

/// The full 256 × 256 multiplication table: `MUL_TABLE[a][b] == mul(a, b)`.
///
/// 64 KiB, built once at first use. The bulk kernels below fetch one 256-entry row per
/// *multiplier* and then run a branch-free single-lookup inner loop — no log/exp pair,
/// no zero test, and no `OnceLock` dereference per byte.
fn mul_table() -> &'static [[u8; 256]; 256] {
    static MUL_TABLE: OnceLock<Box<[[u8; 256]; 256]>> = OnceLock::new();
    MUL_TABLE.get_or_init(|| {
        let t = tables();
        let mut full = vec![[0u8; 256]; 256].into_boxed_slice();
        for a in 1..256usize {
            let log_a = t.log[a] as usize;
            let row = &mut full[a];
            for b in 1..256usize {
                row[b] = t.exp[log_a + t.log[b] as usize];
            }
        }
        full.try_into().expect("built exactly 256 rows")
    })
}

/// The 256-entry row table of a single multiplier: `mul_table_row(c)[s] == mul(c, s)`.
///
/// Useful for callers that apply the same coefficient to many independent slices (e.g.
/// a Reed–Solomon encoding-matrix cell applied shard by shard).
pub fn mul_table_row(c: u8) -> &'static [u8; 256] {
    &mul_table()[c as usize]
}

/// Multiplies every byte of `dst` by `c` in place (`dst[i] = c * dst[i]`).
pub fn mul_slice(dst: &mut [u8], c: u8) {
    if c == 1 {
        return;
    }
    if c == 0 {
        dst.fill(0);
        return;
    }
    let row = mul_table_row(c);
    for d in dst.iter_mut() {
        *d = row[*d as usize];
    }
}

/// Multiplies every byte of `src` by `c` and XORs the result into `dst`
/// (`dst[i] ^= c * src[i]`). This is the inner loop of Reed–Solomon encoding/decoding.
pub fn mul_add_slice(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    if c == 0 {
        return;
    }
    if c == 1 {
        for (d, s) in dst.iter_mut().zip(src) {
            *d ^= *s;
        }
        return;
    }
    let row = mul_table_row(c);
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= row[*s as usize];
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_mul_matches_slow_mul_exhaustively() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul_slow(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn known_aes_products() {
        // Classic AES MixColumns constants.
        assert_eq!(mul(0x57, 0x83), 0xc1);
        assert_eq!(mul(0x57, 0x13), 0xfe);
        assert_eq!(mul(2, 0x80), 0x1b);
    }

    #[test]
    fn every_nonzero_element_has_an_inverse() {
        for a in 1..=255u8 {
            let inv = inverse(a).unwrap();
            assert_eq!(mul(a, inv), 1, "a={a}");
        }
        assert!(inverse(0).is_none());
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for base in [0u8, 1, 2, 3, 0x53, 0xFF] {
            let mut acc = 1u8;
            for e in 0..20usize {
                assert_eq!(pow(base, e), if base == 0 && e > 0 { 0 } else { acc });
                acc = mul(acc, base);
            }
        }
    }

    #[test]
    fn mul_table_row_matches_mul_exhaustively() {
        for c in 0..=255u8 {
            let row = mul_table_row(c);
            for s in 0..=255u8 {
                assert_eq!(row[s as usize], mul_slow(c, s), "c={c} s={s}");
            }
        }
    }

    #[test]
    fn mul_add_slice_matches_scalar_loop() {
        let src: Vec<u8> = (0..=255u8).collect();
        for c in [0u8, 1, 2, 7, 0x1d, 0xff] {
            let mut dst = vec![0xAAu8; src.len()];
            let mut expected = dst.clone();
            for (e, s) in expected.iter_mut().zip(&src) {
                *e ^= mul(c, *s);
            }
            mul_add_slice(&mut dst, &src, c);
            assert_eq!(dst, expected, "c={c}");
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = div(1, 0);
    }

    proptest! {
        #[test]
        fn field_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
            prop_assert_eq!(mul(a, b), mul(b, a));
            prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
            prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
            prop_assert_eq!(mul(a, 1), a);
            prop_assert_eq!(add(a, a), 0);
        }

        #[test]
        fn division_inverts_multiplication(a in any::<u8>(), b in 1u8..=255) {
            prop_assert_eq!(div(mul(a, b), b), a);
        }

        /// The bulk kernels agree with the scalar `mul`/`mul_slow` reference byte by
        /// byte on random slices and random coefficients.
        #[test]
        fn bulk_kernels_match_scalar_reference(
            src in proptest::collection::vec(any::<u8>(), 0..512),
            dst_seed in proptest::collection::vec(any::<u8>(), 0..512),
            c in any::<u8>(),
        ) {
            let len = src.len().min(dst_seed.len());
            let src = &src[..len];

            // mul_add_slice: dst[i] ^= c * src[i].
            let mut dst = dst_seed[..len].to_vec();
            let expected: Vec<u8> = dst
                .iter()
                .zip(src)
                .map(|(&d, &s)| d ^ mul_slow(c, s))
                .collect();
            mul_add_slice(&mut dst, src, c);
            prop_assert_eq!(&dst, &expected);

            // mul_slice: dst[i] = c * dst[i].
            let mut in_place = src.to_vec();
            let expected_mul: Vec<u8> = src.iter().map(|&s| mul(c, s)).collect();
            mul_slice(&mut in_place, c);
            prop_assert_eq!(in_place, expected_mul);
        }
    }
}
