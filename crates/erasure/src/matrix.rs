//! Dense matrices over GF(2^8) with the operations required by Reed–Solomon coding:
//! multiplication, sub-matrix extraction, and inversion by Gauss–Jordan elimination.

use crate::gf256;

/// A row-major dense matrix over GF(2^8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0u8; rows * cols],
        }
    }

    /// Creates an identity matrix of the given size.
    pub fn identity(size: usize) -> Self {
        let mut m = Self::zero(size, size);
        for i in 0..size {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates a matrix from a row-major vector of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: Vec<Vec<u8>>) -> Self {
        let row_count = rows.len();
        let col_count = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(row_count * col_count);
        for row in &rows {
            assert_eq!(row.len(), col_count, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: row_count,
            cols: col_count,
            data,
        }
    }

    /// A Vandermonde matrix with `rows` rows and `cols` columns: entry `(r, c)` is
    /// `r^c` in GF(2^8). Any `cols` rows of such a matrix are linearly independent as
    /// long as `rows <= 256`.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        let mut m = Self::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, gf256::pow(r as u8, c));
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    pub fn get(&self, row: usize, col: usize) -> u8 {
        self.data[row * self.cols + col]
    }

    /// Entry mutator.
    pub fn set(&mut self, row: usize, col: usize, value: u8) {
        self.data[row * self.cols + col] = value;
    }

    /// Borrows a whole row.
    pub fn row(&self, row: usize) -> &[u8] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn multiply(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner matrix dimensions must match");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a != 0 {
                    gf256::mul_add_slice(out_row, rhs.row(k), a);
                }
            }
        }
        out
    }

    /// Returns a new matrix consisting of the selected rows, in the given order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zero(indices.len(), self.cols);
        for (new_row, &old_row) in indices.iter().enumerate() {
            for c in 0..self.cols {
                out.set(new_row, c, self.get(old_row, c));
            }
        }
        out
    }

    /// Inverts a square matrix by Gauss–Jordan elimination, or returns `None` if it is
    /// singular.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices can be inverted");
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Find a pivot in this column.
            let pivot_row = (col..n).find(|&r| work.get(r, col) != 0)?;
            if pivot_row != col {
                work.swap_rows(pivot_row, col);
                inv.swap_rows(pivot_row, col);
            }
            // Scale the pivot row so the pivot becomes 1.
            let pivot = work.get(col, col);
            let pivot_inv = gf256::inverse(pivot)?;
            work.scale_row(col, pivot_inv);
            inv.scale_row(col, pivot_inv);
            // Eliminate the column from every other row.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = work.get(r, col);
                if factor != 0 {
                    work.add_scaled_row(r, col, factor);
                    inv.add_scaled_row(r, col, factor);
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let cols = self.cols;
        let (low, high) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(high * cols);
        head[low * cols..(low + 1) * cols].swap_with_slice(&mut tail[..cols]);
    }

    fn scale_row(&mut self, row: usize, factor: u8) {
        let cols = self.cols;
        gf256::mul_slice(&mut self.data[row * cols..(row + 1) * cols], factor);
    }

    /// `row(target) ^= factor * row(source)`.
    fn add_scaled_row(&mut self, target: usize, source: usize, factor: u8) {
        debug_assert_ne!(target, source, "rows must be distinct");
        let cols = self.cols;
        let (low, high) = (target.min(source), target.max(source));
        let (head, tail) = self.data.split_at_mut(high * cols);
        let low_row = &mut head[low * cols..(low + 1) * cols];
        let high_row = &mut tail[..cols];
        if target < source {
            gf256::mul_add_slice(low_row, high_row, factor);
        } else {
            gf256::mul_add_slice(high_row, low_row, factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_multiplication_is_neutral() {
        let m = Matrix::from_rows(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        let id = Matrix::identity(3);
        assert_eq!(m.multiply(&id), m);
        let id2 = Matrix::identity(2);
        assert_eq!(id2.multiply(&m), m);
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let id = Matrix::identity(5);
        assert_eq!(id.inverse().unwrap(), id);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let m = Matrix::from_rows(vec![
            vec![56, 23, 98],
            vec![3, 100, 200],
            vec![45, 201, 123],
        ]);
        let inv = m.inverse().unwrap();
        assert_eq!(m.multiply(&inv), Matrix::identity(3));
        assert_eq!(inv.multiply(&m), Matrix::identity(3));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        // Two equal rows.
        let m = Matrix::from_rows(vec![vec![1, 2], vec![1, 2]]);
        assert!(m.inverse().is_none());
        // A zero row.
        let z = Matrix::from_rows(vec![vec![0, 0], vec![1, 2]]);
        assert!(z.inverse().is_none());
    }

    #[test]
    fn vandermonde_square_submatrices_are_invertible() {
        let vm = Matrix::vandermonde(10, 4);
        // Every contiguous selection of 4 distinct rows must be invertible.
        for start in 0..=6usize {
            let rows: Vec<usize> = (start..start + 4).collect();
            let sub = vm.select_rows(&rows);
            assert!(sub.inverse().is_some(), "rows {rows:?}");
        }
    }

    #[test]
    fn select_rows_preserves_order() {
        let m = Matrix::from_rows(vec![vec![1, 1], vec![2, 2], vec![3, 3]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[3, 3]);
        assert_eq!(s.row(1), &[1, 1]);
    }

    proptest! {
        #[test]
        fn random_vandermonde_row_subsets_are_invertible(
            k in 1usize..8,
            extra in 0usize..8,
            seed in any::<u64>(),
        ) {
            use rand::{seq::SliceRandom, SeedableRng};
            let n = k + extra;
            let vm = Matrix::vandermonde(n, k);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut indices: Vec<usize> = (0..n).collect();
            indices.shuffle(&mut rng);
            let selected = &indices[..k];
            let sub = vm.select_rows(selected);
            prop_assert!(sub.inverse().is_some());
        }
    }
}
