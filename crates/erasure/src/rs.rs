//! Systematic Reed–Solomon encoder/decoder.

use crate::gf256;
use crate::matrix::Matrix;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Errors returned by [`ReedSolomon`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErasureError {
    /// `data_shards` or `total_shards` was zero, or `data_shards > total_shards`, or
    /// `total_shards > 256`.
    InvalidParameters {
        /// Requested number of data shards.
        data_shards: usize,
        /// Requested total number of shards.
        total_shards: usize,
    },
    /// Fewer than `data_shards` shards were supplied to the decoder.
    NotEnoughShards {
        /// Number of shards supplied.
        got: usize,
        /// Number of shards needed.
        need: usize,
    },
    /// A shard index was `>= total_shards` or supplied twice.
    BadShardIndex(usize),
    /// The supplied shards do not all have the same length.
    InconsistentShardLength,
    /// The requested payload length exceeds what the shards can carry.
    PayloadTooLong {
        /// Requested payload length.
        requested: usize,
        /// Maximum length the decoded shards can carry.
        available: usize,
    },
}

impl fmt::Display for ErasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErasureError::InvalidParameters {
                data_shards,
                total_shards,
            } => write!(
                f,
                "invalid erasure-code parameters: data_shards={data_shards}, total_shards={total_shards}"
            ),
            ErasureError::NotEnoughShards { got, need } => {
                write!(f, "not enough shards to decode: got {got}, need {need}")
            }
            ErasureError::BadShardIndex(index) => write!(f, "bad or duplicate shard index {index}"),
            ErasureError::InconsistentShardLength => {
                write!(f, "shards do not all have the same length")
            }
            ErasureError::PayloadTooLong {
                requested,
                available,
            } => write!(
                f,
                "requested payload length {requested} exceeds decoded capacity {available}"
            ),
        }
    }
}

impl std::error::Error for ErasureError {}

/// A systematic `(data_shards, total_shards)` Reed–Solomon code over GF(2^8).
///
/// The first `data_shards` output shards are the original data split into equal pieces;
/// the remaining `total_shards - data_shards` are parity. Any `data_shards` shards
/// reconstruct the input. In Leopard's retrieval mechanism `data_shards = f + 1` and
/// `total_shards = n = 3f + 1`.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data_shards: usize,
    total_shards: usize,
    /// `total_shards x data_shards` encoding matrix whose top square block is the
    /// identity (systematic form).
    encoding: Matrix,
    /// Inverted decode matrices keyed by the surviving-shard index sequence. A replica
    /// recovering many datablocks from the same responder set inverts the matrix once
    /// and reuses it for every shard set. Shared by clones of the code.
    decode_cache: Arc<Mutex<HashMap<Vec<u8>, Arc<Matrix>>>>,
}

/// Entry cap for the decode-matrix cache (memory backstop; index sets repeat heavily).
const DECODE_CACHE_CAP: usize = 1024;

impl ReedSolomon {
    /// Creates a code with the given parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ErasureError::InvalidParameters`] unless
    /// `0 < data_shards <= total_shards <= 256`.
    pub fn new(data_shards: usize, total_shards: usize) -> Result<Self, ErasureError> {
        if data_shards == 0 || total_shards == 0 || data_shards > total_shards || total_shards > 256
        {
            return Err(ErasureError::InvalidParameters {
                data_shards,
                total_shards,
            });
        }
        // Vandermonde matrix, then normalise so the top k x k block is the identity;
        // any k rows of the result remain linearly independent.
        let vandermonde = Matrix::vandermonde(total_shards, data_shards);
        let top: Vec<usize> = (0..data_shards).collect();
        let top_square = vandermonde.select_rows(&top);
        let top_inverse = top_square
            .inverse()
            .expect("Vandermonde top square is always invertible");
        let encoding = vandermonde.multiply(&top_inverse);
        Ok(Self {
            data_shards,
            total_shards,
            encoding,
            decode_cache: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Number of data shards (`f + 1` in the paper).
    pub fn data_shards(&self) -> usize {
        self.data_shards
    }

    /// Total number of shards (`n` in the paper).
    pub fn total_shards(&self) -> usize {
        self.total_shards
    }

    /// Number of parity shards.
    pub fn parity_shards(&self) -> usize {
        self.total_shards - self.data_shards
    }

    /// Shard length needed to carry a payload of `payload_len` bytes.
    pub fn shard_len_for(&self, payload_len: usize) -> usize {
        payload_len.div_ceil(self.data_shards).max(1)
    }

    /// Encodes already-split data shards into the full shard set.
    ///
    /// # Errors
    ///
    /// Returns an error if the number of data shards is wrong or their lengths differ.
    pub fn encode_shards(&self, data: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, ErasureError> {
        if data.len() != self.data_shards {
            return Err(ErasureError::NotEnoughShards {
                got: data.len(),
                need: self.data_shards,
            });
        }
        let shard_len = data[0].len();
        if data.iter().any(|shard| shard.len() != shard_len) {
            return Err(ErasureError::InconsistentShardLength);
        }

        let mut shards: Vec<Vec<u8>> = Vec::with_capacity(self.total_shards);
        shards.extend(data.iter().cloned());
        for row in self.data_shards..self.total_shards {
            let mut parity = vec![0u8; shard_len];
            for (col, data_shard) in data.iter().enumerate() {
                gf256::mul_add_slice(&mut parity, data_shard, self.encoding.get(row, col));
            }
            shards.push(parity);
        }
        Ok(shards)
    }

    /// Splits a payload into data shards (zero-padded) and encodes the full shard set.
    pub fn encode_payload(&self, payload: &[u8]) -> Vec<Vec<u8>> {
        let shard_len = self.shard_len_for(payload.len());
        let mut data = Vec::with_capacity(self.data_shards);
        for i in 0..self.data_shards {
            let start = (i * shard_len).min(payload.len());
            let end = ((i + 1) * shard_len).min(payload.len());
            let mut shard = payload[start..end].to_vec();
            shard.resize(shard_len, 0);
            data.push(shard);
        }
        self.encode_shards(&data)
            .expect("shards constructed with equal lengths")
    }

    /// Reconstructs the `data_shards` original data shards from any `data_shards`
    /// surviving `(index, shard)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if there are not enough shards, indices are out of range or
    /// duplicated, or shard lengths differ.
    pub fn decode_shards(
        &self,
        shards: &[(usize, Vec<u8>)],
    ) -> Result<Vec<Vec<u8>>, ErasureError> {
        if shards.len() < self.data_shards {
            return Err(ErasureError::NotEnoughShards {
                got: shards.len(),
                need: self.data_shards,
            });
        }
        let selected = &shards[..self.data_shards];
        let shard_len = selected[0].1.len();
        let mut seen = vec![false; self.total_shards];
        for (index, shard) in selected {
            if *index >= self.total_shards || seen[*index] {
                return Err(ErasureError::BadShardIndex(*index));
            }
            seen[*index] = true;
            if shard.len() != shard_len {
                return Err(ErasureError::InconsistentShardLength);
            }
        }

        let decode_matrix = self.decode_matrix_for(selected);

        let mut originals = Vec::with_capacity(self.data_shards);
        for row in 0..self.data_shards {
            let mut out = vec![0u8; shard_len];
            for (col, (_, shard)) in selected.iter().enumerate() {
                gf256::mul_add_slice(&mut out, shard, decode_matrix.get(row, col));
            }
            originals.push(out);
        }
        Ok(originals)
    }

    /// The inverted decode matrix for the given (validated, distinct, in-range)
    /// surviving shards, reusing a cached inverse when the same index set decoded
    /// before.
    fn decode_matrix_for(&self, selected: &[(usize, Vec<u8>)]) -> Arc<Matrix> {
        let key: Vec<u8> = selected.iter().map(|(i, _)| *i as u8).collect();
        if let Some(cached) = self.decode_cache.lock().expect("decode cache poisoned").get(&key) {
            return Arc::clone(cached);
        }
        let indices: Vec<usize> = selected.iter().map(|(i, _)| *i).collect();
        let sub = self.encoding.select_rows(&indices);
        let decode_matrix = Arc::new(
            sub.inverse()
                .expect("any data_shards rows of the encoding matrix are independent"),
        );
        let mut cache = self.decode_cache.lock().expect("decode cache poisoned");
        if cache.len() >= DECODE_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Arc::clone(&decode_matrix));
        decode_matrix
    }

    /// Reconstructs a payload of `payload_len` bytes from any `data_shards` surviving
    /// `(index, shard)` pairs.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::decode_shards`] errors and additionally checks that
    /// `payload_len` fits in the decoded shards.
    pub fn decode_payload(
        &self,
        shards: &[(usize, Vec<u8>)],
        payload_len: usize,
    ) -> Result<Vec<u8>, ErasureError> {
        let data = self.decode_shards(shards)?;
        let available = data.iter().map(|s| s.len()).sum();
        if payload_len > available {
            return Err(ErasureError::PayloadTooLong {
                requested: payload_len,
                available,
            });
        }
        let mut payload = Vec::with_capacity(payload_len);
        for shard in &data {
            if payload.len() >= payload_len {
                break;
            }
            let take = (payload_len - payload.len()).min(shard.len());
            payload.extend_from_slice(&shard[..take]);
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{seq::SliceRandom, Rng, SeedableRng};

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(ReedSolomon::new(0, 4).is_err());
        assert!(ReedSolomon::new(4, 0).is_err());
        assert!(ReedSolomon::new(5, 4).is_err());
        assert!(ReedSolomon::new(4, 300).is_err());
        assert!(ReedSolomon::new(4, 4).is_ok());
    }

    #[test]
    fn systematic_prefix_is_the_original_data() {
        let rs = ReedSolomon::new(3, 7).unwrap();
        let payload: Vec<u8> = (0..30).collect();
        let shards = rs.encode_payload(&payload);
        assert_eq!(shards.len(), 7);
        let shard_len = rs.shard_len_for(payload.len());
        for (i, shard) in shards.iter().take(3).enumerate() {
            let start = i * shard_len;
            let end = ((i + 1) * shard_len).min(payload.len());
            assert_eq!(&shard[..end - start], &payload[start..end]);
        }
    }

    #[test]
    fn decode_from_data_shards_only() {
        let rs = ReedSolomon::new(4, 10).unwrap();
        let payload = b"datablock with two thousand requests".to_vec();
        let shards = rs.encode_payload(&payload);
        let surviving: Vec<(usize, Vec<u8>)> =
            (0..4).map(|i| (i, shards[i].clone())).collect();
        assert_eq!(rs.decode_payload(&surviving, payload.len()).unwrap(), payload);
    }

    #[test]
    fn decode_from_parity_shards_only() {
        let rs = ReedSolomon::new(3, 9).unwrap();
        let payload = b"parity only reconstruction".to_vec();
        let shards = rs.encode_payload(&payload);
        let surviving: Vec<(usize, Vec<u8>)> =
            (6..9).map(|i| (i, shards[i].clone())).collect();
        assert_eq!(rs.decode_payload(&surviving, payload.len()).unwrap(), payload);
    }

    #[test]
    fn leopard_parameters_f_plus_1_of_n() {
        // (f+1, 3f+1) for a range of f values, as used by the retrieval mechanism.
        for f in 1..=10usize {
            let rs = ReedSolomon::new(f + 1, 3 * f + 1).unwrap();
            let payload: Vec<u8> = (0..(128 * (f + 3))).map(|i| (i % 251) as u8).collect();
            let shards = rs.encode_payload(&payload);
            let surviving: Vec<(usize, Vec<u8>)> = shards
                .iter()
                .enumerate()
                .skip(f) // drop the first f shards
                .take(f + 1)
                .map(|(i, s)| (i, s.clone()))
                .collect();
            assert_eq!(
                rs.decode_payload(&surviving, payload.len()).unwrap(),
                payload,
                "f={f}"
            );
        }
    }

    #[test]
    fn not_enough_shards_is_reported() {
        let rs = ReedSolomon::new(3, 7).unwrap();
        let shards = rs.encode_payload(b"hello world");
        let surviving = vec![(0usize, shards[0].clone()), (1, shards[1].clone())];
        assert_eq!(
            rs.decode_payload(&surviving, 11),
            Err(ErasureError::NotEnoughShards { got: 2, need: 3 })
        );
    }

    #[test]
    fn duplicate_and_out_of_range_indices_are_reported() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let shards = rs.encode_payload(b"abcd");
        let dup = vec![(1usize, shards[1].clone()), (1, shards[1].clone())];
        assert_eq!(rs.decode_shards(&dup), Err(ErasureError::BadShardIndex(1)));
        let oob = vec![(0usize, shards[0].clone()), (9, shards[1].clone())];
        assert_eq!(rs.decode_shards(&oob), Err(ErasureError::BadShardIndex(9)));
    }

    #[test]
    fn inconsistent_lengths_are_reported() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let shards = rs.encode_payload(b"abcdef");
        let bad = vec![(0usize, shards[0].clone()), (1, vec![1, 2, 3, 4, 5, 6, 7])];
        assert_eq!(
            rs.decode_shards(&bad),
            Err(ErasureError::InconsistentShardLength)
        );
    }

    #[test]
    fn payload_too_long_is_reported() {
        let rs = ReedSolomon::new(2, 4).unwrap();
        let shards = rs.encode_payload(b"abcd");
        let surviving: Vec<(usize, Vec<u8>)> = vec![(0, shards[0].clone()), (1, shards[1].clone())];
        assert!(matches!(
            rs.decode_payload(&surviving, 1000),
            Err(ErasureError::PayloadTooLong { .. })
        ));
    }

    #[test]
    fn empty_payload_roundtrips() {
        let rs = ReedSolomon::new(3, 7).unwrap();
        let shards = rs.encode_payload(b"");
        let surviving: Vec<(usize, Vec<u8>)> =
            (2..5).map(|i| (i, shards[i].clone())).collect();
        assert_eq!(rs.decode_payload(&surviving, 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corrupted_shard_produces_wrong_payload_but_no_panic() {
        let rs = ReedSolomon::new(3, 7).unwrap();
        let payload = b"integrity is checked by merkle proofs, not the code".to_vec();
        let mut shards = rs.encode_payload(&payload);
        shards[4][0] ^= 0xff;
        let surviving: Vec<(usize, Vec<u8>)> =
            vec![(4, shards[4].clone()), (5, shards[5].clone()), (6, shards[6].clone())];
        let decoded = rs.decode_payload(&surviving, payload.len()).unwrap();
        assert_ne!(decoded, payload);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn any_quorum_of_shards_reconstructs_any_payload(
            f in 1usize..12,
            payload in proptest::collection::vec(any::<u8>(), 1..2048),
            seed in any::<u64>(),
        ) {
            let data_shards = f + 1;
            let total = 3 * f + 1;
            let rs = ReedSolomon::new(data_shards, total).unwrap();
            let shards = rs.encode_payload(&payload);

            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut indices: Vec<usize> = (0..total).collect();
            indices.shuffle(&mut rng);
            let surviving: Vec<(usize, Vec<u8>)> = indices[..data_shards]
                .iter()
                .map(|&i| (i, shards[i].clone()))
                .collect();
            prop_assert_eq!(rs.decode_payload(&surviving, payload.len()).unwrap(), payload);
        }

        #[test]
        fn shard_sizes_are_balanced(
            data_shards in 1usize..20,
            extra in 0usize..20,
            payload_len in 0usize..4096,
        ) {
            let rs = ReedSolomon::new(data_shards, data_shards + extra).unwrap();
            let payload: Vec<u8> = (0..payload_len).map(|i| (i % 256) as u8).collect();
            let shards = rs.encode_payload(&payload);
            let shard_len = rs.shard_len_for(payload_len);
            prop_assert!(shards.iter().all(|s| s.len() == shard_len));
            // No shard is more than one "row" longer than strictly necessary.
            prop_assert!(shard_len * data_shards >= payload_len);
            prop_assert!(shard_len.saturating_sub(1) * data_shards <= payload_len.max(1));
        }
    }

    #[test]
    fn random_erasure_patterns_large_n() {
        // A heavier deterministic test closer to the paper's n=128 retrieval experiment.
        let f = 42;
        let rs = ReedSolomon::new(f + 1, 3 * f + 1).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let payload: Vec<u8> = (0..256_000).map(|_| rng.gen()).collect();
        let shards = rs.encode_payload(&payload);
        let mut indices: Vec<usize> = (0..rs.total_shards()).collect();
        indices.shuffle(&mut rng);
        let surviving: Vec<(usize, Vec<u8>)> = indices[..rs.data_shards()]
            .iter()
            .map(|&i| (i, shards[i].clone()))
            .collect();
        assert_eq!(rs.decode_payload(&surviving, payload.len()).unwrap(), payload);
    }
}
