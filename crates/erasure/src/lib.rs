//! Reed–Solomon erasure coding over GF(2^8).
//!
//! The Leopard retrieval mechanism (paper, Algorithm 3) encodes a missing datablock with
//! an `(f+1, n)` erasure code: the datablock is split into `f+1` data shards, extended to
//! `n` coded shards, and any `f+1` valid shards reconstruct the datablock. This crate
//! provides that code from scratch:
//!
//! * [`gf256`] — arithmetic in GF(2^8) with the AES polynomial `x^8+x^4+x^3+x+1`,
//!   log/antilog tables built at runtime;
//! * [`matrix`] — dense matrices over GF(2^8) with Gaussian-elimination inversion;
//! * [`ReedSolomon`] — a systematic encoder (Vandermonde-derived encoding matrix) and a
//!   decoder that recovers the original data shards from any `data_shards` surviving
//!   shards.
//!
//! ```
//! use leopard_erasure::ReedSolomon;
//!
//! let rs = ReedSolomon::new(3, 7).unwrap();              // (f+1, n) = (3, 7)
//! let payload = b"the quick brown fox jumps over the lazy dog".to_vec();
//! let shards = rs.encode_payload(&payload);
//! // Drop all but 3 arbitrary shards and reconstruct.
//! let surviving: Vec<(usize, Vec<u8>)> = vec![
//!     (1, shards[1].clone()),
//!     (4, shards[4].clone()),
//!     (6, shards[6].clone()),
//! ];
//! let recovered = rs.decode_payload(&surviving, payload.len()).unwrap();
//! assert_eq!(recovered, payload);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf256;
pub mod matrix;
mod rs;

pub use rs::{ErasureError, ReedSolomon};
