//! A chained, pipelined HotStuff baseline — the comparison system of the paper's
//! evaluation (§VI), re-implemented over the same simulator and crypto substrate as
//! Leopard so the comparison is apples-to-apples.
//!
//! The implementation follows the structure of the basic chained HotStuff protocol
//! (Yin et al., 2019) with the stable-leader configuration used by `libhotstuff`:
//!
//! * the leader batches client requests into blocks and multicasts the **full payload**
//!   to every replica (this is exactly the `Λ · payload · (n−1)` leader cost that
//!   Leopard removes);
//! * replicas send threshold-signature votes to the leader; `2f+1` votes form a quorum
//!   certificate (QC);
//! * proposals are pipelined: each new block carries the QC of its parent, so each block
//!   needs only one voting round;
//! * a block is committed through the three-chain rule (a block is committed once it has
//!   three consecutive certified descendants ending in the newest QC);
//! * a round-robin pacemaker rotates the leader when progress stalls.
//!
//! The replica ([`HotStuffReplica`]) is a sans-IO [`leopard_simnet::Protocol`], exactly
//! like [`leopard-core`'s replica](https://docs.rs/leopard-core).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod config;
pub mod messages;
pub mod replica;

pub use block::{HotStuffBlock, QuorumCertificate};
pub use config::HotStuffConfig;
pub use messages::HotStuffMessage;
pub use replica::HotStuffReplica;
