//! HotStuff protocol messages.

use crate::block::{HotStuffBlock, QuorumCertificate};
use leopard_crypto::threshold::SignatureShare;
use leopard_crypto::Digest;
use leopard_simnet::SimMessage;
use leopard_types::{View, WireSize};
use std::sync::Arc;

/// Messages exchanged by HotStuff replicas.
#[derive(Debug, Clone)]
pub enum HotStuffMessage {
    /// The leader's proposal: a block carrying the full request batch plus the QC of its
    /// parent (pipelined voting).
    Proposal {
        /// The proposed block.
        block: Arc<HotStuffBlock>,
        /// QC certifying the parent block.
        justify: QuorumCertificate,
        /// The leader's own vote share on the block.
        share: SignatureShare,
    },
    /// A replica's vote on a proposal, sent to the leader.
    Vote {
        /// Height of the voted block.
        height: u64,
        /// Digest of the voted block.
        block_digest: Digest,
        /// The voter's signature share.
        share: SignatureShare,
    },
    /// Pacemaker: a replica's complaint that the current view makes no progress,
    /// carrying its highest QC for the next leader.
    NewView {
        /// The view being abandoned.
        view: View,
        /// The sender's highest QC.
        high_qc: QuorumCertificate,
        /// The sender's signature share on the complaint.
        share: SignatureShare,
    },
}

impl WireSize for HotStuffMessage {
    fn wire_size(&self) -> usize {
        match self {
            HotStuffMessage::Proposal { block, justify, .. } => {
                block.wire_size() + justify.wire_size() + 48
            }
            HotStuffMessage::Vote { .. } => 8 + 32 + 48,
            HotStuffMessage::NewView { high_qc, .. } => 8 + high_qc.wire_size() + 48,
        }
    }
}

impl SimMessage for HotStuffMessage {
    fn category(&self) -> &'static str {
        match self {
            HotStuffMessage::Proposal { .. } => "block",
            HotStuffMessage::Vote { .. } => "vote",
            HotStuffMessage::NewView { .. } => "newview",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_crypto::hash_bytes;
    use leopard_crypto::threshold::ThresholdScheme;
    use leopard_types::{ClientId, Request};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn categories_and_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let (scheme, keys) = ThresholdScheme::trusted_setup(3, 4, &mut rng);
        let digest = hash_bytes(b"x");
        let share = scheme.sign_share(&keys[0], &digest);

        let block = Arc::new(HotStuffBlock::new(
            1,
            View(1),
            Digest::zero(),
            (0..100)
                .map(|i| Request::new_synthetic(ClientId(0), i, 128))
                .collect(),
        ));
        let proposal = HotStuffMessage::Proposal {
            block: block.clone(),
            justify: QuorumCertificate::genesis(),
            share,
        };
        let vote = HotStuffMessage::Vote {
            height: 1,
            block_digest: digest,
            share,
        };
        let newview = HotStuffMessage::NewView {
            view: View(1),
            high_qc: QuorumCertificate::genesis(),
            share,
        };
        assert_eq!(proposal.category(), "block");
        assert_eq!(vote.category(), "vote");
        assert_eq!(newview.category(), "newview");
        // The proposal dominates: it carries the whole batch.
        assert!(proposal.wire_size() > 100 * 128);
        assert!(vote.wire_size() < 128);
        assert!(newview.wire_size() < 256);
    }
}
