//! The HotStuff replica state machine.

use crate::block::{HotStuffBlock, QuorumCertificate};
use crate::config::{HotStuffConfig, HotStuffKeys};
use crate::messages::HotStuffMessage;
use leopard_crypto::provider::{BatchOutcome, ComputeCost};
use leopard_crypto::threshold::SignatureShare;
use leopard_crypto::Digest;
use leopard_simnet::{Context, ObservationKind, ProgressProbe, Protocol, SimDuration, SimTime};
use leopard_types::{ClientId, FastMap, FastSet, NodeId, Request, RequestId, View, WireSize};
use std::collections::VecDeque;
use std::sync::Arc;

const TOKEN_WORKLOAD: u64 = 1;
const TOKEN_PROPOSE: u64 = 2;
const TOKEN_PROGRESS: u64 = 3;

const WORKLOAD_TICK: SimDuration = SimDuration(10_000_000); // 10 ms

type Ctx<'a> = dyn Context<Message = HotStuffMessage> + 'a;

/// Charges a modeled crypto cost to the replica's compute queue.
fn charge(ctx: &mut Ctx<'_>, cost: ComputeCost) {
    if !cost.is_zero() {
        ctx.charge_compute(SimDuration::from_nanos(cost.as_nanos()));
    }
}

/// Vote collection state for one proposed block (leader side).
#[derive(Debug, Default)]
struct VoteSet {
    shares: Vec<SignatureShare>,
    voters: FastSet<usize>,
}

/// A chained-HotStuff replica.
pub struct HotStuffReplica {
    id: NodeId,
    config: HotStuffConfig,
    keys: Arc<HotStuffKeys>,

    view: View,
    /// Client stub (requests are submitted to the leader in HotStuff).
    mempool: VecDeque<Request>,
    outstanding: FastMap<RequestId, SimTime>,
    next_request_seq: u64,
    injection_carry: f64,

    /// All blocks seen, by digest.
    blocks: FastMap<Digest, Arc<HotStuffBlock>>,
    /// QCs by certified block digest.
    certificates: FastMap<Digest, QuorumCertificate>,
    /// The highest QC known.
    high_qc: QuorumCertificate,
    /// Leader: collected votes per block digest.
    votes: FastMap<Digest, VoteSet>,
    /// Leader: digest of the proposal still waiting for its QC.
    awaiting_qc: Option<Digest>,
    /// When `awaiting_qc` was last set (progress-probe bookkeeping).
    awaiting_qc_since: Option<SimTime>,
    /// The highest height this replica voted for.
    last_voted_height: u64,
    /// Height of the latest committed block.
    committed_height: u64,
    /// Blocks already executed.
    executed: FastSet<Digest>,
    /// Total requests confirmed by this replica.
    confirmed_requests: u64,
    confirmed_at_last_check: u64,
    /// When this replica last executed a block (progress-probe bookkeeping).
    last_confirmation_at: Option<SimTime>,
}

impl std::fmt::Debug for HotStuffReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotStuffReplica")
            .field("id", &self.id)
            .field("view", &self.view)
            .field("committed_height", &self.committed_height)
            .field("confirmed_requests", &self.confirmed_requests)
            .finish()
    }
}

impl HotStuffReplica {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(id: NodeId, config: HotStuffConfig, keys: Arc<HotStuffKeys>) -> Self {
        config
            .validate()
            .unwrap_or_else(|message| panic!("invalid HotStuff config: {message}"));
        Self {
            id,
            view: View::initial(),
            mempool: VecDeque::new(),
            outstanding: FastMap::default(),
            next_request_seq: 0,
            injection_carry: 0.0,
            blocks: FastMap::default(),
            certificates: FastMap::default(),
            high_qc: QuorumCertificate::genesis(),
            votes: FastMap::default(),
            awaiting_qc: None,
            awaiting_qc_since: None,
            last_voted_height: 0,
            committed_height: 0,
            executed: FastSet::default(),
            confirmed_requests: 0,
            confirmed_at_last_check: 0,
            last_confirmation_at: None,
            config,
            keys,
        }
    }

    /// This replica's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// The current leader.
    pub fn leader(&self) -> NodeId {
        self.view.leader(self.config.n)
    }

    /// True if this replica currently leads.
    pub fn is_leader(&self) -> bool {
        self.leader() == self.id
    }

    /// Height of the latest committed block.
    pub fn committed_height(&self) -> u64 {
        self.committed_height
    }

    /// Total requests confirmed (committed and executed) by this replica.
    pub fn confirmed_requests(&self) -> u64 {
        self.confirmed_requests
    }

    fn keypair(&self) -> &leopard_crypto::threshold::ThresholdKeyPair {
        &self.keys.keypairs[self.id.as_index()]
    }

    /// Signs `digest` with this replica's key share, charging the modeled cost.
    fn sign(&self, digest: &Digest, ctx: &mut Ctx<'_>) -> SignatureShare {
        let (share, cost) = self.keys.provider.sign_share(self.keypair(), digest);
        charge(ctx, cost);
        share
    }

    // ------------------------------------------------------------------
    // Client stub (clients submit to the leader)
    // ------------------------------------------------------------------

    fn inject_workload(&mut self, ctx: &mut Ctx<'_>) {
        if !self.is_leader() || self.config.aggregate_rps == 0 {
            return;
        }
        let per_tick =
            self.config.aggregate_rps as f64 * WORKLOAD_TICK.as_secs_f64() + self.injection_carry;
        let whole = per_tick.floor() as usize;
        self.injection_carry = per_tick - whole as f64;
        for _ in 0..whole {
            let request = Request::new_synthetic(
                ClientId(self.id.0),
                self.next_request_seq,
                self.config.payload_size as u32,
            );
            self.next_request_seq += 1;
            self.outstanding.insert(request.id, ctx.now());
            self.mempool.push_back(request);
        }
    }

    fn take_batch(&mut self, now: SimTime) -> Vec<Request> {
        if self.config.aggregate_rps == 0 {
            // Saturated mode: a full batch is always available.
            let batch: Vec<Request> = (0..self.config.batch_size)
                .map(|_| {
                    let request = Request::new_synthetic(
                        ClientId(self.id.0),
                        self.next_request_seq,
                        self.config.payload_size as u32,
                    );
                    self.next_request_seq += 1;
                    self.outstanding.insert(request.id, now);
                    request
                })
                .collect();
            return batch;
        }
        let take = self.config.batch_size.min(self.mempool.len());
        self.mempool.drain(..take).collect()
    }

    // ------------------------------------------------------------------
    // Proposing and voting
    // ------------------------------------------------------------------

    fn try_propose(&mut self, ctx: &mut Ctx<'_>) {
        if !self.is_leader() || self.awaiting_qc.is_some() {
            return;
        }
        let pipeline_pending = self.high_qc.height > self.committed_height;
        let batch = self.take_batch(ctx.now());
        if batch.is_empty() && !pipeline_pending {
            return;
        }
        let height = self.high_qc.height + 1;
        let block = Arc::new(HotStuffBlock::new(
            height,
            self.view,
            self.high_qc.block_digest,
            batch,
        ));
        let digest = block.digest();
        // The proposal hashes the full request batch (HotStuff blocks carry payload).
        charge(ctx, self.keys.provider.model().hash(block.wire_size()));
        self.blocks.insert(digest, block.clone());
        self.awaiting_qc = Some(digest);
        self.awaiting_qc_since = Some(ctx.now());
        let share = self.sign(&digest, ctx);
        // The leader's own vote.
        self.votes.entry(digest).or_default();
        // Broadcast includes the local self-delivery without cloning the envelope
        // (same audit as the Leopard proposer's double-envelope fix).
        ctx.broadcast(HotStuffMessage::Proposal {
            block,
            justify: self.high_qc,
            share,
        });
    }

    fn handle_proposal(
        &mut self,
        from: NodeId,
        block: Arc<HotStuffBlock>,
        justify: QuorumCertificate,
        share: SignatureShare,
        ctx: &mut Ctx<'_>,
    ) {
        if from != self.leader() {
            return;
        }
        let digest = block.digest();
        charge(ctx, self.keys.provider.model().hash(block.wire_size()));
        let (share_ok, cost) = self.keys.provider.verify_share(&share, &digest);
        charge(ctx, cost);
        if share.signer != from.signer_index() || !share_ok {
            return;
        }
        // Verify and adopt the carried QC (this is what makes the protocol pipelined).
        if !justify.is_genesis() {
            let Some(proof) = justify.proof else { return };
            let (qc_ok, cost) = self.keys.provider.verify_combined(&proof, &justify.block_digest);
            charge(ctx, cost);
            if !qc_ok {
                return;
            }
            self.certificates.insert(justify.block_digest, justify);
            if justify.height > self.high_qc.height {
                self.high_qc = justify;
            }
        }
        self.blocks.insert(digest, block.clone());
        self.try_commit(&justify, ctx);

        // Vote once per height, only on blocks extending the highest QC.
        if block.height <= self.last_voted_height || block.height != self.high_qc.height + 1 {
            return;
        }
        self.last_voted_height = block.height;
        let vote_share = self.sign(&digest, ctx);
        ctx.send(
            self.leader(),
            HotStuffMessage::Vote {
                height: block.height,
                block_digest: digest,
                share: vote_share,
            },
        );
    }

    fn handle_vote(
        &mut self,
        from: NodeId,
        height: u64,
        block_digest: Digest,
        share: SignatureShare,
        ctx: &mut Ctx<'_>,
    ) {
        if !self.is_leader() {
            return;
        }
        // Signer identity per vote; share values verified in one batch at quorum
        // (randomized linear combination — same amortisation as the Leopard leader).
        if share.signer != from.signer_index() {
            return;
        }
        if self.certificates.contains_key(&block_digest) {
            return;
        }
        let quorum = self.config.quorum();
        let votes = self.votes.entry(block_digest).or_default();
        if !votes.voters.insert(share.signer) {
            return;
        }
        votes.shares.push(share);
        if votes.shares.len() < quorum {
            return;
        }
        let (outcome, cost) = self
            .keys
            .provider
            .verify_shares_batch(&votes.shares, &block_digest);
        charge(ctx, cost);
        if let BatchOutcome::Invalid(bad) = outcome {
            votes.shares.retain(|s| !bad.contains(&s.signer));
            return;
        }
        let (combined, cost) = self
            .keys
            .provider
            .combine_preverified(&votes.shares, &block_digest);
        charge(ctx, cost);
        let Ok(proof) = combined else {
            return;
        };
        let qc = QuorumCertificate {
            height,
            block_digest,
            proof: Some(proof),
        };
        self.certificates.insert(block_digest, qc);
        if qc.height > self.high_qc.height {
            self.high_qc = qc;
        }
        if self.awaiting_qc == Some(block_digest) {
            self.awaiting_qc = None;
        }
        self.try_commit(&qc, ctx);
        // Pipelining: the next proposal carries this QC immediately.
        self.try_propose(ctx);
    }

    // ------------------------------------------------------------------
    // Commit rule and execution
    // ------------------------------------------------------------------

    /// The three-chain commit rule: when a QC certifies block `b1`, and `b1 → b2 → b3`
    /// is a chain of parent links with consecutive heights where `b2` is also certified,
    /// then `b3` (and all its ancestors) become committed.
    fn try_commit(&mut self, qc: &QuorumCertificate, ctx: &mut Ctx<'_>) {
        if qc.is_genesis() {
            return;
        }
        let Some(b1) = self.blocks.get(&qc.block_digest).cloned() else {
            return;
        };
        let Some(b2) = self.blocks.get(&b1.parent).cloned() else {
            return;
        };
        if !self.certificates.contains_key(&b1.parent) || b2.height + 1 != b1.height {
            return;
        }
        let Some(b3) = self.blocks.get(&b2.parent).cloned() else {
            return;
        };
        if b3.height + 1 != b2.height {
            return;
        }
        if b3.height <= self.committed_height {
            return;
        }
        // Commit b3 and all its uncommitted ancestors, oldest first.
        let mut chain = Vec::new();
        let mut cursor = Some(b3.clone());
        while let Some(block) = cursor {
            if block.height <= self.committed_height || self.executed.contains(&block.digest()) {
                break;
            }
            cursor = self.blocks.get(&block.parent).cloned();
            chain.push(block);
        }
        self.committed_height = b3.height;
        for block in chain.into_iter().rev() {
            self.execute(&block, ctx);
        }
    }

    fn execute(&mut self, block: &Arc<HotStuffBlock>, ctx: &mut Ctx<'_>) {
        if !self.executed.insert(block.digest()) {
            return;
        }
        let count = block.len() as u64;
        let bytes = block.payload_bytes() as u64;
        self.confirmed_requests += count;
        self.last_confirmation_at = Some(ctx.now());
        if count > 0 {
            ctx.observe(ObservationKind::RequestsConfirmed {
                count,
                payload_bytes: bytes,
            });
        }
        ctx.observe(ObservationKind::BlockCommitted {
            sequence: block.height,
            requests: count,
        });
        // Client-side latency: the leader's stub submitted these requests.
        for request in &block.requests {
            if let Some(submitted) = self.outstanding.remove(&request.id) {
                ctx.observe(ObservationKind::RequestLatency {
                    nanos: ctx.now().saturating_since(submitted).as_nanos(),
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Pacemaker
    // ------------------------------------------------------------------

    fn fire_progress_timer(&mut self, ctx: &mut Ctx<'_>) {
        // Clients keep submitting requests (to whoever leads), so a replica that has
        // never committed anything treats the view as stalled even before it received
        // any request of its own.
        let outstanding = !self.outstanding.is_empty()
            || !self.mempool.is_empty()
            || self.high_qc.height > self.committed_height
            || self.committed_height == 0;
        let progressed = self.confirmed_requests > self.confirmed_at_last_check;
        self.confirmed_at_last_check = self.confirmed_requests;
        if progressed || !outstanding {
            return;
        }
        // Abandon the view: rotate the leader and hand it our highest QC.
        let old_view = self.view;
        self.view = self.view.next();
        self.awaiting_qc = None;
        ctx.observe(ObservationKind::ViewChange { view: self.view.0 });
        let share = self.sign(&self.high_qc.block_digest, ctx);
        ctx.send(
            self.leader(),
            HotStuffMessage::NewView {
                view: old_view,
                high_qc: self.high_qc,
                share,
            },
        );
    }

    fn handle_new_view(&mut self, high_qc: QuorumCertificate, ctx: &mut Ctx<'_>) {
        if high_qc.is_genesis() {
            return;
        }
        let Some(proof) = high_qc.proof else { return };
        let (ok, cost) = self.keys.provider.verify_combined(&proof, &high_qc.block_digest);
        charge(ctx, cost);
        if !ok {
            return;
        }
        self.certificates.insert(high_qc.block_digest, high_qc);
        if high_qc.height > self.high_qc.height {
            self.high_qc = high_qc;
        }
    }
}

impl Protocol for HotStuffReplica {
    type Message = HotStuffMessage;

    fn on_start(&mut self, ctx: &mut dyn Context<Message = HotStuffMessage>) {
        ctx.set_timer(WORKLOAD_TICK, TOKEN_WORKLOAD);
        ctx.set_timer(self.config.propose_interval, TOKEN_PROPOSE);
        ctx.set_timer(self.config.progress_timeout, TOKEN_PROGRESS);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        message: HotStuffMessage,
        ctx: &mut dyn Context<Message = HotStuffMessage>,
    ) {
        match message {
            HotStuffMessage::Proposal {
                block,
                justify,
                share,
            } => self.handle_proposal(from, block, justify, share, ctx),
            HotStuffMessage::Vote {
                height,
                block_digest,
                share,
            } => self.handle_vote(from, height, block_digest, share, ctx),
            HotStuffMessage::NewView { high_qc, .. } => self.handle_new_view(high_qc, ctx),
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut dyn Context<Message = HotStuffMessage>) {
        match token {
            TOKEN_WORKLOAD => {
                self.inject_workload(ctx);
                ctx.set_timer(WORKLOAD_TICK, TOKEN_WORKLOAD);
            }
            TOKEN_PROPOSE => {
                self.try_propose(ctx);
                ctx.set_timer(self.config.propose_interval, TOKEN_PROPOSE);
            }
            TOKEN_PROGRESS => {
                self.fire_progress_timer(ctx);
                ctx.set_timer(self.config.progress_timeout, TOKEN_PROGRESS);
            }
            _ => {}
        }
    }

    fn progress_probe(&self, now: SimTime) -> Option<ProgressProbe> {
        let making_progress = self
            .last_confirmation_at
            .map(|at| now.saturating_since(at) < self.config.progress_timeout)
            .unwrap_or(false);
        let stall = if making_progress {
            "None"
        } else if self.is_leader() && self.awaiting_qc.is_some() {
            "AwaitingVotes"
        } else {
            "AwaitingProposal"
        };
        let stalled_since = match stall {
            "None" => None,
            // The vote wait began when the open proposal was made.
            "AwaitingVotes" => self.awaiting_qc_since,
            // Otherwise progress stopped with the last confirmation (start of run if
            // nothing ever confirmed).
            _ => Some(self.last_confirmation_at.unwrap_or(SimTime(0))),
        };
        Some(ProgressProbe {
            last_confirmation_at: self.last_confirmation_at,
            stall,
            stalled_since,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_simnet::{FaultPlan, NetworkConfig, SimTime, Simulation};

    fn run(n: usize, config: HotStuffConfig, faults: FaultPlan, secs: u64) -> leopard_simnet::SimulationReport {
        let keys = config.shared_keys(11);
        let sim = Simulation::new(NetworkConfig::datacenter(n), faults, move |id| {
            HotStuffReplica::new(id, config.clone(), keys.clone())
        });
        sim.run_to_report(SimTime(SimDuration::from_secs(secs).as_nanos()), 10_000_000)
    }

    #[test]
    fn four_replicas_commit_requests() {
        let report = run(4, HotStuffConfig::small_test(4), FaultPlan::none(), 2);
        assert!(report.metrics.max_confirmed_requests(4) > 100);
        for node in 0..4u32 {
            assert!(report.metrics.confirmed_requests_at(NodeId(node)) > 0);
        }
        assert!(!report.metrics.latency_samples().is_empty());
    }

    #[test]
    fn seven_replicas_commit_requests() {
        let report = run(7, HotStuffConfig::small_test(7), FaultPlan::none(), 2);
        assert!(report.metrics.max_confirmed_requests(7) > 100);
    }

    #[test]
    fn saturated_mode_commits_full_batches() {
        let config = HotStuffConfig::small_test(4).with_rate(0).with_batch_size(32);
        let report = run(4, config, FaultPlan::none(), 2);
        assert!(report.metrics.max_confirmed_requests(4) >= 32);
    }

    #[test]
    fn leader_crash_triggers_pacemaker_view_change() {
        let faults = FaultPlan::none().with_crash(NodeId(1), SimTime(0));
        let report = run(4, HotStuffConfig::small_test(4), faults, 5);
        let saw_view_change = report
            .metrics
            .observations
            .iter()
            .any(|o| matches!(o.kind, ObservationKind::ViewChange { .. }));
        assert!(saw_view_change, "pacemaker never rotated the leader");
    }

    #[test]
    fn leader_uplink_dominates_traffic() {
        // The structural property the paper's Fig. 2 measures: the leader ships the
        // payload to everyone, so its sent bytes dwarf any other replica's.
        let report = run(4, HotStuffConfig::small_test(4), FaultPlan::none(), 2);
        let leader_sent = report.metrics.traffic.sent_bytes(NodeId(1));
        for node in [0u32, 2, 3] {
            let other_sent = report.metrics.traffic.sent_bytes(NodeId(node));
            assert!(
                leader_sent > 3 * other_sent,
                "leader {leader_sent} vs replica {node} {other_sent}"
            );
        }
    }
}
