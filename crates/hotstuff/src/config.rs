//! HotStuff baseline configuration.

use leopard_crypto::provider::{CryptoMode, CryptoProvider};
use leopard_crypto::threshold::{ThresholdKeyPair, ThresholdScheme};
use leopard_simnet::SimDuration;
use leopard_types::CostModelKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Configuration of one HotStuff replica.
#[derive(Debug, Clone)]
pub struct HotStuffConfig {
    /// Number of replicas `n = 3f + 1`.
    pub n: usize,
    /// Request payload size in bytes.
    pub payload_size: usize,
    /// Number of requests batched into one block.
    pub batch_size: usize,
    /// Offered client load in requests per second (clients submit to the leader); `0`
    /// means the leader's mempool is saturated.
    pub aggregate_rps: u64,
    /// Leader proposal pacing.
    pub propose_interval: SimDuration,
    /// Pacemaker timeout: the view is abandoned if no block commits for this long while
    /// requests are outstanding.
    pub progress_timeout: SimDuration,
    /// Whether crypto executes its field work for real or skips it while charging
    /// identical modeled time.
    pub crypto_mode: CryptoMode,
    /// Which per-operation compute-cost calibration the replicas charge.
    pub cost_model: CostModelKind,
}

impl HotStuffConfig {
    /// The paper's configuration for scale `n` (128-byte payloads, batch size 800) with
    /// an open-loop load of `aggregate_rps` requests per second.
    pub fn paper(n: usize, aggregate_rps: u64) -> Self {
        Self {
            n,
            payload_size: 128,
            batch_size: 800,
            aggregate_rps,
            propose_interval: SimDuration::from_millis(10),
            progress_timeout: SimDuration::from_secs(2),
            crypto_mode: CryptoMode::Real,
            cost_model: CostModelKind::Calibrated,
        }
    }

    /// A small, fast configuration for tests.
    pub fn small_test(n: usize) -> Self {
        Self {
            n,
            payload_size: 128,
            batch_size: 16,
            aggregate_rps: 2_000,
            propose_interval: SimDuration::from_millis(10),
            progress_timeout: SimDuration::from_millis(500),
            crypto_mode: CryptoMode::Real,
            cost_model: CostModelKind::Calibrated,
        }
    }

    /// Overrides the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Overrides the offered load.
    pub fn with_rate(mut self, aggregate_rps: u64) -> Self {
        self.aggregate_rps = aggregate_rps;
        self
    }

    /// Overrides the crypto mode (real vs metered execution).
    pub fn with_crypto_mode(mut self, mode: CryptoMode) -> Self {
        self.crypto_mode = mode;
        self
    }

    /// Overrides the compute-cost calibration.
    pub fn with_cost_model(mut self, kind: CostModelKind) -> Self {
        self.cost_model = kind;
        self
    }

    /// Number of tolerated faults `f`.
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    /// Quorum size `2f + 1`.
    pub fn quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// Generates the shared threshold-signature key material for this configuration,
    /// honouring its crypto mode and cost model.
    pub fn shared_keys(&self, seed: u64) -> Arc<HotStuffKeys> {
        Arc::new(HotStuffKeys::generate_with(
            self.quorum(),
            self.n,
            seed,
            self.crypto_mode,
            self.cost_model,
        ))
    }

    /// Validates the configuration.
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 4 {
            return Err(format!("n must be at least 4, got {}", self.n));
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".to_string());
        }
        if self.payload_size == 0 {
            return Err("payload_size must be positive".to_string());
        }
        Ok(())
    }
}

/// Shared key material for a HotStuff deployment.
#[derive(Debug)]
pub struct HotStuffKeys {
    /// The crypto provider every operation goes through.
    pub provider: CryptoProvider,
    /// Per-replica key pairs.
    pub keypairs: Vec<ThresholdKeyPair>,
}

impl HotStuffKeys {
    /// Runs the trusted setup with real crypto and the calibrated cost model.
    pub fn generate(threshold: usize, n: usize, seed: u64) -> Self {
        Self::generate_with(threshold, n, seed, CryptoMode::Real, CostModelKind::Calibrated)
    }

    /// Runs the trusted setup with an explicit crypto mode and cost calibration.
    pub fn generate_with(
        threshold: usize,
        n: usize,
        seed: u64,
        mode: CryptoMode,
        cost_model: CostModelKind,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (scheme, keypairs) = ThresholdScheme::trusted_setup(threshold, n, &mut rng);
        Self {
            provider: CryptoProvider::new(scheme, mode, cost_model.model()),
            keypairs,
        }
    }

    /// The underlying threshold scheme (public verification values).
    pub fn scheme(&self) -> &ThresholdScheme {
        self.provider.scheme()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_and_test_configs_validate() {
        assert!(HotStuffConfig::paper(128, 100_000).validate().is_ok());
        assert!(HotStuffConfig::small_test(4).validate().is_ok());
    }

    #[test]
    fn validation_catches_errors() {
        let mut config = HotStuffConfig::small_test(4);
        config.n = 3;
        assert!(config.validate().is_err());
        let config = HotStuffConfig::small_test(4).with_batch_size(0);
        assert!(config.validate().is_err());
    }

    #[test]
    fn quorum_math() {
        let config = HotStuffConfig::paper(301, 0);
        assert_eq!(config.f(), 100);
        assert_eq!(config.quorum(), 201);
    }

    #[test]
    fn shared_keys_match_scale() {
        let config = HotStuffConfig::small_test(7);
        let keys = config.shared_keys(3);
        assert_eq!(keys.keypairs.len(), 7);
        assert_eq!(keys.scheme().threshold(), 5);
    }
}
