//! HotStuff blocks and quorum certificates.

use leopard_crypto::threshold::CombinedSignature;
use leopard_crypto::{hash_parts, Digest};
use leopard_types::{Request, View, WireSize};

/// A quorum certificate: `2f+1` combined votes on a block at a given height.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumCertificate {
    /// Height of the certified block.
    pub height: u64,
    /// Digest of the certified block.
    pub block_digest: Digest,
    /// The combined threshold signature, `None` only for the genesis certificate.
    pub proof: Option<CombinedSignature>,
}

impl QuorumCertificate {
    /// The genesis certificate every replica starts from.
    pub fn genesis() -> Self {
        Self {
            height: 0,
            block_digest: Digest::zero(),
            proof: None,
        }
    }

    /// True for the genesis certificate.
    pub fn is_genesis(&self) -> bool {
        self.proof.is_none()
    }
}

impl WireSize for QuorumCertificate {
    fn wire_size(&self) -> usize {
        8 + 32 + 48
    }
}

/// A HotStuff block: the leader's proposal carrying the full request batch plus the QC
/// of its parent (chained / pipelined HotStuff).
#[derive(Debug, Clone)]
pub struct HotStuffBlock {
    /// Height (one per proposal; equals the view in the happy path).
    pub height: u64,
    /// View in which the block was proposed.
    pub view: View,
    /// Digest of the parent block.
    pub parent: Digest,
    /// The request batch carried by the block.
    pub requests: Vec<Request>,
    /// Lazily computed digest; shared clones (e.g. through `Arc`) compute it once.
    cached_digest: std::sync::OnceLock<Digest>,
    /// Lazily computed wire size (the batch sum is `O(requests)` per call otherwise).
    cached_wire_size: std::sync::OnceLock<usize>,
}

impl PartialEq for HotStuffBlock {
    fn eq(&self, other: &Self) -> bool {
        self.height == other.height
            && self.view == other.view
            && self.parent == other.parent
            && self.requests == other.requests
    }
}

impl Eq for HotStuffBlock {}

impl HotStuffBlock {
    /// Creates a block.
    pub fn new(height: u64, view: View, parent: Digest, requests: Vec<Request>) -> Self {
        Self {
            height,
            view,
            parent,
            requests,
            cached_digest: std::sync::OnceLock::new(),
            cached_wire_size: std::sync::OnceLock::new(),
        }
    }

    /// The block digest replicas vote on.
    ///
    /// The digest commits to the height, view, parent and the request identifiers; it is
    /// *not* a full serialisation hash to keep large-batch simulations cheap (the
    /// request payloads are synthetic). Cached after the first call: every replica that
    /// receives the `Arc`-shared proposal reuses the same digest.
    pub fn digest(&self) -> Digest {
        *self.cached_digest.get_or_init(|| {
            let mut id_bytes = Vec::with_capacity(12 * self.requests.len() + 48);
            id_bytes.extend_from_slice(&self.height.to_le_bytes());
            id_bytes.extend_from_slice(&self.view.0.to_le_bytes());
            id_bytes.extend_from_slice(self.parent.as_bytes());
            for request in &self.requests {
                id_bytes.extend_from_slice(&request.id.client.0.to_le_bytes());
                id_bytes.extend_from_slice(&request.id.seq.to_le_bytes());
            }
            hash_parts([b"hotstuff-block".as_slice(), &id_bytes])
        })
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the block carries no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total request payload bytes in the batch.
    pub fn payload_bytes(&self) -> usize {
        self.requests.iter().map(|r| r.payload.len()).sum()
    }
}

impl WireSize for HotStuffBlock {
    fn wire_size(&self) -> usize {
        *self.cached_wire_size.get_or_init(|| {
            8 + 8 + 32 + 4 + self.requests.iter().map(WireSize::wire_size).sum::<usize>()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_types::ClientId;

    fn requests(count: usize) -> Vec<Request> {
        (0..count)
            .map(|i| Request::new_synthetic(ClientId(0), i as u64, 128))
            .collect()
    }

    #[test]
    fn genesis_certificate() {
        let qc = QuorumCertificate::genesis();
        assert!(qc.is_genesis());
        assert_eq!(qc.height, 0);
        assert!(qc.wire_size() > 0);
    }

    #[test]
    fn block_digest_depends_on_contents() {
        let a = HotStuffBlock::new(1, View(1), Digest::zero(), requests(3));
        let b = HotStuffBlock::new(2, View(1), Digest::zero(), requests(3));
        let c = HotStuffBlock::new(1, View(1), a.digest(), requests(3));
        let d = HotStuffBlock::new(1, View(1), Digest::zero(), requests(4));
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
        assert_ne!(a.digest(), d.digest());
        assert_eq!(a.digest(), HotStuffBlock::new(1, View(1), Digest::zero(), requests(3)).digest());
    }

    #[test]
    fn wire_size_counts_the_full_payload() {
        let block = HotStuffBlock::new(1, View(1), Digest::zero(), requests(800));
        // 800 requests of 128 bytes: the proposal is payload-dominated.
        assert!(block.wire_size() > 800 * 128);
        assert_eq!(block.len(), 800);
        assert_eq!(block.payload_bytes(), 800 * 128);
        assert!(!block.is_empty());
    }
}
