//! Configuration of a Leopard deployment: protocol parameters, timers, workload model
//! and the shared key material.

use crate::byzantine::ByzantineBehavior;
use leopard_crypto::provider::{CryptoMode, CryptoProvider};
use leopard_crypto::threshold::{ThresholdKeyPair, ThresholdScheme};
use leopard_simnet::SimDuration;
use leopard_types::{CostModelKind, ProtocolParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// How client requests enter the system.
///
/// In the paper clients are separate machines submitting to their neighbouring replica
/// (with the deterministic assignment function `µ(req)` balancing load). In this
/// reproduction the client stub lives inside each replica: it injects synthetic requests
/// into the replica's mempool and measures acknowledgement latency, which keeps the
/// simulation's event count proportional to protocol messages rather than requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadMode {
    /// Clients submit an aggregate of `aggregate_rps` requests per second, spread evenly
    /// over the non-leader replicas (open loop).
    OpenLoop {
        /// Total offered load in requests per second across the whole system.
        aggregate_rps: u64,
    },
    /// Every non-leader replica always has enough pending requests to fill a datablock
    /// (the paper's "saturated request rate" stress test). `pacing` bounds how often a
    /// replica may emit a datablock, modelling the per-datablock CPU cost measured in
    /// Table IV.
    Saturated {
        /// Minimum interval between two datablocks from the same replica.
        pacing: SimDuration,
    },
    /// No client traffic at all (used by targeted unit tests and the view-change /
    /// retrieval micro-benchmarks that inject blocks manually).
    Idle,
}

/// Full configuration of one Leopard replica.
#[derive(Debug, Clone)]
pub struct LeopardConfig {
    /// Structural protocol parameters (n, f, batch sizes, payload and header sizes).
    pub params: ProtocolParams,
    /// Workload model of the embedded client stub.
    pub workload: WorkloadMode,
    /// How often a non-leader replica flushes a partially filled datablock.
    pub batch_timeout: SimDuration,
    /// How often the leader checks whether it can propose a new BFTblock.
    pub propose_interval: SimDuration,
    /// How long a replica waits for a missing datablock before querying the committee.
    pub retrieval_timeout: SimDuration,
    /// Confirmation-progress watchdog: if no BFTblock is confirmed for this long while
    /// work is outstanding, the replica complains (timeout message → view-change).
    pub progress_timeout: SimDuration,
    /// Stop generating client traffic at this offset from the start of the run, or
    /// `None` to offer load for the whole run. The large-scale sweeps (`fig9xl`) use
    /// this as a drain window: at n ≥ 2000 disseminating one datablock takes a large
    /// fraction of the run, so load must stop early enough that in-flight datablocks
    /// land before the end-of-run invariant snapshot judges availability.
    pub workload_stop: Option<SimDuration>,
    /// Checkpoint period in BFTblocks (the paper uses `k / 2`).
    pub checkpoint_interval: u64,
    /// Byzantine behaviour injected into this replica (honest by default).
    pub byzantine: ByzantineBehavior,
    /// Whether crypto executes its field/erasure work for real or skips it while
    /// charging identical modeled time (see `leopard_crypto::provider`).
    pub crypto_mode: CryptoMode,
    /// Which per-operation compute-cost calibration the replicas charge.
    pub cost_model: CostModelKind,
}

impl LeopardConfig {
    /// A configuration following the paper's defaults for scale `n`, with an open-loop
    /// workload of `aggregate_rps` requests per second.
    pub fn paper(n: usize, aggregate_rps: u64) -> Self {
        let params = ProtocolParams::paper_defaults(n);
        Self {
            checkpoint_interval: (params.max_parallel_instances as u64 / 2).max(1),
            params,
            workload: WorkloadMode::OpenLoop { aggregate_rps },
            batch_timeout: SimDuration::from_millis(50),
            propose_interval: SimDuration::from_millis(20),
            retrieval_timeout: SimDuration::from_millis(100),
            progress_timeout: SimDuration::from_secs(2),
            workload_stop: None,
            byzantine: ByzantineBehavior::Honest,
            crypto_mode: CryptoMode::Real,
            cost_model: CostModelKind::Calibrated,
        }
    }

    /// A small, fast configuration for unit and integration tests.
    pub fn small_test(n: usize) -> Self {
        let mut params = ProtocolParams::paper_defaults(n);
        params.datablock_size = 8;
        params.bftblock_size = 4;
        params.max_parallel_instances = 16;
        Self {
            params,
            workload: WorkloadMode::OpenLoop { aggregate_rps: 2_000 },
            batch_timeout: SimDuration::from_millis(20),
            propose_interval: SimDuration::from_millis(10),
            retrieval_timeout: SimDuration::from_millis(50),
            progress_timeout: SimDuration::from_millis(500),
            workload_stop: None,
            checkpoint_interval: 8,
            byzantine: ByzantineBehavior::Honest,
            crypto_mode: CryptoMode::Real,
            cost_model: CostModelKind::Calibrated,
        }
    }

    /// Overrides the workload mode.
    pub fn with_workload(mut self, workload: WorkloadMode) -> Self {
        self.workload = workload;
        self
    }

    /// Overrides the number of concurrent proposers `p` (the PR 9 multi-proposer
    /// agreement plane; `1` = the classic single-leader protocol).
    pub fn with_proposers(mut self, proposers: usize) -> Self {
        self.params.proposers = proposers;
        self
    }

    /// Overrides the Byzantine behaviour.
    pub fn with_byzantine(mut self, behaviour: ByzantineBehavior) -> Self {
        self.byzantine = behaviour;
        self
    }

    /// Overrides the crypto mode (real vs metered execution).
    pub fn with_crypto_mode(mut self, mode: CryptoMode) -> Self {
        self.crypto_mode = mode;
        self
    }

    /// Overrides the compute-cost calibration.
    pub fn with_cost_model(mut self, kind: CostModelKind) -> Self {
        self.cost_model = kind;
        self
    }

    /// Generates the shared key material (crypto provider + per-replica key pairs) for
    /// a system with this configuration, honouring its crypto mode and cost model.
    pub fn shared_keys(config: &LeopardConfig, seed: u64) -> Arc<SharedKeys> {
        Arc::new(SharedKeys::generate_with(
            config.params.quorum(),
            config.params.n,
            seed,
            config.crypto_mode,
            config.cost_model,
        ))
    }

    /// Validates the configuration.
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.params.validate()?;
        if self.checkpoint_interval == 0 {
            return Err("checkpoint_interval must be positive".to_string());
        }
        if let WorkloadMode::OpenLoop { aggregate_rps } = self.workload {
            if aggregate_rps == 0 {
                return Err("aggregate_rps must be positive for an open-loop workload".to_string());
            }
        }
        Ok(())
    }
}

/// The key material shared by all replicas of one deployment: the crypto provider
/// (threshold scheme + mode + cost model) plus every replica's key pair.
///
/// In a real deployment each replica would hold only its own key pair; bundling them is
/// a simulation convenience (replicas only ever read their own entry).
#[derive(Debug)]
pub struct SharedKeys {
    /// The crypto provider every operation goes through.
    pub provider: CryptoProvider,
    /// Per-replica key pairs, indexed by replica index.
    pub keypairs: Vec<ThresholdKeyPair>,
}

impl SharedKeys {
    /// Runs the trusted setup for an `(threshold, n)` deployment with real crypto and
    /// the calibrated cost model.
    pub fn generate(threshold: usize, n: usize, seed: u64) -> Self {
        Self::generate_with(threshold, n, seed, CryptoMode::Real, CostModelKind::Calibrated)
    }

    /// Runs the trusted setup with an explicit crypto mode and cost calibration.
    pub fn generate_with(
        threshold: usize,
        n: usize,
        seed: u64,
        mode: CryptoMode,
        cost_model: CostModelKind,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (scheme, keypairs) = ThresholdScheme::trusted_setup(threshold, n, &mut rng);
        Self {
            provider: CryptoProvider::new(scheme, mode, cost_model.model()),
            keypairs,
        }
    }

    /// The underlying threshold scheme (public verification values).
    pub fn scheme(&self) -> &ThresholdScheme {
        self.provider.scheme()
    }

    /// The key pair of replica `index`.
    pub fn keypair(&self, index: usize) -> &ThresholdKeyPair {
        &self.keypairs[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        let config = LeopardConfig::paper(64, 100_000);
        assert!(config.validate().is_ok());
        assert_eq!(config.params.datablock_size, 2000);
        assert_eq!(config.checkpoint_interval, 50);
    }

    #[test]
    fn small_test_config_is_valid() {
        assert!(LeopardConfig::small_test(4).validate().is_ok());
        assert!(LeopardConfig::small_test(7).validate().is_ok());
    }

    #[test]
    fn validation_rejects_zero_rate_and_zero_interval() {
        let config = LeopardConfig::small_test(4).with_workload(WorkloadMode::OpenLoop { aggregate_rps: 0 });
        assert!(config.validate().is_err());
        let mut config = LeopardConfig::small_test(4);
        config.checkpoint_interval = 0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn shared_keys_cover_every_replica() {
        let config = LeopardConfig::small_test(7);
        let keys = LeopardConfig::shared_keys(&config, 1);
        assert_eq!(keys.keypairs.len(), 7);
        assert_eq!(keys.scheme().threshold(), 5);
        assert_eq!(keys.keypair(3).index, 4); // 1-based signer index
    }

    #[test]
    fn builder_style_overrides() {
        let config = LeopardConfig::small_test(4)
            .with_workload(WorkloadMode::Saturated {
                pacing: SimDuration::from_millis(5),
            })
            .with_byzantine(ByzantineBehavior::SilentLeader);
        assert_eq!(
            config.workload,
            WorkloadMode::Saturated {
                pacing: SimDuration::from_millis(5)
            }
        );
        assert_eq!(config.byzantine, ByzantineBehavior::SilentLeader);
    }
}
