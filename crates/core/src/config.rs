//! Configuration of a Leopard deployment: protocol parameters, timers, workload model
//! and the shared key material.

use crate::byzantine::ByzantineBehavior;
use leopard_crypto::threshold::{ThresholdKeyPair, ThresholdScheme};
use leopard_simnet::SimDuration;
use leopard_types::ProtocolParams;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// How client requests enter the system.
///
/// In the paper clients are separate machines submitting to their neighbouring replica
/// (with the deterministic assignment function `µ(req)` balancing load). In this
/// reproduction the client stub lives inside each replica: it injects synthetic requests
/// into the replica's mempool and measures acknowledgement latency, which keeps the
/// simulation's event count proportional to protocol messages rather than requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadMode {
    /// Clients submit an aggregate of `aggregate_rps` requests per second, spread evenly
    /// over the non-leader replicas (open loop).
    OpenLoop {
        /// Total offered load in requests per second across the whole system.
        aggregate_rps: u64,
    },
    /// Every non-leader replica always has enough pending requests to fill a datablock
    /// (the paper's "saturated request rate" stress test). `pacing` bounds how often a
    /// replica may emit a datablock, modelling the per-datablock CPU cost measured in
    /// Table IV.
    Saturated {
        /// Minimum interval between two datablocks from the same replica.
        pacing: SimDuration,
    },
    /// No client traffic at all (used by targeted unit tests and the view-change /
    /// retrieval micro-benchmarks that inject blocks manually).
    Idle,
}

/// Full configuration of one Leopard replica.
#[derive(Debug, Clone)]
pub struct LeopardConfig {
    /// Structural protocol parameters (n, f, batch sizes, payload and header sizes).
    pub params: ProtocolParams,
    /// Workload model of the embedded client stub.
    pub workload: WorkloadMode,
    /// How often a non-leader replica flushes a partially filled datablock.
    pub batch_timeout: SimDuration,
    /// How often the leader checks whether it can propose a new BFTblock.
    pub propose_interval: SimDuration,
    /// How long a replica waits for a missing datablock before querying the committee.
    pub retrieval_timeout: SimDuration,
    /// Confirmation-progress watchdog: if no BFTblock is confirmed for this long while
    /// work is outstanding, the replica complains (timeout message → view-change).
    pub progress_timeout: SimDuration,
    /// Checkpoint period in BFTblocks (the paper uses `k / 2`).
    pub checkpoint_interval: u64,
    /// Byzantine behaviour injected into this replica (honest by default).
    pub byzantine: ByzantineBehavior,
}

impl LeopardConfig {
    /// A configuration following the paper's defaults for scale `n`, with an open-loop
    /// workload of `aggregate_rps` requests per second.
    pub fn paper(n: usize, aggregate_rps: u64) -> Self {
        let params = ProtocolParams::paper_defaults(n);
        Self {
            checkpoint_interval: (params.max_parallel_instances as u64 / 2).max(1),
            params,
            workload: WorkloadMode::OpenLoop { aggregate_rps },
            batch_timeout: SimDuration::from_millis(50),
            propose_interval: SimDuration::from_millis(20),
            retrieval_timeout: SimDuration::from_millis(100),
            progress_timeout: SimDuration::from_secs(2),
            byzantine: ByzantineBehavior::Honest,
        }
    }

    /// A small, fast configuration for unit and integration tests.
    pub fn small_test(n: usize) -> Self {
        let mut params = ProtocolParams::paper_defaults(n);
        params.datablock_size = 8;
        params.bftblock_size = 4;
        params.max_parallel_instances = 16;
        Self {
            params,
            workload: WorkloadMode::OpenLoop { aggregate_rps: 2_000 },
            batch_timeout: SimDuration::from_millis(20),
            propose_interval: SimDuration::from_millis(10),
            retrieval_timeout: SimDuration::from_millis(50),
            progress_timeout: SimDuration::from_millis(500),
            checkpoint_interval: 8,
            byzantine: ByzantineBehavior::Honest,
        }
    }

    /// Overrides the workload mode.
    pub fn with_workload(mut self, workload: WorkloadMode) -> Self {
        self.workload = workload;
        self
    }

    /// Overrides the Byzantine behaviour.
    pub fn with_byzantine(mut self, behaviour: ByzantineBehavior) -> Self {
        self.byzantine = behaviour;
        self
    }

    /// Generates the shared key material (threshold scheme + per-replica key pairs) for
    /// a system with this configuration.
    pub fn shared_keys(config: &LeopardConfig, seed: u64) -> Arc<SharedKeys> {
        Arc::new(SharedKeys::generate(
            config.params.quorum(),
            config.params.n,
            seed,
        ))
    }

    /// Validates the configuration.
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.params.validate()?;
        if self.checkpoint_interval == 0 {
            return Err("checkpoint_interval must be positive".to_string());
        }
        if let WorkloadMode::OpenLoop { aggregate_rps } = self.workload {
            if aggregate_rps == 0 {
                return Err("aggregate_rps must be positive for an open-loop workload".to_string());
            }
        }
        Ok(())
    }
}

/// The key material shared by all replicas of one deployment: the threshold scheme's
/// public values plus every replica's key pair.
///
/// In a real deployment each replica would hold only its own key pair; bundling them is
/// a simulation convenience (replicas only ever read their own entry).
#[derive(Debug)]
pub struct SharedKeys {
    /// The threshold scheme (public verification values).
    pub scheme: ThresholdScheme,
    /// Per-replica key pairs, indexed by replica index.
    pub keypairs: Vec<ThresholdKeyPair>,
}

impl SharedKeys {
    /// Runs the trusted setup for an `(threshold, n)` deployment.
    pub fn generate(threshold: usize, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (scheme, keypairs) = ThresholdScheme::trusted_setup(threshold, n, &mut rng);
        Self { scheme, keypairs }
    }

    /// The key pair of replica `index`.
    pub fn keypair(&self, index: usize) -> &ThresholdKeyPair {
        &self.keypairs[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        let config = LeopardConfig::paper(64, 100_000);
        assert!(config.validate().is_ok());
        assert_eq!(config.params.datablock_size, 2000);
        assert_eq!(config.checkpoint_interval, 50);
    }

    #[test]
    fn small_test_config_is_valid() {
        assert!(LeopardConfig::small_test(4).validate().is_ok());
        assert!(LeopardConfig::small_test(7).validate().is_ok());
    }

    #[test]
    fn validation_rejects_zero_rate_and_zero_interval() {
        let config = LeopardConfig::small_test(4).with_workload(WorkloadMode::OpenLoop { aggregate_rps: 0 });
        assert!(config.validate().is_err());
        let mut config = LeopardConfig::small_test(4);
        config.checkpoint_interval = 0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn shared_keys_cover_every_replica() {
        let config = LeopardConfig::small_test(7);
        let keys = LeopardConfig::shared_keys(&config, 1);
        assert_eq!(keys.keypairs.len(), 7);
        assert_eq!(keys.scheme.threshold(), 5);
        assert_eq!(keys.keypair(3).index, 4); // 1-based signer index
    }

    #[test]
    fn builder_style_overrides() {
        let config = LeopardConfig::small_test(4)
            .with_workload(WorkloadMode::Saturated {
                pacing: SimDuration::from_millis(5),
            })
            .with_byzantine(ByzantineBehavior::SilentLeader);
        assert_eq!(
            config.workload,
            WorkloadMode::Saturated {
                pacing: SimDuration::from_millis(5)
            }
        );
        assert_eq!(config.byzantine, ByzantineBehavior::SilentLeader);
    }
}
