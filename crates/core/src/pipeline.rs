//! The leader's proposal pipeline as an explicit, queryable state object.
//!
//! Historically the leader's progress machinery was timer-polled: a fixed
//! `TOKEN_PROPOSE` tick rescanned `leader_instances` (O(k)) to count in-flight
//! instances and silently did nothing when a guard blocked. When one link of the
//! Ready → propose → Confirm → checkpoint → watermark-advance chain stopped turning,
//! the leader idled forever and the only symptom was a bare `0.00` in a throughput
//! table.
//!
//! [`Pipeline`] replaces that with event-driven bookkeeping:
//!
//! * it owns the per-serial-number [`LeaderInstance`] map and maintains an **O(1)
//!   in-flight counter** at every mutation point (propose, confirm, re-propose,
//!   checkpoint GC) instead of rescanning;
//! * its stall condition is a first-class value, [`StallReason`], computed from the
//!   same guards `propose()` uses — so a stalled run can *name* the guard that blocks
//!   it (and a zero cell in `fig9` output comes annotated, never bare).

use crate::instance::LeaderInstance;
use leopard_crypto::threshold::CombinedSignature;
use leopard_types::SeqNum;
use std::collections::BTreeMap;

/// Why the leader's proposal pipeline is (or would be) unable to extend right now.
///
/// `None` means no guard blocks: the leader either just proposed everything it could or
/// could propose immediately. The variants are ordered by diagnostic precedence — the
/// first blocking guard wins, matching the order `propose()` checks them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// Nothing blocks the pipeline.
    None,
    /// The replica deliberately stays silent (an injected Byzantine behaviour).
    Byzantine,
    /// A view-change is in progress; proposing is suspended until the new view starts.
    ViewChange,
    /// All `k` parallel agreement instances are in flight and none has confirmed.
    InstancesFull,
    /// The next serial number is beyond `low_watermark + k`: the checkpoint protocol
    /// has not advanced the watermark (confirmations or checkpoint shares are stuck).
    WatermarkFull,
    /// No datablock has reached the `2f+1` ready threshold: the leader has nothing to
    /// link (datablock generation, dissemination or Ready acks are stuck).
    AwaitingReady,
}

impl StallReason {
    /// The stable string label used in probes, tables and logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            StallReason::None => "None",
            StallReason::Byzantine => "Byzantine",
            StallReason::ViewChange => "ViewChange",
            StallReason::InstancesFull => "InstancesFull",
            StallReason::WatermarkFull => "WatermarkFull",
            StallReason::AwaitingReady => "AwaitingReady",
        }
    }
}

impl std::fmt::Display for StallReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The leader-side proposal pipeline: the in-flight [`LeaderInstance`]s, the next
/// serial number, and the parallelism bound `k` — with an O(1) in-flight counter and a
/// queryable [`StallReason`].
#[derive(Debug)]
pub struct Pipeline {
    /// Per-serial-number leader state, keyed by serial number.
    instances: BTreeMap<u64, LeaderInstance>,
    /// Number of instances in `instances` that are not yet confirmed. Maintained at
    /// every mutation point; [`Self::rescan_in_flight`] is the brute-force ground truth
    /// the property tests compare against.
    in_flight: usize,
    /// The serial number the next proposal will use.
    next_seq: SeqNum,
    /// The parallelism bound `k` (`max_parallel_instances`).
    k: usize,
    /// The stripe this pipeline proposes on: serials `s` with
    /// `(s − 1) mod stride == stripe` (PR 9 multi-proposer plane). The default
    /// `(0, 1)` is the classic single-leader pipeline over every serial.
    stripe: u64,
    /// Number of stripes (`p`, the proposer count); `1` = single leader.
    stride: u64,
}

impl Pipeline {
    /// Creates an empty pipeline with parallelism bound `k` (stripe `0` of `1`:
    /// the single-leader pipeline).
    pub fn new(k: usize) -> Self {
        Self {
            instances: BTreeMap::new(),
            in_flight: 0,
            next_seq: SeqNum::first(),
            k,
            stripe: 0,
            stride: 1,
        }
    }

    /// The stripe (of how many) a serial number belongs to.
    pub fn stripe_of(seq: SeqNum, stride: u64) -> u64 {
        debug_assert!(seq.0 >= 1 && stride >= 1);
        (seq.0 - 1) % stride
    }

    /// Re-anchors this pipeline to `stripe` of `stride` (called on entering a view
    /// under the multi-proposer plane). `next_seq` never decreases; it is advanced
    /// to the nearest serial of the new stripe's residue class.
    pub fn set_stripe(&mut self, stripe: u64, stride: u64) {
        assert!(stride >= 1 && stripe < stride, "stripe {stripe} of {stride}");
        self.stripe = stripe;
        self.stride = stride;
        self.align_next_seq();
    }

    /// Advances `next_seq` (without decreasing it) to the pipeline's residue class.
    fn align_next_seq(&mut self) {
        if self.stride <= 1 {
            return;
        }
        let r = (self.next_seq.0 - 1) % self.stride;
        let delta = (self.stripe + self.stride - r) % self.stride;
        self.next_seq = SeqNum(self.next_seq.0 + delta);
    }

    /// The serial number the next proposal will use.
    pub fn next_seq(&self) -> SeqNum {
        self.next_seq
    }

    /// Takes the next serial number, advancing the counter to the next serial of
    /// this pipeline's stripe (`+1` for the single-leader stripe `0` of `1`).
    pub fn take_seq(&mut self) -> SeqNum {
        let seq = self.next_seq;
        self.next_seq = SeqNum(self.next_seq.0 + self.stride);
        seq
    }

    /// Raises `next_seq` to at least `seq` (used when a new view adopts re-proposed
    /// blocks above the current counter), then re-aligns it onto this pipeline's
    /// stripe (a no-op for the single-leader stripe).
    pub fn bump_next_seq(&mut self, seq: SeqNum) {
        self.next_seq = self.next_seq.max(seq);
        self.align_next_seq();
    }

    /// Number of unconfirmed instances, in O(1).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Brute-force recount of unconfirmed instances (O(k)); the ground truth
    /// [`Self::in_flight`] must always equal.
    pub fn rescan_in_flight(&self) -> usize {
        self.instances.values().filter(|instance| !instance.is_confirmed()).count()
    }

    /// Inserts (or replaces) the instance at `seq`, keeping the in-flight counter
    /// consistent across replacements (a view-change re-proposal overwrites the old
    /// view's instance at the same serial number).
    pub fn insert(&mut self, seq: SeqNum, instance: LeaderInstance) {
        if !instance.is_confirmed() {
            self.in_flight += 1;
        }
        if let Some(old) = self.instances.insert(seq.0, instance) {
            if !old.is_confirmed() {
                self.in_flight -= 1;
            }
        }
    }

    /// The instance at `seq`, if any.
    pub fn get(&self, seq: SeqNum) -> Option<&LeaderInstance> {
        self.instances.get(&seq.0)
    }

    /// Mutable access to the instance at `seq` for vote collection.
    ///
    /// The returned instance's `confirmation` must not be set through this reference —
    /// use [`Self::record_confirmation`], which also maintains the in-flight counter.
    pub fn get_mut(&mut self, seq: SeqNum) -> Option<&mut LeaderInstance> {
        self.instances.get_mut(&seq.0)
    }

    /// Records the confirmation proof for `seq`, freeing its pipeline slot. Returns
    /// true if the instance existed and was not already confirmed.
    pub fn record_confirmation(&mut self, seq: SeqNum, proof: CombinedSignature) -> bool {
        let Some(instance) = self.instances.get_mut(&seq.0) else {
            return false;
        };
        if instance.is_confirmed() {
            return false;
        }
        instance.confirmation = Some(proof);
        self.in_flight -= 1;
        true
    }

    /// Iterates over `(seq, instance)` pairs in serial-number order.
    pub fn iter(&self) -> impl Iterator<Item = (SeqNum, &LeaderInstance)> {
        self.instances.iter().map(|(&seq, instance)| (SeqNum(seq), instance))
    }

    /// Drops every instance at or below `watermark` (checkpoint garbage collection).
    /// Unconfirmed instances below the watermark free their slot: a quorum checkpoint
    /// proves the chain is durable past them.
    pub fn prune_through(&mut self, watermark: SeqNum) {
        // BTreeMap: split off the surviving suffix, count what the prefix held.
        let keep = self.instances.split_off(&(watermark.0 + 1));
        let dropped_in_flight =
            self.instances.values().filter(|instance| !instance.is_confirmed()).count();
        self.in_flight -= dropped_in_flight;
        self.instances = keep;
    }

    /// The first guard that blocks proposing right now, or [`StallReason::None`] if the
    /// leader could propose. `ready_count` is the number of ready, unlinked datablocks;
    /// `high_watermark` is the checkpoint window bound `lw + k`
    /// ([`crate::checkpoint::CheckpointState::high_watermark`]).
    pub fn stall_reason(
        &self,
        silent_byzantine: bool,
        in_view_change: bool,
        ready_count: usize,
        high_watermark: SeqNum,
    ) -> StallReason {
        if silent_byzantine {
            StallReason::Byzantine
        } else if in_view_change {
            StallReason::ViewChange
        } else if self.in_flight >= self.k {
            StallReason::InstancesFull
        } else if self.next_seq > high_watermark {
            StallReason::WatermarkFull
        } else if ready_count == 0 {
            StallReason::AwaitingReady
        } else {
            StallReason::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_crypto::threshold::ThresholdScheme;
    use leopard_types::{BftBlock, View};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn proof() -> CombinedSignature {
        let mut rng = StdRng::seed_from_u64(1);
        let (scheme, keys) = ThresholdScheme::trusted_setup(1, 1, &mut rng);
        let digest = leopard_crypto::hash_bytes(b"pipeline");
        let share = scheme.sign_share(&keys[0], &digest);
        scheme.combine(&[share], &digest).expect("1-of-1 combine")
    }

    fn instance(seq: SeqNum) -> LeaderInstance {
        let block = Arc::new(BftBlock::new(View(1), seq, Vec::new()));
        LeaderInstance::new(block, leopard_simnet::SimTime(0))
    }

    #[test]
    fn counter_tracks_insert_confirm_prune() {
        let mut pipeline = Pipeline::new(4);
        assert_eq!(pipeline.in_flight(), 0);
        let s1 = pipeline.take_seq();
        pipeline.insert(s1, instance(s1));
        let s2 = pipeline.take_seq();
        pipeline.insert(s2, instance(s2));
        assert_eq!(pipeline.in_flight(), 2);
        assert_eq!(pipeline.in_flight(), pipeline.rescan_in_flight());

        assert!(pipeline.record_confirmation(s1, proof()));
        assert!(!pipeline.record_confirmation(s1, proof()), "double confirm is a no-op");
        assert_eq!(pipeline.in_flight(), 1);

        // Replacement (view-change re-proposal) keeps the count stable.
        pipeline.insert(s2, instance(s2));
        assert_eq!(pipeline.in_flight(), 1);
        assert_eq!(pipeline.in_flight(), pipeline.rescan_in_flight());

        // Pruning through s2 drops both the confirmed and the unconfirmed instance.
        pipeline.prune_through(s2);
        assert_eq!(pipeline.in_flight(), 0);
        assert_eq!(pipeline.rescan_in_flight(), 0);
    }

    #[test]
    fn stall_reasons_follow_guard_precedence() {
        let mut pipeline = Pipeline::new(2);
        // Stable checkpoint at 0 with k = 2: the window admits serial numbers 1..=2.
        let hw = crate::checkpoint::CheckpointState::new().high_watermark(2);
        assert_eq!(hw, SeqNum(2));
        assert_eq!(pipeline.stall_reason(true, true, 5, hw), StallReason::Byzantine);
        assert_eq!(pipeline.stall_reason(false, true, 5, hw), StallReason::ViewChange);
        assert_eq!(pipeline.stall_reason(false, false, 5, hw), StallReason::None);
        assert_eq!(pipeline.stall_reason(false, false, 0, hw), StallReason::AwaitingReady);

        let s1 = pipeline.take_seq();
        pipeline.insert(s1, instance(s1));
        let s2 = pipeline.take_seq();
        pipeline.insert(s2, instance(s2));
        assert_eq!(pipeline.stall_reason(false, false, 5, hw), StallReason::InstancesFull);

        // Confirm both: instances free but next_seq = 3 > lw + k = 2.
        pipeline.record_confirmation(s1, proof());
        pipeline.record_confirmation(s2, proof());
        assert_eq!(pipeline.stall_reason(false, false, 5, hw), StallReason::WatermarkFull);
        // The checkpoint advances: proposing is possible again.
        assert_eq!(pipeline.stall_reason(false, false, 5, SeqNum(4)), StallReason::None);
    }

    #[test]
    fn striped_pipeline_walks_its_residue_class() {
        // Stripe 1 of 4: serials 2, 6, 10, …
        let mut pipeline = Pipeline::new(8);
        pipeline.set_stripe(1, 4);
        assert_eq!(pipeline.take_seq(), SeqNum(2));
        assert_eq!(pipeline.take_seq(), SeqNum(6));
        assert_eq!(pipeline.next_seq(), SeqNum(10));
        // A bump to an off-stripe serial aligns up to the class, never down.
        pipeline.bump_next_seq(SeqNum(11));
        assert_eq!(pipeline.next_seq(), SeqNum(14));
        pipeline.bump_next_seq(SeqNum(14));
        assert_eq!(pipeline.next_seq(), SeqNum(14));
        // Re-anchoring to another stripe (a view change rotated the schedule)
        // advances to that stripe's next serial.
        pipeline.set_stripe(0, 4);
        assert_eq!(pipeline.next_seq(), SeqNum(17));
        // Stripe arithmetic: (s − 1) mod stride.
        assert_eq!(Pipeline::stripe_of(SeqNum(1), 4), 0);
        assert_eq!(Pipeline::stripe_of(SeqNum(2), 4), 1);
        assert_eq!(Pipeline::stripe_of(SeqNum(8), 4), 3);
        assert_eq!(Pipeline::stripe_of(SeqNum(9), 4), 0);
        assert_eq!(Pipeline::stripe_of(SeqNum(7), 1), 0);
    }

    #[test]
    fn single_stripe_is_the_classic_pipeline() {
        // `set_stripe(0, 1)` must not perturb the sequential counter at all.
        let mut pipeline = Pipeline::new(4);
        pipeline.set_stripe(0, 1);
        assert_eq!(pipeline.take_seq(), SeqNum(1));
        assert_eq!(pipeline.take_seq(), SeqNum(2));
        pipeline.bump_next_seq(SeqNum(9));
        assert_eq!(pipeline.next_seq(), SeqNum(9));
    }

    #[test]
    fn bump_next_seq_is_monotonic() {
        let mut pipeline = Pipeline::new(4);
        pipeline.bump_next_seq(SeqNum(7));
        assert_eq!(pipeline.next_seq(), SeqNum(7));
        pipeline.bump_next_seq(SeqNum(3));
        assert_eq!(pipeline.next_seq(), SeqNum(7));
        assert_eq!(pipeline.take_seq(), SeqNum(7));
        assert_eq!(pipeline.next_seq(), SeqNum(8));
    }

    #[test]
    fn iter_and_get_expose_instances() {
        let mut pipeline = Pipeline::new(4);
        let s1 = pipeline.take_seq();
        pipeline.insert(s1, instance(s1));
        assert!(pipeline.get(s1).is_some());
        assert!(pipeline.get(SeqNum(99)).is_none());
        assert!(pipeline.get_mut(s1).is_some());
        assert_eq!(pipeline.iter().count(), 1);
        assert_eq!(pipeline.iter().next().unwrap().0, s1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        /// The satellite property: under random propose / confirm / re-propose
        /// (view-change) / checkpoint-prune interleavings, the O(1) counter always
        /// equals the brute-force `leader_instances` rescan.
        #[test]
        fn in_flight_counter_equals_rescan(
            ops in proptest::collection::vec((0u8..4, 0u64..24), 1..120),
        ) {
            let confirmation = proof();
            let mut pipeline = Pipeline::new(6);
            for (op, arg) in ops {
                match op {
                    // Propose: open the next instance (like `propose()` does).
                    0 => {
                        let seq = pipeline.take_seq();
                        pipeline.insert(seq, instance(seq));
                    }
                    // Confirm: a commit-vote quorum formed for some serial number.
                    1 => {
                        pipeline.record_confirmation(SeqNum(arg), confirmation);
                    }
                    // View-change re-proposal: replace the instance at an arbitrary
                    // serial number with a fresh (unconfirmed) one.
                    2 => {
                        let seq = SeqNum(arg);
                        pipeline.insert(seq, instance(seq));
                        pipeline.bump_next_seq(SeqNum(arg + 1));
                    }
                    // Checkpoint garbage collection (a timeout-free watermark jump).
                    _ => {
                        pipeline.prune_through(SeqNum(arg));
                    }
                }
                prop_assert_eq!(pipeline.in_flight(), pipeline.rescan_in_flight());
            }
        }
    }
}
