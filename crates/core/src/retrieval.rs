//! The datablock retrieval mechanism (Algorithm 3).
//!
//! A replica that receives a BFTblock linking a datablock it never got starts a timer;
//! on expiry it multicasts a `Query`. Every replica that holds the datablock (and has
//! not served this querier before) erasure-codes it with the `(f+1, n)` code, builds a
//! Merkle tree over the `n` chunks, and sends back *its own* chunk plus the Merkle
//! proof. The querier validates chunks individually and decodes as soon as `f+1` chunks
//! under the same root are available, then checks that the decoded datablock really
//! hashes to the queried digest.

use leopard_crypto::{Digest, MerkleProof, MerkleTree};
use leopard_erasure::ReedSolomon;
use leopard_simnet::SimTime;
use leopard_types::{Datablock, Decode, Encode, NodeId, SeqNum};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// A chunk of an erasure-coded datablock, as produced by [`encode_response`].
#[derive(Debug, Clone)]
pub struct ResponseChunk {
    /// Merkle root over all `n` chunks.
    pub root: Digest,
    /// Index of the chunk (the responder's replica index).
    pub shard_index: u32,
    /// The chunk bytes.
    pub chunk: Vec<u8>,
    /// Merkle inclusion proof for the chunk.
    pub proof: MerkleProof,
    /// Length of the encoded datablock (needed to strip padding when decoding).
    pub payload_len: u64,
}

/// Erasure-codes `datablock` and returns the chunk owned by `responder`, with proof.
///
/// Returns `None` if the erasure-code parameters are invalid (cannot happen for
/// `n = 3f + 1 ≥ 4`) or the responder index is out of range.
///
/// This is the stateless reference path; replicas answer queries through
/// [`RetrievalManager::encode_response`], which caches the `(f+1, n)` code and the
/// per-datablock encoding across queriers and produces identical chunks.
pub fn encode_response(
    datablock: &Datablock,
    responder: NodeId,
    f: usize,
    n: usize,
) -> Option<ResponseChunk> {
    let rs = ReedSolomon::new(f + 1, n).ok()?;
    let encoding = CachedEncoding::build(&rs, datablock);
    encoding.chunk_for(responder)
}

/// The erasure-coded shards and Merkle tree of one datablock at a responder: built once,
/// then each querier's response is a shard clone plus a Merkle proof.
#[derive(Debug)]
struct CachedEncoding {
    shards: Vec<Vec<u8>>,
    tree: MerkleTree,
    payload_len: u64,
}

impl CachedEncoding {
    fn build(rs: &ReedSolomon, datablock: &Datablock) -> Self {
        let encoded = datablock.encode_to_vec();
        let shards = rs.encode_payload(&encoded);
        let tree = MerkleTree::from_leaves(shards.iter().map(|s| s.as_slice()));
        Self {
            shards,
            tree,
            payload_len: encoded.len() as u64,
        }
    }

    fn chunk_for(&self, responder: NodeId) -> Option<ResponseChunk> {
        let index = responder.as_index();
        if index >= self.shards.len() {
            return None;
        }
        let proof = self.tree.prove(index)?;
        Some(ResponseChunk {
            root: self.tree.root(),
            shard_index: index as u32,
            chunk: self.shards[index].clone(),
            proof,
            payload_len: self.payload_len,
        })
    }
}

/// State of one in-progress retrieval at the querier.
#[derive(Debug)]
struct PendingRetrieval {
    /// Serial numbers of BFTblocks waiting for this datablock.
    waiting: HashSet<SeqNum>,
    /// Valid chunks collected so far, grouped by Merkle root.
    chunks: HashMap<Digest, BTreeMap<u32, Vec<u8>>>,
    /// Declared encoded length per root.
    payload_len: HashMap<Digest, u64>,
    /// When the datablock was first discovered missing.
    started_at: SimTime,
    /// Whether the query has been multicast already.
    queried: bool,
    /// Bytes received for this retrieval (for the Fig. 12 cost accounting).
    received_bytes: u64,
}

/// The querier-side manager of all in-progress retrievals, plus the responder-side
/// "serve each querier at most once" bookkeeping.
#[derive(Debug, Default)]
pub struct RetrievalManager {
    pending: HashMap<Digest, PendingRetrieval>,
    served: HashSet<(Digest, NodeId)>,
    /// Reed–Solomon codes by `(data_shards, total_shards)`; the parameters are fixed
    /// per run, so the Vandermonde construction happens once per replica, not once per
    /// response or decode.
    codes: HashMap<(usize, usize), ReedSolomon>,
    /// Responder-side chunks by datablock digest, so serving `k` queriers encodes and
    /// Merkle-hashes the datablock once instead of `k` times. Only the chunk actually
    /// served is retained (a replica always responds with its own shard), not the full
    /// shard set; the cached `(responder, data_shards, total_shards)` guards against a
    /// mismatched lookup.
    chunks_served: HashMap<Digest, ((NodeId, usize, usize), ResponseChunk)>,
}

/// Entry cap for the responder-side chunk cache (memory backstop; digests repeat
/// within one retrieval storm).
const ENCODING_CACHE_CAP: usize = 64;

/// Outcome of feeding a response chunk into the manager.
#[derive(Debug, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// The chunk was stored; more are needed.
    Stored,
    /// The chunk was invalid or irrelevant and was ignored.
    Ignored,
    /// Enough chunks arrived and the datablock was reconstructed.
    Recovered {
        /// The reconstructed datablock.
        datablock: Arc<Datablock>,
        /// Serial numbers that were waiting for it.
        waiting: Vec<SeqNum>,
        /// Time the retrieval took.
        elapsed_nanos: u64,
        /// Bytes received over the course of the retrieval.
        received_bytes: u64,
    },
}

impl RetrievalManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of datablocks currently being retrieved.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Registers that BFTblock `seq` needs the missing datablock `digest`.
    ///
    /// Returns true if this is the first time the datablock is reported missing (i.e.
    /// the caller should start the retrieval timer).
    pub fn note_missing(&mut self, digest: Digest, seq: SeqNum, now: SimTime) -> bool {
        match self.pending.get_mut(&digest) {
            Some(pending) => {
                pending.waiting.insert(seq);
                false
            }
            None => {
                let mut waiting = HashSet::new();
                waiting.insert(seq);
                self.pending.insert(
                    digest,
                    PendingRetrieval {
                        waiting,
                        chunks: HashMap::new(),
                        payload_len: HashMap::new(),
                        started_at: now,
                        queried: false,
                        received_bytes: 0,
                    },
                );
                true
            }
        }
    }

    /// True if `digest` is still being retrieved.
    pub fn is_pending(&self, digest: &Digest) -> bool {
        self.pending.contains_key(digest)
    }

    /// Called when the retrieval timer fires: returns the digests that still need to be
    /// queried (and marks them as queried).
    pub fn digests_to_query(&mut self) -> Vec<Digest> {
        let mut digests: Vec<Digest> = self
            .pending
            .iter()
            .filter(|(_, p)| !p.queried)
            .map(|(d, _)| *d)
            .collect();
        digests.sort_unstable();
        for digest in &digests {
            if let Some(pending) = self.pending.get_mut(digest) {
                pending.queried = true;
            }
        }
        digests
    }

    /// Cancels a retrieval because the datablock arrived through normal dissemination.
    ///
    /// Returns the serial numbers that were waiting for it.
    pub fn cancel(&mut self, digest: &Digest) -> Vec<SeqNum> {
        self.pending
            .remove(digest)
            .map(|p| p.waiting.into_iter().collect())
            .unwrap_or_default()
    }

    /// Responder-side: should this replica answer a query for `digest` from `querier`?
    /// (At most one response per datablock per querier — Algorithm 3.)
    pub fn should_serve(&mut self, digest: Digest, querier: NodeId) -> bool {
        self.served.insert((digest, querier))
    }

    /// The `(data_shards, total_shards)` code, constructed on first use.
    fn code_for(
        codes: &mut HashMap<(usize, usize), ReedSolomon>,
        data_shards: usize,
        total_shards: usize,
    ) -> Option<&ReedSolomon> {
        match codes.entry((data_shards, total_shards)) {
            std::collections::hash_map::Entry::Occupied(entry) => Some(entry.into_mut()),
            std::collections::hash_map::Entry::Vacant(entry) => {
                let rs = ReedSolomon::new(data_shards, total_shards).ok()?;
                Some(entry.insert(rs))
            }
        }
    }

    /// Responder-side: erasure-codes `datablock` (or reuses this responder's cached
    /// chunk) and returns the responder's chunk with its Merkle proof. Produces exactly
    /// the same chunk as the stateless [`encode_response`].
    pub fn encode_response(
        &mut self,
        datablock: &Datablock,
        responder: NodeId,
        f: usize,
        n: usize,
    ) -> Option<ResponseChunk> {
        let digest = datablock.digest();
        let cache_key = (responder, f + 1, n);
        if let Some((cached_key, chunk)) = self.chunks_served.get(&digest) {
            if *cached_key == cache_key {
                return Some(chunk.clone());
            }
        }
        let rs = Self::code_for(&mut self.codes, f + 1, n)?;
        let chunk = CachedEncoding::build(rs, datablock).chunk_for(responder)?;
        if self.chunks_served.len() >= ENCODING_CACHE_CAP {
            self.chunks_served.clear();
        }
        self.chunks_served.insert(digest, (cache_key, chunk.clone()));
        Some(chunk)
    }

    /// Feeds a received chunk into the matching retrieval.
    ///
    /// Verifies the Merkle proof, groups chunks by root, and attempts to decode once
    /// `f + 1` chunks under one root are available. The decoded datablock must hash to
    /// the queried digest; otherwise the chunks under that root are discarded (the root
    /// was forged).
    #[allow(clippy::too_many_arguments)]
    pub fn add_chunk(
        &mut self,
        digest: Digest,
        root: Digest,
        shard_index: u32,
        chunk: Vec<u8>,
        proof: &MerkleProof,
        payload_len: u64,
        f: usize,
        n: usize,
        now: SimTime,
    ) -> ChunkOutcome {
        let Some(pending) = self.pending.get_mut(&digest) else {
            return ChunkOutcome::Ignored;
        };
        if proof.leaf_index() != shard_index as usize || !proof.verify(root, &chunk) {
            return ChunkOutcome::Ignored;
        }
        pending.received_bytes += chunk.len() as u64 + 64 + proof.wire_size() as u64;
        pending.payload_len.insert(root, payload_len);
        let chunks = pending.chunks.entry(root).or_default();
        chunks.insert(shard_index, chunk);

        if chunks.len() < f + 1 {
            return ChunkOutcome::Stored;
        }

        // Try to decode from the first f+1 chunks under this root.
        let Some(rs) = Self::code_for(&mut self.codes, f + 1, n) else {
            return ChunkOutcome::Ignored;
        };
        let shards: Vec<(usize, Vec<u8>)> = chunks
            .iter()
            .take(f + 1)
            .map(|(&i, c)| (i as usize, c.clone()))
            .collect();
        let encoded_len = pending.payload_len.get(&root).copied().unwrap_or(0) as usize;
        let decoded = match rs.decode_payload(&shards, encoded_len) {
            Ok(bytes) => bytes,
            Err(_) => {
                pending.chunks.remove(&root);
                return ChunkOutcome::Ignored;
            }
        };
        let datablock = match Datablock::decode_from_slice(&decoded) {
            Ok(db) => db,
            Err(_) => {
                pending.chunks.remove(&root);
                return ChunkOutcome::Ignored;
            }
        };
        if datablock.digest() != digest {
            // The responders under this root colluded on a different datablock.
            pending.chunks.remove(&root);
            return ChunkOutcome::Ignored;
        }

        let pending = self.pending.remove(&digest).expect("checked above");
        ChunkOutcome::Recovered {
            datablock: Arc::new(datablock),
            waiting: pending.waiting.into_iter().collect(),
            elapsed_nanos: now.saturating_since(pending.started_at).as_nanos(),
            received_bytes: pending.received_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_types::{ClientId, Request};

    fn sample_datablock(requests: usize) -> Datablock {
        Datablock::new(
            NodeId(2),
            1,
            (0..requests)
                .map(|i| Request::new_inline(ClientId(1), i as u64, vec![i as u8; 128]))
                .collect(),
        )
    }

    #[test]
    fn encode_response_produces_verifiable_chunks() {
        let db = sample_datablock(50);
        let (f, n) = (1, 4);
        for responder in 0..n as u32 {
            let chunk = encode_response(&db, NodeId(responder), f, n).unwrap();
            assert_eq!(chunk.shard_index, responder);
            assert!(chunk.proof.verify(chunk.root, &chunk.chunk));
        }
        assert!(encode_response(&db, NodeId(99), f, n).is_none());
    }

    #[test]
    fn cached_manager_responses_match_stateless_encoding() {
        let db = sample_datablock(50);
        let other = sample_datablock(33);
        let (f, n) = (1, 4);
        let mut manager = RetrievalManager::new();
        // Serve several queriers and a second datablock: every cached chunk must be
        // byte-identical to the stateless reference path.
        for datablock in [&db, &other] {
            for responder in 0..n as u32 {
                let cached = manager
                    .encode_response(datablock, NodeId(responder), f, n)
                    .unwrap();
                let fresh = encode_response(datablock, NodeId(responder), f, n).unwrap();
                assert_eq!(cached.root, fresh.root);
                assert_eq!(cached.shard_index, fresh.shard_index);
                assert_eq!(cached.chunk, fresh.chunk);
                assert_eq!(cached.payload_len, fresh.payload_len);
                assert!(cached.proof.verify(cached.root, &cached.chunk));
            }
        }
        assert!(manager.encode_response(&db, NodeId(99), f, n).is_none());
    }

    #[test]
    fn full_retrieval_roundtrip() {
        let db = sample_datablock(40);
        let digest = db.digest();
        let (f, n) = (1, 4);
        let mut manager = RetrievalManager::new();

        assert!(manager.note_missing(digest, SeqNum(3), SimTime(1_000)));
        assert!(!manager.note_missing(digest, SeqNum(4), SimTime(2_000)));
        assert_eq!(manager.digests_to_query(), vec![digest]);
        // Second call does not re-query.
        assert!(manager.digests_to_query().is_empty());

        let mut outcome = ChunkOutcome::Stored;
        for responder in [NodeId(1), NodeId(3)] {
            let r = encode_response(&db, responder, f, n).unwrap();
            outcome = manager.add_chunk(
                digest,
                r.root,
                r.shard_index,
                r.chunk,
                &r.proof,
                r.payload_len,
                f,
                n,
                SimTime(5_000_000),
            );
        }
        match outcome {
            ChunkOutcome::Recovered {
                datablock,
                mut waiting,
                elapsed_nanos,
                received_bytes,
            } => {
                assert_eq!(datablock.digest(), digest);
                waiting.sort();
                assert_eq!(waiting, vec![SeqNum(3), SeqNum(4)]);
                assert_eq!(elapsed_nanos, 4_999_000);
                assert!(received_bytes > 0);
            }
            other => panic!("expected recovery, got {other:?}"),
        }
        assert!(!manager.is_pending(&digest));
    }

    #[test]
    fn invalid_chunks_are_ignored() {
        let db = sample_datablock(10);
        let digest = db.digest();
        let (f, n) = (1, 4);
        let mut manager = RetrievalManager::new();
        manager.note_missing(digest, SeqNum(1), SimTime(0));

        let r = encode_response(&db, NodeId(1), f, n).unwrap();
        // Tampered chunk fails the Merkle proof.
        let mut tampered = r.chunk.clone();
        tampered[0] ^= 0xff;
        assert_eq!(
            manager.add_chunk(digest, r.root, r.shard_index, tampered, &r.proof, r.payload_len, f, n, SimTime(1)),
            ChunkOutcome::Ignored
        );
        // Chunk for an unknown digest is ignored.
        let other_digest = sample_datablock(11).digest();
        assert_eq!(
            manager.add_chunk(other_digest, r.root, r.shard_index, r.chunk.clone(), &r.proof, r.payload_len, f, n, SimTime(1)),
            ChunkOutcome::Ignored
        );
        // The original chunk still works.
        assert_eq!(
            manager.add_chunk(digest, r.root, r.shard_index, r.chunk, &r.proof, r.payload_len, f, n, SimTime(1)),
            ChunkOutcome::Stored
        );
    }

    #[test]
    fn forged_root_does_not_recover_wrong_datablock() {
        // Two colluding responders serve chunks of a *different* datablock under a
        // consistent root; the decode succeeds but the digest check rejects it.
        let real = sample_datablock(10);
        let fake = sample_datablock(12);
        let digest = real.digest();
        let (f, n) = (1, 4);
        let mut manager = RetrievalManager::new();
        manager.note_missing(digest, SeqNum(1), SimTime(0));

        let mut last = ChunkOutcome::Stored;
        for responder in [NodeId(0), NodeId(2)] {
            let r = encode_response(&fake, responder, f, n).unwrap();
            last = manager.add_chunk(
                digest,
                r.root,
                r.shard_index,
                r.chunk,
                &r.proof,
                r.payload_len,
                f,
                n,
                SimTime(1),
            );
        }
        assert_eq!(last, ChunkOutcome::Ignored);
        // The retrieval is still pending: honest chunks can still recover it.
        assert!(manager.is_pending(&digest));
        let mut outcome = ChunkOutcome::Stored;
        for responder in [NodeId(1), NodeId(3)] {
            let r = encode_response(&real, responder, f, n).unwrap();
            outcome = manager.add_chunk(
                digest,
                r.root,
                r.shard_index,
                r.chunk,
                &r.proof,
                r.payload_len,
                f,
                n,
                SimTime(2),
            );
        }
        assert!(matches!(outcome, ChunkOutcome::Recovered { .. }));
    }

    #[test]
    fn cancel_returns_waiting_sequences() {
        let db = sample_datablock(5);
        let digest = db.digest();
        let mut manager = RetrievalManager::new();
        manager.note_missing(digest, SeqNum(7), SimTime(0));
        manager.note_missing(digest, SeqNum(9), SimTime(0));
        let mut waiting = manager.cancel(&digest);
        waiting.sort();
        assert_eq!(waiting, vec![SeqNum(7), SeqNum(9)]);
        assert!(manager.cancel(&digest).is_empty());
    }

    #[test]
    fn responders_serve_each_querier_once() {
        let digest = sample_datablock(5).digest();
        let mut manager = RetrievalManager::new();
        assert!(manager.should_serve(digest, NodeId(1)));
        assert!(!manager.should_serve(digest, NodeId(1)));
        assert!(manager.should_serve(digest, NodeId(2)));
        let other = sample_datablock(6).digest();
        assert!(manager.should_serve(other, NodeId(1)));
    }

    #[test]
    fn large_committee_retrieval_matches_paper_scale() {
        // n = 128, f = 42: the Fig. 12 / Table V configuration with a 2000-request
        // datablock. Chunk cost per responder should be roughly α / (f+1).
        let requests = 200; // scaled down ×10 to keep the unit test fast
        let db = sample_datablock(requests);
        let digest = db.digest();
        let (f, n) = (42usize, 128usize);
        let mut manager = RetrievalManager::new();
        manager.note_missing(digest, SeqNum(1), SimTime(0));

        let encoded_len = db.encode_to_vec().len();
        let mut outcome = ChunkOutcome::Stored;
        let mut per_responder_bytes = 0usize;
        for responder in 0..=f as u32 {
            let r = encode_response(&db, NodeId(responder), f, n).unwrap();
            per_responder_bytes = r.chunk.len();
            outcome = manager.add_chunk(
                digest,
                r.root,
                r.shard_index,
                r.chunk,
                &r.proof,
                r.payload_len,
                f,
                n,
                SimTime(1),
            );
        }
        assert!(matches!(outcome, ChunkOutcome::Recovered { .. }));
        // Each responder ships ~1/(f+1) of the datablock.
        assert!(per_responder_bytes <= encoded_len / (f + 1) + 2);
    }
}
