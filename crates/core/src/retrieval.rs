//! The datablock retrieval mechanism (Algorithm 3).
//!
//! A replica that receives a BFTblock linking a datablock it never got starts a timer;
//! on expiry it multicasts a `Query`. Every replica that holds the datablock
//! erasure-codes it with the `(f+1, n)` code, builds a Merkle tree over the `n`
//! chunks, and sends back *its own* chunk plus the Merkle proof. The querier validates
//! chunks individually and decodes as soon as `f+1` chunks under the same root are
//! available, then checks that the decoded datablock really hashes to the queried
//! digest.
//!
//! A retrieval that stays pending is re-queried after [`REQUERY_TIMEOUTS`] retrieval
//! timeouts: a partition can drop the first `Query` (or its responses) outright, and a
//! one-shot query would then leave the replica unable to vote on any BFTblock linking
//! the lost datablock — permanently, across every view change, because re-proposals
//! carry the same links. Responders answer each received `Query` (the per-datablock
//! encoding cache makes repeat serves free), so a re-query recovers no matter which
//! direction the partition dropped.

use crate::messages::RetrievalPayload;
use leopard_crypto::provider::{ComputeCost, CryptoProvider};
use leopard_crypto::{Digest, MerkleProof, MerkleTree};
use leopard_erasure::ReedSolomon;
use leopard_simnet::{SimDuration, SimTime};
use leopard_types::{Datablock, Decode, Encode, FastMap, FastSet, NodeId, SeqNum};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A chunk of an erasure-coded datablock, as produced by [`encode_response`].
#[derive(Debug, Clone)]
pub struct ResponseChunk {
    /// Merkle root over all `n` chunks.
    pub root: Digest,
    /// Index of the chunk (the responder's replica index).
    pub shard_index: u32,
    /// The chunk bytes.
    pub chunk: Vec<u8>,
    /// Merkle inclusion proof for the chunk.
    pub proof: MerkleProof,
    /// Length of the encoded datablock (needed to strip padding when decoding).
    pub payload_len: u64,
}

/// A retrieval response produced by [`RetrievalManager::encode_response`]: ready to be
/// put on the wire, together with the modeled compute cost the responder incurred
/// (full encode + Merkle tree on the first response for a datablock, nothing on a
/// cache hit — the charge mirrors the cache in both crypto modes).
#[derive(Debug)]
pub struct RetrievalResponse {
    /// Merkle root over the erasure-coded chunks (the datablock digest in metered mode).
    pub root: Digest,
    /// Index of the served chunk (the responder's replica index).
    pub shard_index: u32,
    /// The chunk itself (real or metered).
    pub payload: RetrievalPayload,
    /// Length of the encoded datablock.
    pub payload_len: u64,
    /// Modeled compute the responder spent producing this response.
    pub cost: ComputeCost,
}

/// Erasure-codes `datablock` and returns the chunk owned by `responder`, with proof.
///
/// Returns `None` if the erasure-code parameters are invalid (cannot happen for
/// `n = 3f + 1 ≥ 4`) or the responder index is out of range.
///
/// This is the stateless reference path; replicas answer queries through
/// [`RetrievalManager::encode_response`], which caches the `(f+1, n)` code and the
/// per-datablock encoding across queriers and produces identical chunks.
pub fn encode_response(
    datablock: &Datablock,
    responder: NodeId,
    f: usize,
    n: usize,
) -> Option<ResponseChunk> {
    let rs = ReedSolomon::new(f + 1, n).ok()?;
    let encoding = CachedEncoding::build(&rs, datablock);
    encoding.chunk_for(responder)
}

/// The erasure-coded shards and Merkle tree of one datablock at a responder: built once,
/// then each querier's response is a shard clone plus a Merkle proof.
#[derive(Debug)]
struct CachedEncoding {
    shards: Vec<Vec<u8>>,
    tree: MerkleTree,
    payload_len: u64,
}

impl CachedEncoding {
    fn build(rs: &ReedSolomon, datablock: &Datablock) -> Self {
        let encoded = datablock.encode_to_vec();
        let shards = rs.encode_payload(&encoded);
        let tree = MerkleTree::from_leaves(shards.iter().map(|s| s.as_slice()));
        Self {
            shards,
            tree,
            payload_len: encoded.len() as u64,
        }
    }

    fn chunk_for(&self, responder: NodeId) -> Option<ResponseChunk> {
        let index = responder.as_index();
        if index >= self.shards.len() {
            return None;
        }
        let proof = self.tree.prove(index)?;
        Some(ResponseChunk {
            root: self.tree.root(),
            shard_index: index as u32,
            chunk: self.shards[index].clone(),
            proof,
            payload_len: self.payload_len,
        })
    }
}

/// State of one in-progress retrieval at the querier.
#[derive(Debug)]
struct PendingRetrieval {
    /// Serial numbers of BFTblocks waiting for this datablock.
    waiting: FastSet<SeqNum>,
    /// Valid chunks collected so far, grouped by Merkle root.
    chunks: FastMap<Digest, BTreeMap<u32, Vec<u8>>>,
    /// Declared encoded length per root.
    payload_len: FastMap<Digest, u64>,
    /// The datablock itself, carried by reference in metered responses.
    metered_datablock: Option<Arc<Datablock>>,
    /// When the datablock was first discovered missing.
    started_at: SimTime,
    /// When the query was last multicast (`None` until the first query).
    last_query: Option<SimTime>,
    /// Bytes received for this retrieval (for the Fig. 12 cost accounting).
    received_bytes: u64,
}

/// How many retrieval timeouts a pending retrieval waits before querying again. The
/// interval is far above any fault-free query-to-response round trip (even across the
/// widest WAN pairing), so healthy runs query exactly once and the simulation's event
/// stream is unchanged; only a retrieval whose query or responses were lost to a
/// partition or crash ever reaches the re-query.
pub const REQUERY_TIMEOUTS: u64 = 8;

/// The querier-side manager of all in-progress retrievals, plus the responder-side
/// encoding cache.
#[derive(Debug, Default)]
pub struct RetrievalManager {
    pending: FastMap<Digest, PendingRetrieval>,
    /// Reed–Solomon codes by `(data_shards, total_shards)`; the parameters are fixed
    /// per run, so the Vandermonde construction happens once per replica, not once per
    /// response or decode.
    codes: FastMap<(usize, usize), ReedSolomon>,
    /// Responder-side responses by datablock digest, so serving `k` queriers encodes
    /// and Merkle-hashes the datablock once instead of `k` times (in metered mode, so
    /// the *charged* encoding cost is paid once, mirroring the real cache). Only the
    /// chunk actually served is retained (a replica always responds with its own
    /// shard), not the full shard set; the cached `(responder, data_shards,
    /// total_shards)` guards against a mismatched lookup.
    chunks_served: FastMap<Digest, ((NodeId, usize, usize), CachedServe)>,
}

/// A cached, ready-to-send retrieval response (real or metered).
#[derive(Debug, Clone)]
struct CachedServe {
    root: Digest,
    shard_index: u32,
    payload: RetrievalPayload,
    payload_len: u64,
}

/// Entry cap for the responder-side chunk cache. PR 4's profiling of the full fig9
/// sweep found the old cap of 64 thrashing at n = 256 — more than 64 datablocks were
/// being queried concurrently, so nearly every one of the ~270k responses re-ran the
/// (f+1, n) encoder over a ~550 KB datablock, which was 74% of the sweep's wall-clock.
/// The cap is a backstop only: the cache is pruned alongside the datablock pool at
/// every checkpoint ([`RetrievalManager::prune`]), which also keeps a metered entry's
/// `Arc<Datablock>` from outliving the pool's copy.
const ENCODING_CACHE_CAP: usize = 512;

/// Outcome of feeding a response chunk into the manager.
#[derive(Debug, PartialEq, Eq)]
pub enum ChunkOutcome {
    /// The chunk was stored; more are needed.
    Stored,
    /// The chunk was invalid or irrelevant and was ignored.
    Ignored,
    /// Enough chunks arrived and the datablock was reconstructed.
    Recovered {
        /// The reconstructed datablock.
        datablock: Arc<Datablock>,
        /// Serial numbers that were waiting for it.
        waiting: Vec<SeqNum>,
        /// Time the retrieval took.
        elapsed_nanos: u64,
        /// Bytes received over the course of the retrieval.
        received_bytes: u64,
    },
}

impl RetrievalManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of datablocks currently being retrieved.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Registers that BFTblock `seq` needs the missing datablock `digest`.
    ///
    /// Returns true if this is the first time the datablock is reported missing (i.e.
    /// the caller should start the retrieval timer).
    pub fn note_missing(&mut self, digest: Digest, seq: SeqNum, now: SimTime) -> bool {
        match self.pending.get_mut(&digest) {
            Some(pending) => {
                pending.waiting.insert(seq);
                false
            }
            None => {
                let mut waiting = FastSet::default();
                waiting.insert(seq);
                self.pending.insert(
                    digest,
                    PendingRetrieval {
                        waiting,
                        chunks: FastMap::default(),
                        payload_len: FastMap::default(),
                        metered_datablock: None,
                        started_at: now,
                        last_query: None,
                        received_bytes: 0,
                    },
                );
                true
            }
        }
    }

    /// True if `digest` is still being retrieved.
    pub fn is_pending(&self, digest: &Digest) -> bool {
        self.pending.contains_key(digest)
    }

    /// Called when the retrieval timer fires: returns the digests that need to be
    /// queried — never queried before, or still pending [`REQUERY_TIMEOUTS`] retrieval
    /// timeouts after the last query (the loss-recovery path) — and stamps them.
    pub fn digests_to_query(&mut self, now: SimTime, retrieval_timeout: SimDuration) -> Vec<Digest> {
        let requery_after = retrieval_timeout.saturating_mul(REQUERY_TIMEOUTS);
        let mut digests: Vec<Digest> = self
            .pending
            .iter()
            .filter(|(_, p)| {
                p.last_query
                    .map_or(true, |at| now.saturating_since(at) >= requery_after)
            })
            .map(|(d, _)| *d)
            .collect();
        digests.sort_unstable();
        for digest in &digests {
            if let Some(pending) = self.pending.get_mut(digest) {
                pending.last_query = Some(now);
            }
        }
        digests
    }

    /// Cancels a retrieval because the datablock arrived through normal dissemination.
    ///
    /// Returns the serial numbers that were waiting for it.
    pub fn cancel(&mut self, digest: &Digest) -> Vec<SeqNum> {
        self.pending
            .remove(digest)
            .map(|p| p.waiting.into_iter().collect())
            .unwrap_or_default()
    }

    /// Abandons pending retrievals that only gate sequence numbers at or below a
    /// stable checkpoint watermark. Those blocks are summarised by the quorum-signed
    /// checkpoint and their datablocks are pruned cluster-wide, so the queries can
    /// never be answered — without this, a straggler that jumped its execution point
    /// to the watermark would keep re-querying the dead digests forever.
    pub fn abandon_waiting_through(&mut self, watermark: SeqNum) {
        self.pending.retain(|_, p| {
            p.waiting.retain(|&seq| seq > watermark);
            !p.waiting.is_empty()
        });
    }

    /// Drops responder-side state for datablocks garbage-collected at a checkpoint:
    /// the cached responses (whose metered variant pins an `Arc<Datablock>` that must
    /// not outlive the pool's copy).
    pub fn prune(&mut self, executed: impl IntoIterator<Item = Digest>) {
        let executed: FastSet<Digest> = executed.into_iter().collect();
        if executed.is_empty() {
            return;
        }
        self.chunks_served.retain(|digest, _| !executed.contains(digest));
    }

    /// The `(data_shards, total_shards)` code, constructed on first use.
    fn code_for(
        codes: &mut FastMap<(usize, usize), ReedSolomon>,
        data_shards: usize,
        total_shards: usize,
    ) -> Option<&ReedSolomon> {
        match codes.entry((data_shards, total_shards)) {
            std::collections::hash_map::Entry::Occupied(entry) => Some(entry.into_mut()),
            std::collections::hash_map::Entry::Vacant(entry) => {
                let rs = ReedSolomon::new(data_shards, total_shards).ok()?;
                Some(entry.insert(rs))
            }
        }
    }

    /// Responder-side: produces this responder's retrieval response for `datablock`,
    /// through the crypto provider.
    ///
    /// With real crypto the datablock is erasure-coded and Merkle-hashed (or the cached
    /// chunk reused), exactly as the stateless [`encode_response`] would. In metered
    /// mode the expensive work is skipped: the response declares the byte sizes the
    /// real chunk and proof would occupy and carries the datablock by reference. Both
    /// modes charge the same modeled [`ComputeCost`]: the full encode on the first
    /// response for a datablock, nothing on cache hits.
    pub fn encode_response(
        &mut self,
        datablock: &Arc<Datablock>,
        responder: NodeId,
        f: usize,
        n: usize,
        provider: &CryptoProvider,
    ) -> Option<RetrievalResponse> {
        let digest = datablock.digest();
        let cache_key = (responder, f + 1, n);
        if let Some((cached_key, cached)) = self.chunks_served.get(&digest) {
            if *cached_key == cache_key {
                return Some(RetrievalResponse {
                    root: cached.root,
                    shard_index: cached.shard_index,
                    payload: cached.payload.clone(),
                    payload_len: cached.payload_len,
                    cost: ComputeCost::ZERO,
                });
            }
        }
        if responder.as_index() >= n {
            return None;
        }
        // Chunks derive from the *encoded* datablock bytes (synthetic payloads charge
        // their declared size on the wire but encode compactly — see
        // `Datablock::encoded_len`), matching the real encoder byte for byte.
        let encoded_len = datablock.encoded_len();
        let shard_len = encoded_len.div_ceil(f + 1).max(1);
        let cost = provider.model().erasure_encode(encoded_len, f + 1, n)
            + provider.model().merkle_tree(shard_len, n);
        let serve = if provider.is_metered() {
            CachedServe {
                root: digest,
                shard_index: responder.as_index() as u32,
                payload: RetrievalPayload::Metered {
                    chunk_len: shard_len as u32,
                    proof_len: MerkleProof::wire_size_for(n, responder.as_index())? as u32,
                    datablock: Arc::clone(datablock),
                },
                payload_len: encoded_len as u64,
            }
        } else {
            let rs = Self::code_for(&mut self.codes, f + 1, n)?;
            let chunk = CachedEncoding::build(rs, datablock).chunk_for(responder)?;
            CachedServe {
                root: chunk.root,
                shard_index: chunk.shard_index,
                payload: RetrievalPayload::Real {
                    chunk: chunk.chunk,
                    proof: chunk.proof,
                },
                payload_len: chunk.payload_len,
            }
        };
        if self.chunks_served.len() >= ENCODING_CACHE_CAP {
            self.chunks_served.clear();
        }
        let response = RetrievalResponse {
            root: serve.root,
            shard_index: serve.shard_index,
            payload: serve.payload.clone(),
            payload_len: serve.payload_len,
            cost,
        };
        self.chunks_served.insert(digest, (cache_key, serve));
        Some(response)
    }

    /// Feeds a received chunk into the matching retrieval, returning the outcome plus
    /// the modeled compute the querier spent on it (proof verification per chunk, and
    /// the decode plus digest check when a quorum of chunks completes).
    ///
    /// With real crypto the Merkle proof is verified, chunks are grouped by root, and a
    /// decode is attempted once `f + 1` chunks under one root are available; the
    /// decoded datablock must hash to the queried digest, otherwise the chunks under
    /// that root are discarded (the root was forged). A metered chunk skips the real
    /// verification and decode — responses are honest by construction in that mode —
    /// but follows the same counting and charges the same modeled time.
    #[allow(clippy::too_many_arguments)]
    pub fn add_chunk(
        &mut self,
        digest: Digest,
        root: Digest,
        shard_index: u32,
        payload: RetrievalPayload,
        payload_len: u64,
        f: usize,
        n: usize,
        now: SimTime,
        provider: &CryptoProvider,
    ) -> (ChunkOutcome, ComputeCost) {
        let model = provider.model();
        let Some(pending) = self.pending.get_mut(&digest) else {
            return (ChunkOutcome::Ignored, ComputeCost::ZERO);
        };
        let declared_len = payload.wire_len();
        let shard_len = payload_len.div_ceil(f as u64 + 1).max(1) as usize;
        let mut cost = model.merkle_verify(shard_len, n);
        let chunk_bytes = match payload {
            RetrievalPayload::Real { chunk, proof } => {
                if proof.leaf_index() != shard_index as usize || !proof.verify(root, &chunk) {
                    return (ChunkOutcome::Ignored, cost);
                }
                chunk
            }
            RetrievalPayload::Metered { datablock, .. } => {
                if shard_index as usize >= n {
                    return (ChunkOutcome::Ignored, cost);
                }
                pending.metered_datablock = Some(datablock);
                Vec::new()
            }
        };
        pending.received_bytes += declared_len as u64 + 64;
        pending.payload_len.insert(root, payload_len);
        let chunks = pending.chunks.entry(root).or_default();
        chunks.insert(shard_index, chunk_bytes);

        if chunks.len() < f + 1 {
            return (ChunkOutcome::Stored, cost);
        }

        // A quorum of chunks under one root: decode and check the digest.
        let encoded_len = pending.payload_len.get(&root).copied().unwrap_or(0) as usize;
        cost += model.erasure_decode(encoded_len, f + 1) + model.hash(encoded_len);
        let datablock = if let Some(datablock) = pending.metered_datablock.clone() {
            if datablock.digest() != digest {
                pending.chunks.remove(&root);
                pending.metered_datablock = None;
                return (ChunkOutcome::Ignored, cost);
            }
            datablock
        } else {
            let Some(rs) = Self::code_for(&mut self.codes, f + 1, n) else {
                return (ChunkOutcome::Ignored, cost);
            };
            let pending = self.pending.get_mut(&digest).expect("checked above");
            let chunks = pending.chunks.get(&root).expect("just inserted");
            let shards: Vec<(usize, Vec<u8>)> = chunks
                .iter()
                .take(f + 1)
                .map(|(&i, c)| (i as usize, c.clone()))
                .collect();
            let decoded = match rs.decode_payload(&shards, encoded_len) {
                Ok(bytes) => bytes,
                Err(_) => {
                    pending.chunks.remove(&root);
                    return (ChunkOutcome::Ignored, cost);
                }
            };
            let datablock = match Datablock::decode_from_slice(&decoded) {
                Ok(db) => db,
                Err(_) => {
                    pending.chunks.remove(&root);
                    return (ChunkOutcome::Ignored, cost);
                }
            };
            if datablock.digest() != digest {
                // The responders under this root colluded on a different datablock.
                pending.chunks.remove(&root);
                return (ChunkOutcome::Ignored, cost);
            }
            Arc::new(datablock)
        };

        let pending = self.pending.remove(&digest).expect("checked above");
        (
            ChunkOutcome::Recovered {
                datablock,
                waiting: pending.waiting.into_iter().collect(),
                elapsed_nanos: now.saturating_since(pending.started_at).as_nanos(),
                received_bytes: pending.received_bytes,
            },
            cost,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leopard_crypto::provider::{CryptoCostModel, CryptoMode};
    use leopard_crypto::threshold::ThresholdScheme;
    use leopard_types::{ClientId, Request};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn provider(mode: CryptoMode) -> CryptoProvider {
        let mut rng = StdRng::seed_from_u64(5);
        let (scheme, _) = ThresholdScheme::trusted_setup(3, 4, &mut rng);
        CryptoProvider::new(scheme, mode, CryptoCostModel::free())
    }

    /// Adapts a stateless [`ResponseChunk`] into the payload `add_chunk` consumes.
    fn real_payload(r: &ResponseChunk) -> RetrievalPayload {
        RetrievalPayload::Real {
            chunk: r.chunk.clone(),
            proof: r.proof.clone(),
        }
    }

    fn sample_datablock(requests: usize) -> Datablock {
        Datablock::new(
            NodeId(2),
            1,
            (0..requests)
                .map(|i| Request::new_inline(ClientId(1), i as u64, vec![i as u8; 128]))
                .collect(),
        )
    }

    #[test]
    fn encode_response_produces_verifiable_chunks() {
        let db = sample_datablock(50);
        let (f, n) = (1, 4);
        for responder in 0..n as u32 {
            let chunk = encode_response(&db, NodeId(responder), f, n).unwrap();
            assert_eq!(chunk.shard_index, responder);
            assert!(chunk.proof.verify(chunk.root, &chunk.chunk));
        }
        assert!(encode_response(&db, NodeId(99), f, n).is_none());
    }

    #[test]
    fn cached_manager_responses_match_stateless_encoding() {
        let db = Arc::new(sample_datablock(50));
        let other = Arc::new(sample_datablock(33));
        let (f, n) = (1, 4);
        let provider = provider(CryptoMode::Real);
        let mut manager = RetrievalManager::new();
        // Serve several queriers and a second datablock: every cached chunk must be
        // byte-identical to the stateless reference path.
        for datablock in [&db, &other] {
            for responder in 0..n as u32 {
                let cached = manager
                    .encode_response(datablock, NodeId(responder), f, n, &provider)
                    .unwrap();
                let fresh = encode_response(datablock, NodeId(responder), f, n).unwrap();
                assert_eq!(cached.root, fresh.root);
                assert_eq!(cached.shard_index, fresh.shard_index);
                assert_eq!(cached.payload_len, fresh.payload_len);
                match &cached.payload {
                    RetrievalPayload::Real { chunk, proof } => {
                        assert_eq!(*chunk, fresh.chunk);
                        assert!(proof.verify(cached.root, chunk));
                    }
                    other => panic!("real provider produced {other:?}"),
                }
            }
        }
        assert!(manager.encode_response(&db, NodeId(99), f, n, &provider).is_none());
    }

    /// A metered response declares exactly the wire bytes the real response occupies,
    /// and carries the datablock by reference.
    #[test]
    fn metered_response_sizes_match_real_responses() {
        for (requests, f, n) in [(50usize, 1usize, 4usize), (200, 10, 31), (64, 5, 16)] {
            let db = Arc::new(sample_datablock(requests));
            let metered = provider(CryptoMode::Metered);
            let mut manager = RetrievalManager::new();
            for responder in 0..n as u32 {
                let m = manager
                    .encode_response(&db, NodeId(responder), f, n, &metered)
                    .unwrap();
                let real = encode_response(&db, NodeId(responder), f, n).unwrap();
                assert_eq!(
                    m.payload.wire_len(),
                    real.chunk.len() + real.proof.wire_size(),
                    "requests={requests} f={f} n={n} responder={responder}"
                );
                assert_eq!(m.payload_len, real.payload_len);
                match m.payload {
                    RetrievalPayload::Metered { datablock, .. } => {
                        assert_eq!(datablock.digest(), db.digest());
                    }
                    other => panic!("metered provider produced {other:?}"),
                }
            }
        }
    }

    /// A full metered retrieval recovers the datablock after exactly `f + 1` chunks,
    /// with the same per-chunk byte accounting as the real path.
    #[test]
    fn metered_retrieval_roundtrip_matches_real_accounting() {
        let db = Arc::new(sample_datablock(40));
        let digest = db.digest();
        let (f, n) = (1, 4);
        let metered = provider(CryptoMode::Metered);

        let run = |use_metered: bool| -> (ChunkOutcome, u64) {
            let mut manager = RetrievalManager::new();
            manager.note_missing(digest, SeqNum(3), SimTime(1_000));
            let mut outcome = ChunkOutcome::Stored;
            for responder in [NodeId(1), NodeId(3)] {
                let (root, shard_index, payload, payload_len) = if use_metered {
                    let mut side = RetrievalManager::new();
                    let r = side
                        .encode_response(&db, responder, f, n, &metered)
                        .unwrap();
                    (r.root, r.shard_index, r.payload, r.payload_len)
                } else {
                    let r = encode_response(&db, responder, f, n).unwrap();
                    (r.root, r.shard_index, real_payload(&r), r.payload_len)
                };
                let (o, _) = manager.add_chunk(
                    digest,
                    root,
                    shard_index,
                    payload,
                    payload_len,
                    f,
                    n,
                    SimTime(5_000_000),
                    &metered,
                );
                outcome = o;
            }
            let bytes = match &outcome {
                ChunkOutcome::Recovered { received_bytes, .. } => *received_bytes,
                other => panic!("expected recovery, got {other:?}"),
            };
            (outcome, bytes)
        };

        let (metered_outcome, metered_bytes) = run(true);
        let (_, real_bytes) = run(false);
        assert_eq!(metered_bytes, real_bytes);
        if let ChunkOutcome::Recovered { datablock, .. } = metered_outcome {
            assert_eq!(datablock.digest(), digest);
        }
    }

    #[test]
    fn full_retrieval_roundtrip() {
        let db = sample_datablock(40);
        let digest = db.digest();
        let (f, n) = (1, 4);
        let mut manager = RetrievalManager::new();

        let timeout = SimDuration::from_millis(100);
        assert!(manager.note_missing(digest, SeqNum(3), SimTime(1_000)));
        assert!(!manager.note_missing(digest, SeqNum(4), SimTime(2_000)));
        assert_eq!(manager.digests_to_query(SimTime(3_000), timeout), vec![digest]);
        // Subsequent fires inside the re-query window do not re-query.
        assert!(manager.digests_to_query(SimTime(100_003_000), timeout).is_empty());

        let provider = provider(CryptoMode::Real);
        let mut outcome = ChunkOutcome::Stored;
        for responder in [NodeId(1), NodeId(3)] {
            let r = encode_response(&db, responder, f, n).unwrap();
            let (o, _) = manager.add_chunk(
                digest,
                r.root,
                r.shard_index,
                real_payload(&r),
                r.payload_len,
                f,
                n,
                SimTime(5_000_000),
                &provider,
            );
            outcome = o;
        }
        match outcome {
            ChunkOutcome::Recovered {
                datablock,
                mut waiting,
                elapsed_nanos,
                received_bytes,
            } => {
                assert_eq!(datablock.digest(), digest);
                waiting.sort();
                assert_eq!(waiting, vec![SeqNum(3), SeqNum(4)]);
                assert_eq!(elapsed_nanos, 4_999_000);
                assert!(received_bytes > 0);
            }
            other => panic!("expected recovery, got {other:?}"),
        }
        assert!(!manager.is_pending(&digest));
    }

    #[test]
    fn invalid_chunks_are_ignored() {
        let db = sample_datablock(10);
        let digest = db.digest();
        let (f, n) = (1, 4);
        let mut manager = RetrievalManager::new();
        manager.note_missing(digest, SeqNum(1), SimTime(0));

        let provider = provider(CryptoMode::Real);
        let r = encode_response(&db, NodeId(1), f, n).unwrap();
        // Tampered chunk fails the Merkle proof.
        let mut tampered = r.chunk.clone();
        tampered[0] ^= 0xff;
        let tampered_payload = RetrievalPayload::Real {
            chunk: tampered,
            proof: r.proof.clone(),
        };
        assert_eq!(
            manager
                .add_chunk(digest, r.root, r.shard_index, tampered_payload, r.payload_len, f, n, SimTime(1), &provider)
                .0,
            ChunkOutcome::Ignored
        );
        // Chunk for an unknown digest is ignored.
        let other_digest = sample_datablock(11).digest();
        assert_eq!(
            manager
                .add_chunk(other_digest, r.root, r.shard_index, real_payload(&r), r.payload_len, f, n, SimTime(1), &provider)
                .0,
            ChunkOutcome::Ignored
        );
        // The original chunk still works.
        assert_eq!(
            manager
                .add_chunk(digest, r.root, r.shard_index, real_payload(&r), r.payload_len, f, n, SimTime(1), &provider)
                .0,
            ChunkOutcome::Stored
        );
    }

    #[test]
    fn forged_root_does_not_recover_wrong_datablock() {
        // Two colluding responders serve chunks of a *different* datablock under a
        // consistent root; the decode succeeds but the digest check rejects it.
        let real = sample_datablock(10);
        let fake = sample_datablock(12);
        let digest = real.digest();
        let (f, n) = (1, 4);
        let mut manager = RetrievalManager::new();
        manager.note_missing(digest, SeqNum(1), SimTime(0));

        let provider = provider(CryptoMode::Real);
        let mut last = ChunkOutcome::Stored;
        for responder in [NodeId(0), NodeId(2)] {
            let r = encode_response(&fake, responder, f, n).unwrap();
            last = manager
                .add_chunk(
                    digest,
                    r.root,
                    r.shard_index,
                    real_payload(&r),
                    r.payload_len,
                    f,
                    n,
                    SimTime(1),
                    &provider,
                )
                .0;
        }
        assert_eq!(last, ChunkOutcome::Ignored);
        // The retrieval is still pending: honest chunks can still recover it.
        assert!(manager.is_pending(&digest));
        let mut outcome = ChunkOutcome::Stored;
        for responder in [NodeId(1), NodeId(3)] {
            let r = encode_response(&real, responder, f, n).unwrap();
            outcome = manager
                .add_chunk(
                    digest,
                    r.root,
                    r.shard_index,
                    real_payload(&r),
                    r.payload_len,
                    f,
                    n,
                    SimTime(2),
                    &provider,
                )
                .0;
        }
        assert!(matches!(outcome, ChunkOutcome::Recovered { .. }));
    }

    #[test]
    fn cancel_returns_waiting_sequences() {
        let db = sample_datablock(5);
        let digest = db.digest();
        let mut manager = RetrievalManager::new();
        manager.note_missing(digest, SeqNum(7), SimTime(0));
        manager.note_missing(digest, SeqNum(9), SimTime(0));
        let mut waiting = manager.cancel(&digest);
        waiting.sort();
        assert_eq!(waiting, vec![SeqNum(7), SeqNum(9)]);
        assert!(manager.cancel(&digest).is_empty());
    }

    /// A retrieval whose first query (or its responses) was lost — e.g. to a
    /// partition window — is queried again after the re-query interval; recovery or
    /// cancellation stops the cycle.
    #[test]
    fn pending_retrievals_are_requeried_after_message_loss() {
        let digest = sample_datablock(5).digest();
        let timeout = SimDuration::from_millis(100);
        let requery = timeout.saturating_mul(REQUERY_TIMEOUTS);
        let mut manager = RetrievalManager::new();
        manager.note_missing(digest, SeqNum(1), SimTime(0));
        let first = SimTime(0) + timeout;
        assert_eq!(manager.digests_to_query(first, timeout), vec![digest]);
        // Still pending just before the re-query interval elapses: nothing.
        let early = SimTime(0) + timeout + timeout.saturating_mul(REQUERY_TIMEOUTS - 1);
        assert!(manager.digests_to_query(early, timeout).is_empty());
        // One interval after the lost query: queried again.
        let late = first + requery;
        assert_eq!(manager.digests_to_query(late, timeout), vec![digest]);
        // Cancellation (the datablock arrived) ends the cycle.
        manager.cancel(&digest);
        assert!(manager.digests_to_query(late + requery, timeout).is_empty());
    }

    #[test]
    fn large_committee_retrieval_matches_paper_scale() {
        // n = 128, f = 42: the Fig. 12 / Table V configuration with a 2000-request
        // datablock. Chunk cost per responder should be roughly α / (f+1).
        let requests = 200; // scaled down ×10 to keep the unit test fast
        let db = sample_datablock(requests);
        let digest = db.digest();
        let (f, n) = (42usize, 128usize);
        let mut manager = RetrievalManager::new();
        manager.note_missing(digest, SeqNum(1), SimTime(0));

        let provider = provider(CryptoMode::Real);
        let encoded_len = db.encode_to_vec().len();
        let mut outcome = ChunkOutcome::Stored;
        let mut per_responder_bytes = 0usize;
        for responder in 0..=f as u32 {
            let r = encode_response(&db, NodeId(responder), f, n).unwrap();
            per_responder_bytes = r.chunk.len();
            outcome = manager
                .add_chunk(
                    digest,
                    r.root,
                    r.shard_index,
                    real_payload(&r),
                    r.payload_len,
                    f,
                    n,
                    SimTime(1),
                    &provider,
                )
                .0;
        }
        assert!(matches!(outcome, ChunkOutcome::Recovered { .. }));
        // Each responder ships ~1/(f+1) of the datablock.
        assert!(per_responder_bytes <= encoded_len / (f + 1) + 2);
    }
}
