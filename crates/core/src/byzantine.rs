//! Protocol-level Byzantine behaviours that can be injected into a replica.
//!
//! Network-level interference (selective datablock dissemination, crashes) is injected
//! below the protocol by [`leopard_simnet::FaultPlan`]; the behaviours here change what
//! the replica itself does. Both are used by the failure experiments (§VI-D) and the
//! safety tests.

/// A replica's behaviour profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ByzantineBehavior {
    /// Follow the protocol.
    #[default]
    Honest,
    /// As leader, never propose any BFTblock (progress stalls until a view-change).
    SilentLeader,
    /// As leader, propose two conflicting BFTblocks with the same serial number: the
    /// first half of the replicas receives one block, the second half the other.
    /// Safety must still hold (at most one of them can ever be confirmed).
    EquivocatingLeader,
    /// Never vote (neither prepare nor commit) and never send ready messages.
    WithholdVotes,
    /// Produce datablocks but never respond to retrieval queries.
    IgnoreQueries,
}

impl ByzantineBehavior {
    /// True if the behaviour deviates from the protocol.
    pub fn is_byzantine(&self) -> bool {
        !matches!(self, ByzantineBehavior::Honest)
    }

    /// True if the replica refuses to propose as leader.
    pub fn silent_as_leader(&self) -> bool {
        matches!(self, ByzantineBehavior::SilentLeader)
    }

    /// True if the replica proposes conflicting blocks as leader.
    pub fn equivocates(&self) -> bool {
        matches!(self, ByzantineBehavior::EquivocatingLeader)
    }

    /// True if the replica withholds its votes and ready messages.
    pub fn withholds_votes(&self) -> bool {
        matches!(self, ByzantineBehavior::WithholdVotes)
    }

    /// True if the replica ignores retrieval queries.
    pub fn ignores_queries(&self) -> bool {
        matches!(self, ByzantineBehavior::IgnoreQueries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        assert_eq!(ByzantineBehavior::default(), ByzantineBehavior::Honest);
        assert!(!ByzantineBehavior::Honest.is_byzantine());
    }

    #[test]
    fn predicates_match_variants() {
        assert!(ByzantineBehavior::SilentLeader.silent_as_leader());
        assert!(ByzantineBehavior::SilentLeader.is_byzantine());
        assert!(ByzantineBehavior::EquivocatingLeader.equivocates());
        assert!(ByzantineBehavior::WithholdVotes.withholds_votes());
        assert!(ByzantineBehavior::IgnoreQueries.ignores_queries());
        assert!(!ByzantineBehavior::Honest.silent_as_leader());
        assert!(!ByzantineBehavior::Honest.equivocates());
    }
}
