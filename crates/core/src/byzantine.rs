//! Protocol-level Byzantine behaviours that can be injected into a replica.
//!
//! Network-level interference (selective datablock dissemination, crashes) is injected
//! below the protocol by [`leopard_simnet::FaultPlan`]; the behaviours here change what
//! the replica itself does. Both are used by the failure experiments (§VI-D) and the
//! safety tests.

/// A replica's behaviour profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ByzantineBehavior {
    /// Follow the protocol.
    #[default]
    Honest,
    /// As leader, never propose any BFTblock (progress stalls until a view-change).
    SilentLeader,
    /// As leader, propose two conflicting BFTblocks with the same serial number: the
    /// first half of the replicas receives one block, the second half the other.
    /// Safety must still hold (at most one of them can ever be confirmed).
    EquivocatingLeader,
    /// Never vote (neither prepare nor commit) and never send ready messages.
    WithholdVotes,
    /// Produce datablocks but never respond to retrieval queries.
    IgnoreQueries,
    /// Answer state-transfer requests with a corrupted checkpoint proof and tampered
    /// confirmed entries. Honest requesters must reject every lie and still catch up
    /// from the remaining (honest) responders.
    LyingStateResponder,
    /// At every checkpoint height, send the leader a share over a divergent state
    /// digest instead of the honest one. The honest 2f+1 quorum must still form.
    EquivocatingCheckpointer,
    /// Never answer state-transfer requests at all (the recovery-plane analogue of
    /// [`ByzantineBehavior::IgnoreQueries`]). Requesters fan out to f+1 responders,
    /// so at least one honest answer always arrives.
    SilentStateResponder,
}

impl ByzantineBehavior {
    /// True if the behaviour deviates from the protocol.
    pub fn is_byzantine(&self) -> bool {
        !matches!(self, ByzantineBehavior::Honest)
    }

    /// True if the replica refuses to propose as leader.
    pub fn silent_as_leader(&self) -> bool {
        matches!(self, ByzantineBehavior::SilentLeader)
    }

    /// True if the replica proposes conflicting blocks as leader.
    pub fn equivocates(&self) -> bool {
        matches!(self, ByzantineBehavior::EquivocatingLeader)
    }

    /// True if the replica withholds its votes and ready messages.
    pub fn withholds_votes(&self) -> bool {
        matches!(self, ByzantineBehavior::WithholdVotes)
    }

    /// True if the replica ignores retrieval queries.
    pub fn ignores_queries(&self) -> bool {
        matches!(self, ByzantineBehavior::IgnoreQueries)
    }

    /// True if the replica sends corrupted state-transfer responses.
    pub fn lies_in_state_transfer(&self) -> bool {
        matches!(self, ByzantineBehavior::LyingStateResponder)
    }

    /// True if the replica equivocates on its checkpoint state digest.
    pub fn equivocates_checkpoints(&self) -> bool {
        matches!(self, ByzantineBehavior::EquivocatingCheckpointer)
    }

    /// True if the replica never answers state-transfer requests.
    pub fn silent_in_state_transfer(&self) -> bool {
        matches!(self, ByzantineBehavior::SilentStateResponder)
    }

    /// Every non-honest behaviour, in a fixed order the chaos generator draws from.
    pub fn all_byzantine() -> &'static [ByzantineBehavior] {
        &[
            ByzantineBehavior::SilentLeader,
            ByzantineBehavior::EquivocatingLeader,
            ByzantineBehavior::WithholdVotes,
            ByzantineBehavior::IgnoreQueries,
            ByzantineBehavior::LyingStateResponder,
            ByzantineBehavior::EquivocatingCheckpointer,
            ByzantineBehavior::SilentStateResponder,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        assert_eq!(ByzantineBehavior::default(), ByzantineBehavior::Honest);
        assert!(!ByzantineBehavior::Honest.is_byzantine());
    }

    #[test]
    fn predicates_match_variants() {
        assert!(ByzantineBehavior::SilentLeader.silent_as_leader());
        assert!(ByzantineBehavior::SilentLeader.is_byzantine());
        assert!(ByzantineBehavior::EquivocatingLeader.equivocates());
        assert!(ByzantineBehavior::WithholdVotes.withholds_votes());
        assert!(ByzantineBehavior::IgnoreQueries.ignores_queries());
        assert!(!ByzantineBehavior::Honest.silent_as_leader());
        assert!(!ByzantineBehavior::Honest.equivocates());
    }

    #[test]
    fn recovery_plane_predicates_match_variants() {
        assert!(ByzantineBehavior::LyingStateResponder.lies_in_state_transfer());
        assert!(ByzantineBehavior::LyingStateResponder.is_byzantine());
        assert!(ByzantineBehavior::EquivocatingCheckpointer.equivocates_checkpoints());
        assert!(ByzantineBehavior::SilentStateResponder.silent_in_state_transfer());
        assert!(!ByzantineBehavior::Honest.lies_in_state_transfer());
        assert!(!ByzantineBehavior::IgnoreQueries.silent_in_state_transfer());
    }

    #[test]
    fn all_byzantine_lists_every_non_honest_variant() {
        let all = ByzantineBehavior::all_byzantine();
        assert_eq!(all.len(), 7);
        assert!(all.iter().all(|b| b.is_byzantine()));
    }
}
